//! Message arrival processes.
//!
//! The paper assumes a Poisson arrival process with mean rate λ
//! messages/node/cycle (assumption (a)). In a cycle-driven simulator a Poisson
//! process is realised by sampling exponential inter-arrival times; we also
//! provide a Bernoulli approximation (at most one message per cycle, the
//! standard approximation for small λ) and a deterministic periodic process
//! used by a few tests.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-node message arrival process.
///
/// The simulator asks, once per node per cycle, how many messages are
/// generated during that cycle.
pub trait ArrivalProcess {
    /// Number of messages generated in the given cycle.
    fn arrivals_in_cycle<R: Rng + ?Sized>(&mut self, cycle: u64, rng: &mut R) -> u32;

    /// Mean offered rate in messages per cycle.
    fn mean_rate(&self) -> f64;
}

/// Poisson arrivals with mean rate λ messages/cycle, realised by sampling
/// exponential inter-arrival gaps (so several messages may arrive in one cycle
/// when λ is large).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PoissonArrivals {
    lambda: f64,
    /// Absolute time of the next arrival, in (fractional) cycles.
    next_arrival: f64,
    initialized: bool,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process with rate `lambda` messages/cycle.
    ///
    /// A rate of zero produces no arrivals at all.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "rate must be finite and non-negative"
        );
        PoissonArrivals {
            lambda,
            next_arrival: 0.0,
            initialized: false,
        }
    }

    fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling of Exp(lambda); guard against ln(0).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }

    /// Earliest cycle at which this process can produce its next arrival, or
    /// `None` when it never fires again (zero rate).
    ///
    /// Polling [`ArrivalProcess::arrivals_in_cycle`] for any cycle before the
    /// returned one is guaranteed to generate nothing *and to draw nothing
    /// from the RNG*, so an event-driven scheduler may skip those cycles
    /// without perturbing the random stream. An uninitialised process (never
    /// polled) reports cycle 0: its first poll draws the initial gap.
    pub fn next_due_cycle(&self) -> Option<u64> {
        if self.lambda <= 0.0 {
            return None;
        }
        if !self.initialized {
            return Some(0);
        }
        // `as u64` truncates toward zero (floor for the non-negative arrival
        // time) and saturates at u64::MAX if the arrival time overflowed.
        Some(self.next_arrival as u64)
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn arrivals_in_cycle<R: Rng + ?Sized>(&mut self, cycle: u64, rng: &mut R) -> u32 {
        if self.lambda <= 0.0 {
            return 0;
        }
        if !self.initialized {
            self.next_arrival = cycle as f64 + self.sample_gap(rng);
            self.initialized = true;
        }
        let end = cycle as f64 + 1.0;
        let mut count = 0;
        while self.next_arrival < end {
            count += 1;
            let gap = self.sample_gap(rng);
            self.next_arrival += gap;
        }
        count
    }

    fn mean_rate(&self) -> f64 {
        self.lambda
    }
}

/// Bernoulli arrivals: at most one message per cycle, generated with
/// probability `p`. For `p ≪ 1` this is the standard discrete approximation of
/// a Poisson process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BernoulliArrivals {
    p: f64,
}

impl BernoulliArrivals {
    /// Creates a Bernoulli arrival process with per-cycle probability `p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        BernoulliArrivals { p }
    }
}

impl ArrivalProcess for BernoulliArrivals {
    fn arrivals_in_cycle<R: Rng + ?Sized>(&mut self, _cycle: u64, rng: &mut R) -> u32 {
        u32::from(rng.gen_bool(self.p))
    }

    fn mean_rate(&self) -> f64 {
        self.p
    }
}

/// Deterministic periodic arrivals: exactly one message every `period` cycles
/// (starting at `offset`). Useful for tests that need a predictable load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PeriodicArrivals {
    period: u64,
    offset: u64,
}

impl PeriodicArrivals {
    /// Creates a periodic process generating one message every `period`
    /// cycles, first at cycle `offset`.
    pub fn new(period: u64, offset: u64) -> Self {
        assert!(period > 0, "period must be positive");
        PeriodicArrivals { period, offset }
    }
}

impl ArrivalProcess for PeriodicArrivals {
    fn arrivals_in_cycle<R: Rng + ?Sized>(&mut self, cycle: u64, _rng: &mut R) -> u32 {
        u32::from(cycle >= self.offset && (cycle - self.offset).is_multiple_of(self.period))
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.period as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_rate_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(123);
        for &lambda in &[0.002, 0.01, 0.1, 0.5] {
            let mut p = PoissonArrivals::new(lambda);
            let cycles = 200_000u64;
            let total: u64 = (0..cycles)
                .map(|c| p.arrivals_in_cycle(c, &mut rng) as u64)
                .sum();
            let measured = total as f64 / cycles as f64;
            let rel_err = (measured - lambda).abs() / lambda;
            // The count over the window is Poisson(lambda * cycles), whose
            // relative standard deviation is 1/sqrt(expected); a fixed 5%
            // band is only ~1 sigma at lambda = 0.002 (400 expected events),
            // so bound the error at 4.5 sigma instead.
            let tolerance = 4.5 / (lambda * cycles as f64).sqrt();
            assert!(
                rel_err < tolerance,
                "lambda={lambda}, measured={measured}, rel_err={rel_err}, tolerance={tolerance}"
            );
            assert!((p.mean_rate() - lambda).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_next_due_cycle_skips_are_draw_free() {
        // Skipping every cycle before `next_due_cycle` must leave the RNG
        // stream identical to polling each cycle in turn.
        let mut rng_poll = StdRng::seed_from_u64(42);
        let mut rng_skip = StdRng::seed_from_u64(42);
        let mut polled = PoissonArrivals::new(0.01);
        let mut skipped = PoissonArrivals::new(0.01);
        let mut polled_counts = Vec::new();
        let mut skipped_counts = Vec::new();
        for cycle in 0..20_000u64 {
            let n = polled.arrivals_in_cycle(cycle, &mut rng_poll);
            if n > 0 {
                polled_counts.push((cycle, n));
            }
        }
        let mut cycle = 0u64;
        while cycle < 20_000 {
            let due = skipped.next_due_cycle().expect("positive rate");
            cycle = cycle.max(due);
            if cycle >= 20_000 {
                break;
            }
            let n = skipped.arrivals_in_cycle(cycle, &mut rng_skip);
            if n > 0 {
                skipped_counts.push((cycle, n));
            }
            cycle += 1;
        }
        assert_eq!(polled_counts, skipped_counts);
        assert!(!polled_counts.is_empty());
        // Both RNGs must be in the same state afterwards.
        assert_eq!(
            rng_poll.gen_range(0..u64::MAX),
            rng_skip.gen_range(0..u64::MAX)
        );
    }

    #[test]
    fn poisson_next_due_cycle_edges() {
        assert_eq!(PoissonArrivals::new(0.0).next_due_cycle(), None);
        let mut p = PoissonArrivals::new(0.5);
        assert_eq!(
            p.next_due_cycle(),
            Some(0),
            "uninitialised process is due immediately"
        );
        let mut rng = StdRng::seed_from_u64(1);
        p.arrivals_in_cycle(0, &mut rng);
        let due = p.next_due_cycle().unwrap();
        assert!(
            due >= 1,
            "after polling cycle 0 the next due cycle is in the future"
        );
    }

    #[test]
    fn poisson_zero_rate_never_fires() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PoissonArrivals::new(0.0);
        assert!((0..10_000).all(|c| p.arrivals_in_cycle(c, &mut rng) == 0));
    }

    #[test]
    fn poisson_interarrival_variability() {
        // A Poisson process occasionally produces more than one arrival per
        // cycle at high rate.
        let mut rng = StdRng::seed_from_u64(77);
        let mut p = PoissonArrivals::new(1.5);
        let counts: Vec<u32> = (0..1000)
            .map(|c| p.arrivals_in_cycle(c, &mut rng))
            .collect();
        assert!(counts.iter().any(|&c| c >= 2));
        assert!(counts.contains(&0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn poisson_rejects_negative_rate() {
        PoissonArrivals::new(-0.1);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = BernoulliArrivals::new(0.05);
        let cycles = 100_000u64;
        let total: u64 = (0..cycles)
            .map(|c| b.arrivals_in_cycle(c, &mut rng) as u64)
            .sum();
        let measured = total as f64 / cycles as f64;
        assert!((measured - 0.05).abs() < 0.005);
        assert!((b.mean_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_rejects_invalid_probability() {
        BernoulliArrivals::new(1.5);
    }

    #[test]
    fn periodic_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = PeriodicArrivals::new(10, 3);
        let fired: Vec<u64> = (0..40)
            .filter(|&c| p.arrivals_in_cycle(c, &mut rng) == 1)
            .collect();
        assert_eq!(fired, vec![3, 13, 23, 33]);
        assert!((p.mean_rate() - 0.1).abs() < 1e-12);
    }
}
