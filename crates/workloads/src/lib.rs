//! # torus-workloads
//!
//! Synthetic traffic generation for torus network simulation, implementing the
//! workload assumptions of Safaei et al. (IPDPS 2006), Section 5.1:
//!
//! * nodes generate traffic independently of each other following a Poisson
//!   process with mean rate λ messages/node/cycle (assumption (a)),
//! * message length is fixed (assumption (c)) — though alternative length
//!   distributions are provided for extended studies,
//! * destinations are drawn uniformly at random among the healthy nodes
//!   (the traffic pattern used throughout the paper's evaluation); additional
//!   classical patterns (transpose, bit-complement, hotspot, nearest
//!   neighbour) are provided for the example programs and extension studies.
//!
//! The main entry point is [`TrafficSource`], one per node, which the
//! simulator polls every cycle for newly generated messages.

pub mod arrival;
pub mod lengths;
pub mod patterns;
pub mod source;

pub use arrival::{ArrivalProcess, BernoulliArrivals, PeriodicArrivals, PoissonArrivals};
pub use lengths::MessageLength;
pub use patterns::DestinationPattern;
pub use source::{GeneratedMessage, TrafficSource, TrafficSpec};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::arrival::{ArrivalProcess, PoissonArrivals};
    pub use crate::lengths::MessageLength;
    pub use crate::patterns::DestinationPattern;
    pub use crate::source::{GeneratedMessage, TrafficSource, TrafficSpec};
}
