//! Message length distributions.
//!
//! The paper fixes the message length per experiment (32 or 64 flits,
//! assumption (c)). Bimodal and uniform distributions are provided for
//! extension studies (short control messages mixed with long data messages is
//! the classical bimodal workload).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of message lengths, in flits.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MessageLength {
    /// Every message has exactly this many flits (the paper's assumption).
    Fixed(u32),
    /// Messages are short with probability `short_fraction`, long otherwise.
    Bimodal {
        /// Length of short messages, in flits.
        short: u32,
        /// Length of long messages, in flits.
        long: u32,
        /// Probability of a short message.
        short_fraction: f64,
    },
    /// Uniformly distributed length in `[min, max]` flits.
    Uniform {
        /// Minimum length in flits.
        min: u32,
        /// Maximum length in flits (inclusive).
        max: u32,
    },
}

impl MessageLength {
    /// Samples a message length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            MessageLength::Fixed(len) => len.max(1),
            MessageLength::Bimodal {
                short,
                long,
                short_fraction,
            } => {
                if rng.gen_bool(short_fraction.clamp(0.0, 1.0)) {
                    short.max(1)
                } else {
                    long.max(1)
                }
            }
            MessageLength::Uniform { min, max } => rng.gen_range(min.max(1)..=max.max(min.max(1))),
        }
    }

    /// Smallest length this distribution is *configured* with, in flits,
    /// before any clamping is applied by [`MessageLength::sample`].
    ///
    /// Simulator configurations use this to reject degenerate zero-length
    /// workloads at validation time instead of silently clamping them to one
    /// flit at generation time.
    pub fn min_flits(&self) -> u32 {
        match *self {
            MessageLength::Fixed(len) => len,
            MessageLength::Bimodal { short, long, .. } => short.min(long),
            MessageLength::Uniform { min, .. } => min,
        }
    }

    /// Mean message length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            MessageLength::Fixed(len) => len.max(1) as f64,
            MessageLength::Bimodal {
                short,
                long,
                short_fraction,
            } => {
                let p = short_fraction.clamp(0.0, 1.0);
                p * short.max(1) as f64 + (1.0 - p) * long.max(1) as f64
            }
            MessageLength::Uniform { min, max } => (min.max(1) as f64 + max.max(1) as f64) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_length_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = MessageLength::Fixed(32);
        assert!((0..100).all(|_| d.sample(&mut rng) == 32));
        assert_eq!(d.mean(), 32.0);
    }

    #[test]
    fn fixed_zero_is_clamped_to_one_flit() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(MessageLength::Fixed(0).sample(&mut rng), 1);
        assert_eq!(MessageLength::Fixed(0).mean(), 1.0);
    }

    #[test]
    fn bimodal_mixes_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = MessageLength::Bimodal {
            short: 8,
            long: 64,
            short_fraction: 0.75,
        };
        let samples: Vec<u32> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&l| l == 8 || l == 64));
        let short_frac = samples.iter().filter(|&&l| l == 8).count() as f64 / samples.len() as f64;
        assert!((short_frac - 0.75).abs() < 0.03);
        assert!((d.mean() - (0.75 * 8.0 + 0.25 * 64.0)).abs() < 1e-12);
    }

    #[test]
    fn min_flits_reports_configured_minimum() {
        assert_eq!(MessageLength::Fixed(32).min_flits(), 32);
        assert_eq!(MessageLength::Fixed(0).min_flits(), 0, "no clamping");
        assert_eq!(
            MessageLength::Bimodal {
                short: 0,
                long: 64,
                short_fraction: 0.5
            }
            .min_flits(),
            0
        );
        assert_eq!(MessageLength::Uniform { min: 4, max: 12 }.min_flits(), 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = MessageLength::Uniform { min: 4, max: 12 };
        let samples: Vec<u32> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&l| (4..=12).contains(&l)));
        assert!(samples.contains(&4));
        assert!(samples.contains(&12));
        assert_eq!(d.mean(), 8.0);
    }
}
