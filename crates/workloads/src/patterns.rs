//! Destination (spatial traffic) patterns.
//!
//! The paper's evaluation uses the uniform random pattern: every healthy
//! endpoint other than the source is an equally likely destination. The other
//! classical patterns are provided for the example programs and extension
//! studies; they all avoid faulty destinations by falling back to uniform
//! random selection among healthy endpoints when their nominal target is
//! faulty (the paper's assumption that messages are only generated between
//! healthy nodes).
//!
//! Messages originate and terminate at *endpoints* only. On direct grids
//! every node is an endpoint, so nothing changes; on fat-trees the switch
//! fabric never sources or sinks traffic, and the coordinate-based patterns
//! (transpose, complement, reversal) — which are grid concepts — fall back to
//! uniform random endpoint selection.

use rand::Rng;
use serde::{Deserialize, Serialize};
use torus_faults::FaultSet;
use torus_topology::{AnyTopology, Coord, NodeId};

/// A spatial traffic pattern mapping a source endpoint to a destination
/// endpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DestinationPattern {
    /// Uniformly random destination among all healthy endpoints other than
    /// the source (the pattern used in the paper's evaluation).
    UniformRandom,
    /// Matrix transpose: the destination's coordinate is the source's
    /// coordinate rotated by one dimension (digit i of the destination is
    /// digit (i+1) mod n of the source). Grids only; falls back to uniform
    /// random on indirect topologies.
    Transpose,
    /// Bit/dimension complement: digit i of the destination is
    /// `k - 1 - digit i` of the source. Grids only; falls back to uniform
    /// random on indirect topologies.
    Complement,
    /// Dimension reversal: the destination's digits are the source's digits in
    /// reverse order. Grids only; falls back to uniform random on indirect
    /// topologies.
    Reversal,
    /// Hotspot: with probability `fraction` the destination is the given node,
    /// otherwise uniform random.
    Hotspot {
        /// The hotspot node.
        node: u32,
        /// Fraction of traffic addressed to the hotspot.
        fraction: f64,
    },
    /// Nearest neighbour: a uniformly random healthy endpoint one hop away.
    /// On fat-trees no endpoint is adjacent to another endpoint, so this
    /// falls back to uniform random.
    NearestNeighbor,
}

impl DestinationPattern {
    /// Picks a destination for a message generated at `src`.
    ///
    /// Returns `None` when no valid destination exists (for instance when the
    /// source is the only healthy endpoint).
    pub fn pick<R: Rng + ?Sized>(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        src: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let nominal = match self {
            DestinationPattern::UniformRandom => None,
            DestinationPattern::Transpose => net.grid().and_then(|g| {
                // On mixed-radix shapes the rotated digits may not be a valid
                // address; fall back to uniform random in that case.
                let c = g.coord(src);
                let n = c.dims();
                let digits: Vec<u16> = (0..n).map(|i| c.get((i + 1) % n)).collect();
                g.node(&Coord::new(digits)).ok()
            }),
            DestinationPattern::Complement => net.grid().map(|g| {
                let c = g.coord(src);
                let digits: Vec<u16> = c
                    .digits()
                    .iter()
                    .enumerate()
                    .map(|(dim, &d)| g.radix(dim) - 1 - d)
                    .collect();
                g.node(&Coord::new(digits))
                    .expect("complement digit stays in range")
            }),
            DestinationPattern::Reversal => net.grid().and_then(|g| {
                // Like Transpose, reversal is only address-preserving on
                // uniform radices; otherwise fall back to uniform random.
                let c = g.coord(src);
                let digits: Vec<u16> = c.digits().iter().rev().copied().collect();
                g.node(&Coord::new(digits)).ok()
            }),
            DestinationPattern::Hotspot { node, fraction } => {
                if rng.gen_bool((*fraction).clamp(0.0, 1.0)) {
                    Some(NodeId(*node))
                } else {
                    None
                }
            }
            DestinationPattern::NearestNeighbor => {
                let neighbors = net.neighbors(src);
                let healthy: Vec<NodeId> = neighbors
                    .iter()
                    .map(|(_, n)| *n)
                    .filter(|n| net.is_endpoint(*n) && !faults.is_node_faulty(*n) && *n != src)
                    .collect();
                if healthy.is_empty() {
                    None
                } else {
                    Some(healthy[rng.gen_range(0..healthy.len())])
                }
            }
        };

        match nominal {
            Some(dest) if dest != src && net.is_endpoint(dest) && !faults.is_node_faulty(dest) => {
                Some(dest)
            }
            Some(_) | None => uniform_healthy_destination(net, faults, src, rng),
        }
    }
}

/// Uniformly random healthy endpoint different from `src`.
fn uniform_healthy_destination<R: Rng + ?Sized>(
    net: &AnyTopology,
    faults: &FaultSet,
    src: NodeId,
    rng: &mut R,
) -> Option<NodeId> {
    // Endpoints occupy the dense id range `0..num_endpoints` on every
    // topology (grids: all nodes; fat-trees: processing nodes before the
    // switch fabric), so endpoint sampling is direct.
    let n = net.num_endpoints() as u32;
    let faulty_endpoints = faults
        .faulty_nodes()
        .filter(|&f| net.is_endpoint(f))
        .count();
    let healthy = n as usize - faulty_endpoints;
    if healthy <= 1 {
        return None;
    }
    // Rejection sampling: the fault density in all experiments is tiny
    // (< 10 %), so this terminates almost immediately.
    for _ in 0..64 {
        let cand = NodeId(rng.gen_range(0..n));
        if cand != src && !faults.is_node_faulty(cand) {
            return Some(cand);
        }
    }
    // Extremely unlikely fallback: scan deterministically.
    net.endpoints()
        .find(|c| *c != src && !faults.is_node_faulty(*c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (AnyTopology, FaultSet, StdRng) {
        (
            AnyTopology::torus(8, 2).unwrap(),
            FaultSet::new(),
            StdRng::seed_from_u64(2024),
        )
    }

    fn node(t: &AnyTopology, digits: &[u16]) -> NodeId {
        t.grid().unwrap().node_from_digits(digits).unwrap()
    }

    fn digits(t: &AnyTopology, n: NodeId) -> Vec<u16> {
        t.grid().unwrap().coord(n).digits().to_vec()
    }

    #[test]
    fn uniform_random_avoids_source_and_faults() {
        let (t, mut f, mut rng) = setup();
        let bad = node(&t, &[5, 5]);
        f.fail_node(bad);
        let src = node(&t, &[0, 0]);
        for _ in 0..2000 {
            let d = DestinationPattern::UniformRandom
                .pick(&t, &f, src, &mut rng)
                .unwrap();
            assert_ne!(d, src);
            assert_ne!(d, bad);
        }
    }

    #[test]
    fn uniform_random_is_roughly_uniform() {
        let (t, f, mut rng) = setup();
        let src = node(&t, &[3, 3]);
        let mut counts = vec![0u32; t.num_nodes()];
        let draws = 63_000;
        for _ in 0..draws {
            let d = DestinationPattern::UniformRandom
                .pick(&t, &f, src, &mut rng)
                .unwrap();
            counts[d.index()] += 1;
        }
        let expected = draws as f64 / 63.0;
        for (i, &c) in counts.iter().enumerate() {
            if i == src.index() {
                assert_eq!(c, 0);
            } else {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.25,
                    "node {i}: {c} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn transpose_rotates_digits() {
        let (t, f, mut rng) = setup();
        let src = node(&t, &[2, 6]);
        let d = DestinationPattern::Transpose
            .pick(&t, &f, src, &mut rng)
            .unwrap();
        assert_eq!(digits(&t, d), &[6, 2]);
    }

    #[test]
    fn complement_mirrors_digits() {
        let (t, f, mut rng) = setup();
        let src = node(&t, &[1, 3]);
        let d = DestinationPattern::Complement
            .pick(&t, &f, src, &mut rng)
            .unwrap();
        assert_eq!(digits(&t, d), &[6, 4]);
    }

    #[test]
    fn reversal_in_three_dims() {
        let t = AnyTopology::torus(4, 3).unwrap();
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let src = node(&t, &[1, 2, 3]);
        let d = DestinationPattern::Reversal
            .pick(&t, &f, src, &mut rng)
            .unwrap();
        assert_eq!(digits(&t, d), &[3, 2, 1]);
    }

    #[test]
    fn self_addressed_patterns_fall_back_to_uniform() {
        let (t, f, mut rng) = setup();
        // A node on the transpose diagonal would address itself; the pattern
        // must fall back to a different healthy destination.
        let src = node(&t, &[4, 4]);
        for _ in 0..100 {
            let d = DestinationPattern::Transpose
                .pick(&t, &f, src, &mut rng)
                .unwrap();
            assert_ne!(d, src);
        }
    }

    #[test]
    fn faulty_nominal_destination_falls_back() {
        let (t, mut f, mut rng) = setup();
        let victim = node(&t, &[6, 2]);
        f.fail_node(victim);
        let src = node(&t, &[2, 6]);
        for _ in 0..100 {
            let d = DestinationPattern::Transpose
                .pick(&t, &f, src, &mut rng)
                .unwrap();
            assert_ne!(d, victim);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let (t, f, mut rng) = setup();
        let hot = node(&t, &[7, 7]);
        let pat = DestinationPattern::Hotspot {
            node: hot.0,
            fraction: 0.3,
        };
        let src = node(&t, &[0, 0]);
        let draws = 20_000;
        let hits = (0..draws)
            .filter(|_| pat.pick(&t, &f, src, &mut rng).unwrap() == hot)
            .count();
        let frac = hits as f64 / draws as f64;
        // 30 % direct + ~1/63 of the remaining uniform traffic
        assert!((frac - 0.311).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn nearest_neighbor_is_one_hop_away() {
        let (t, f, mut rng) = setup();
        let src = node(&t, &[3, 4]);
        for _ in 0..200 {
            let d = DestinationPattern::NearestNeighbor
                .pick(&t, &f, src, &mut rng)
                .unwrap();
            assert_eq!(t.distance(src, d), 1);
        }
    }

    #[test]
    fn mixed_radix_patterns_fall_back_safely() {
        // On an 8x4 mixed-radix shape, transposing/reversing a coordinate can
        // produce an out-of-range digit; the pattern must fall back to a
        // uniform healthy destination instead of panicking.
        let net =
            AnyTopology::Grid(torus_topology::Network::new(vec![8, 4], vec![true, false]).unwrap());
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let src = node(&net, &[6, 1]);
        for pattern in [
            DestinationPattern::Transpose,
            DestinationPattern::Reversal,
            DestinationPattern::Complement,
            DestinationPattern::NearestNeighbor,
        ] {
            for _ in 0..200 {
                let d = pattern.pick(&net, &f, src, &mut rng).unwrap();
                assert_ne!(d, src, "{pattern:?}");
            }
        }
        // Complement uses the per-dimension radix.
        let d = DestinationPattern::Complement
            .pick(&net, &f, node(&net, &[1, 3]), &mut rng)
            .unwrap();
        assert_eq!(digits(&net, d), &[6, 0]);
    }

    #[test]
    fn no_destination_when_alone() {
        let t = AnyTopology::torus(2, 1).unwrap();
        let mut f = FaultSet::new();
        f.fail_node(NodeId(1));
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            DestinationPattern::UniformRandom.pick(&t, &f, NodeId(0), &mut rng),
            None
        );
    }

    #[test]
    fn fat_tree_destinations_are_always_endpoints() {
        // Every pattern must resolve to a healthy endpoint on a fat-tree —
        // the coordinate patterns fall back to uniform, nearest-neighbour has
        // no endpoint neighbours, and switches are never destinations.
        let t = AnyTopology::fat_tree_new(4, 2).unwrap();
        let mut f = FaultSet::new();
        f.fail_node(NodeId(7));
        let mut rng = StdRng::seed_from_u64(9);
        let src = NodeId(0);
        for pattern in [
            DestinationPattern::UniformRandom,
            DestinationPattern::Transpose,
            DestinationPattern::Complement,
            DestinationPattern::Reversal,
            DestinationPattern::NearestNeighbor,
            DestinationPattern::Hotspot {
                node: 3,
                fraction: 0.5,
            },
        ] {
            for _ in 0..200 {
                let d = pattern.pick(&t, &f, src, &mut rng).unwrap();
                assert!(t.is_endpoint(d), "{pattern:?} picked switch {d:?}");
                assert_ne!(d, src, "{pattern:?}");
                assert_ne!(d, NodeId(7), "{pattern:?} picked the faulty node");
            }
        }
    }

    #[test]
    fn fat_tree_uniform_covers_all_healthy_endpoints() {
        let t = AnyTopology::fat_tree_new(4, 2).unwrap();
        let f = FaultSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = DestinationPattern::UniformRandom
                .pick(&t, &f, NodeId(5), &mut rng)
                .unwrap();
            seen.insert(d);
        }
        assert_eq!(seen.len(), t.num_endpoints() - 1);
    }
}
