//! The per-simulation metrics collector and final report.

use crate::histogram::Histogram;
use crate::stats::StreamingStats;
use crate::throughput::ThroughputMeter;
use serde::{Deserialize, Serialize};

/// When statistics gathering begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmupPolicy {
    /// Measure from the very first message.
    None,
    /// Skip the first `n` generated messages (the paper discards the first
    /// 10,000 of 100,000 messages).
    Messages(u64),
    /// Skip everything generated before cycle `n`.
    Cycles(u64),
}

impl WarmupPolicy {
    fn is_measured(&self, generated_so_far: u64, cycle: u64) -> bool {
        match *self {
            WarmupPolicy::None => true,
            WarmupPolicy::Messages(n) => generated_so_far >= n,
            WarmupPolicy::Cycles(n) => cycle >= n,
        }
    }
}

/// Collects events from one simulation run and produces a
/// [`SimulationReport`].
#[derive(Clone, Debug)]
pub struct MetricsCollector {
    num_nodes: usize,
    warmup: WarmupPolicy,
    generated: u64,
    generated_measured: u64,
    delivered: u64,
    delivered_measured: u64,
    absorbed_events: u64,
    absorbed_events_measured: u64,
    reinjection_queue_peak: u64,
    latency: StreamingStats,
    latency_hist: Histogram,
    network_latency: StreamingStats,
    hops: StreamingStats,
    throughput: ThroughputMeter,
    measurement_start_cycle: Option<u64>,
}

impl MetricsCollector {
    /// Creates a collector for a network of `num_nodes` healthy+faulty nodes.
    pub fn new(num_nodes: usize, warmup: WarmupPolicy) -> Self {
        MetricsCollector {
            num_nodes,
            warmup,
            generated: 0,
            generated_measured: 0,
            delivered: 0,
            delivered_measured: 0,
            absorbed_events: 0,
            absorbed_events_measured: 0,
            reinjection_queue_peak: 0,
            latency: StreamingStats::new(),
            latency_hist: Histogram::for_latencies(20_000),
            network_latency: StreamingStats::new(),
            hops: StreamingStats::new(),
            throughput: ThroughputMeter::new(),
            measurement_start_cycle: None,
        }
    }

    /// Registers a newly generated message and returns whether it belongs to
    /// the measured population (i.e. is past the warm-up transient).
    pub fn on_generated(&mut self, cycle: u64) -> bool {
        let measured = self.warmup.is_measured(self.generated, cycle);
        self.generated += 1;
        if measured {
            if self.measurement_start_cycle.is_none() {
                self.measurement_start_cycle = Some(cycle);
                self.throughput.start_window(cycle);
            }
            self.generated_measured += 1;
            self.throughput.record_offered();
        }
        measured
    }

    /// Registers an absorption (software re-routing) event. A message absorbed
    /// several times contributes several events, matching the paper's
    /// "messages queued" metric.
    pub fn on_absorbed(&mut self, measured: bool) {
        self.absorbed_events += 1;
        if measured {
            self.absorbed_events_measured += 1;
        }
    }

    /// Registers the current occupancy of a node's software re-injection
    /// queue (used to track the peak backlog).
    pub fn on_reinjection_queue_depth(&mut self, depth: usize) {
        self.reinjection_queue_peak = self.reinjection_queue_peak.max(depth as u64);
    }

    /// Registers a delivered message.
    ///
    /// * `generated_at` / `delivered_at` — cycles of generation and of the
    ///   last flit reaching the destination PE,
    /// * `injected_at` — cycle the header first entered the network (used for
    ///   the network-only latency),
    /// * `flits` — message length,
    /// * `hops` — network hops traversed (across all injections),
    /// * `measured` — the flag returned by [`MetricsCollector::on_generated`].
    #[allow(clippy::too_many_arguments)]
    pub fn on_delivered(
        &mut self,
        generated_at: u64,
        injected_at: u64,
        delivered_at: u64,
        flits: u32,
        hops: u32,
        measured: bool,
    ) {
        self.delivered += 1;
        if !measured {
            return;
        }
        self.delivered_measured += 1;
        let latency = delivered_at.saturating_sub(generated_at) as f64;
        self.latency.record(latency);
        self.latency_hist.record(latency);
        self.network_latency
            .record(delivered_at.saturating_sub(injected_at) as f64);
        self.hops.record(hops as f64);
        self.throughput.record_delivery(delivered_at, flits);
    }

    /// Total messages generated (including warm-up).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Total messages delivered (including warm-up).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Measured messages delivered.
    pub fn delivered_measured(&self) -> u64 {
        self.delivered_measured
    }

    /// Absorption events (including warm-up) — the paper's "number of messages
    /// queued".
    pub fn absorbed_events(&self) -> u64 {
        self.absorbed_events
    }

    /// Produces the final report. `now` is the cycle the simulation stopped
    /// at; `in_flight` the number of messages still travelling.
    pub fn report(&self, now: u64, in_flight: u64) -> SimulationReport {
        SimulationReport {
            num_nodes: self.num_nodes,
            cycles: now,
            generated_messages: self.generated,
            measured_messages: self.delivered_measured,
            delivered_messages: self.delivered,
            in_flight_messages: in_flight,
            mean_latency: self.latency.mean(),
            latency_std_dev: self.latency.std_dev(),
            latency_ci95: self.latency.ci95_half_width(),
            max_latency: self.latency.max().unwrap_or(0.0),
            p50_latency: self.latency_hist.quantile(0.5).unwrap_or(0.0),
            p99_latency: self.latency_hist.quantile(0.99).unwrap_or(0.0),
            mean_network_latency: self.network_latency.mean(),
            mean_hops: self.hops.mean(),
            throughput: self.throughput.message_throughput(self.num_nodes, now),
            flit_throughput: self.throughput.flit_throughput(self.num_nodes, now),
            acceptance_ratio: self.throughput.acceptance_ratio(),
            messages_queued: self.absorbed_events,
            messages_queued_measured: self.absorbed_events_measured,
            reinjection_queue_peak: self.reinjection_queue_peak,
        }
    }
}

/// Summary of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Number of nodes in the network (healthy + faulty).
    pub num_nodes: usize,
    /// Number of cycles simulated.
    pub cycles: u64,
    /// Messages generated in total (including warm-up).
    pub generated_messages: u64,
    /// Messages in the measured (post-warm-up) population that were delivered.
    pub measured_messages: u64,
    /// Messages delivered in total.
    pub delivered_messages: u64,
    /// Messages still in flight when the run stopped.
    pub in_flight_messages: u64,
    /// Mean message latency in cycles (generation → last flit at destination).
    pub mean_latency: f64,
    /// Standard deviation of the measured latencies.
    pub latency_std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean latency.
    pub latency_ci95: f64,
    /// Largest measured latency.
    pub max_latency: f64,
    /// Median latency (from the 1-cycle-bin histogram).
    pub p50_latency: f64,
    /// 99th-percentile latency.
    pub p99_latency: f64,
    /// Mean latency counted from network injection rather than generation.
    pub mean_network_latency: f64,
    /// Mean number of hops traversed per delivered message.
    pub mean_hops: f64,
    /// Delivered messages per node per cycle (the paper's throughput metric).
    pub throughput: f64,
    /// Delivered flits per node per cycle.
    pub flit_throughput: f64,
    /// Delivered / offered ratio within the measurement window.
    pub acceptance_ratio: f64,
    /// Absorption events due to faults — the paper's "number of messages
    /// queued" (a message absorbed twice counts twice).
    pub messages_queued: u64,
    /// Absorption events restricted to measured messages.
    pub messages_queued_measured: u64,
    /// Peak occupancy observed in any node's software re-injection queue.
    pub reinjection_queue_peak: u64,
}

impl SimulationReport {
    /// Header of the CSV representation produced by
    /// [`SimulationReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "nodes,cycles,generated,measured,delivered,in_flight,mean_latency,latency_ci95,p50,p99,mean_hops,throughput,flit_throughput,acceptance,messages_queued"
    }

    /// One CSV row summarising the run.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.3},{:.3},{:.1},{:.1},{:.3},{:.6},{:.6},{:.4},{}",
            self.num_nodes,
            self.cycles,
            self.generated_messages,
            self.measured_messages,
            self.delivered_messages,
            self.in_flight_messages,
            self.mean_latency,
            self.latency_ci95,
            self.p50_latency,
            self.p99_latency,
            self.mean_hops,
            self.throughput,
            self.flit_throughput,
            self.acceptance_ratio,
            self.messages_queued,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_by_messages_skips_early_messages() {
        let mut c = MetricsCollector::new(64, WarmupPolicy::Messages(10));
        let mut measured_flags = Vec::new();
        for i in 0..20 {
            measured_flags.push(c.on_generated(i));
        }
        assert!(measured_flags[..10].iter().all(|m| !m));
        assert!(measured_flags[10..].iter().all(|m| *m));
        assert_eq!(c.generated(), 20);
    }

    #[test]
    fn warmup_by_cycles() {
        let mut c = MetricsCollector::new(4, WarmupPolicy::Cycles(100));
        assert!(!c.on_generated(99));
        assert!(c.on_generated(100));
        assert!(c.on_generated(250));
    }

    #[test]
    fn latency_accounting() {
        let mut c = MetricsCollector::new(64, WarmupPolicy::None);
        let m = c.on_generated(0);
        c.on_delivered(0, 2, 50, 32, 8, m);
        let m = c.on_generated(10);
        c.on_delivered(10, 12, 110, 32, 12, m);
        let report = c.report(200, 0);
        assert_eq!(report.measured_messages, 2);
        assert!((report.mean_latency - 75.0).abs() < 1e-9);
        assert!((report.mean_network_latency - 73.0).abs() < 1e-9);
        assert!((report.mean_hops - 10.0).abs() < 1e-9);
        assert_eq!(report.delivered_messages, 2);
    }

    #[test]
    fn unmeasured_deliveries_do_not_affect_latency() {
        let mut c = MetricsCollector::new(16, WarmupPolicy::Messages(1));
        let m0 = c.on_generated(0); // warm-up message
        let m1 = c.on_generated(1);
        c.on_delivered(0, 0, 1000, 32, 4, m0);
        c.on_delivered(1, 1, 51, 32, 4, m1);
        let r = c.report(100, 0);
        assert_eq!(r.measured_messages, 1);
        assert!((r.mean_latency - 50.0).abs() < 1e-9);
        assert_eq!(r.delivered_messages, 2);
    }

    #[test]
    fn absorption_counting() {
        let mut c = MetricsCollector::new(512, WarmupPolicy::None);
        let m = c.on_generated(0);
        c.on_absorbed(m);
        c.on_absorbed(m);
        c.on_absorbed(false);
        assert_eq!(c.absorbed_events(), 3);
        let r = c.report(10, 1);
        assert_eq!(r.messages_queued, 3);
        assert_eq!(r.messages_queued_measured, 2);
    }

    #[test]
    fn throughput_window_starts_at_measurement() {
        let mut c = MetricsCollector::new(10, WarmupPolicy::Messages(2));
        let m0 = c.on_generated(0);
        let m1 = c.on_generated(5);
        let m2 = c.on_generated(10); // measurement starts here
        c.on_delivered(0, 0, 20, 16, 2, m0);
        c.on_delivered(5, 5, 30, 16, 2, m1);
        c.on_delivered(10, 10, 40, 16, 2, m2);
        let r = c.report(110, 0);
        // window is cycles 10..110 = 100 cycles, 1 delivery, 10 nodes
        assert!((r.throughput - 1.0 / (100.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn csv_row_matches_header_field_count() {
        let c = MetricsCollector::new(8, WarmupPolicy::None);
        let r = c.report(0, 0);
        let header_fields = SimulationReport::csv_header().split(',').count();
        let row_fields = r.csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
    }

    #[test]
    fn reinjection_queue_peak_tracks_maximum() {
        let mut c = MetricsCollector::new(8, WarmupPolicy::None);
        c.on_reinjection_queue_depth(2);
        c.on_reinjection_queue_depth(7);
        c.on_reinjection_queue_depth(3);
        assert_eq!(c.report(1, 0).reinjection_queue_peak, 7);
    }
}
