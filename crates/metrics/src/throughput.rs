//! Throughput accounting.
//!
//! Throughput in the paper (Fig. 6) is "the rate at which messages are
//! delivered by the network for a particular traffic pattern ... measured by
//! counting the messages that arrive at destination over a time interval".
//! [`ThroughputMeter`] counts delivered messages and flits over the
//! measurement window and normalises them per node per cycle.

use serde::{Deserialize, Serialize};

/// Counts deliveries over a measurement window.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    window_start: Option<u64>,
    window_end: Option<u64>,
    delivered_messages: u64,
    delivered_flits: u64,
    offered_messages: u64,
}

impl ThroughputMeter {
    /// Creates an idle meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the beginning of the measurement window.
    pub fn start_window(&mut self, cycle: u64) {
        self.window_start = Some(cycle);
        self.window_end = None;
        self.delivered_messages = 0;
        self.delivered_flits = 0;
        self.offered_messages = 0;
    }

    /// Marks the end of the measurement window.
    pub fn end_window(&mut self, cycle: u64) {
        self.window_end = Some(cycle);
    }

    /// Records a message offered to the network during the window.
    pub fn record_offered(&mut self) {
        if self.window_start.is_some() && self.window_end.is_none() {
            self.offered_messages += 1;
        }
    }

    /// Records a delivered message of `flits` flits at `cycle`.
    pub fn record_delivery(&mut self, cycle: u64, flits: u32) {
        if let Some(start) = self.window_start {
            if cycle >= start && self.window_end.is_none_or(|end| cycle < end) {
                self.delivered_messages += 1;
                self.delivered_flits += flits as u64;
            }
        }
    }

    /// Messages delivered during the window.
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Flits delivered during the window.
    pub fn delivered_flits(&self) -> u64 {
        self.delivered_flits
    }

    /// Messages offered (generated) during the window.
    pub fn offered_messages(&self) -> u64 {
        self.offered_messages
    }

    /// Length of the (closed) measurement window in cycles.
    pub fn window_cycles(&self, now: u64) -> u64 {
        match (self.window_start, self.window_end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            (Some(s), None) => now.saturating_sub(s),
            _ => 0,
        }
    }

    /// Delivered messages per node per cycle.
    pub fn message_throughput(&self, num_nodes: usize, now: u64) -> f64 {
        let cycles = self.window_cycles(now);
        if cycles == 0 || num_nodes == 0 {
            return 0.0;
        }
        self.delivered_messages as f64 / (cycles as f64 * num_nodes as f64)
    }

    /// Delivered flits per node per cycle (channel utilisation view).
    pub fn flit_throughput(&self, num_nodes: usize, now: u64) -> f64 {
        let cycles = self.window_cycles(now);
        if cycles == 0 || num_nodes == 0 {
            return 0.0;
        }
        self.delivered_flits as f64 / (cycles as f64 * num_nodes as f64)
    }

    /// Fraction of offered messages that were delivered inside the window
    /// (1.0 when nothing was offered).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.offered_messages == 0 {
            1.0
        } else {
            self.delivered_messages as f64 / self.offered_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_normalisation() {
        let mut m = ThroughputMeter::new();
        m.start_window(1000);
        for c in 1000..2000 {
            if c % 10 == 0 {
                m.record_delivery(c, 32);
            }
        }
        m.end_window(2000);
        // 100 messages over 1000 cycles and 64 nodes
        assert_eq!(m.delivered_messages(), 100);
        assert_eq!(m.delivered_flits(), 3200);
        let thr = m.message_throughput(64, 2000);
        assert!((thr - 100.0 / (1000.0 * 64.0)).abs() < 1e-12);
        let fthr = m.flit_throughput(64, 2000);
        assert!((fthr - 3200.0 / (1000.0 * 64.0)).abs() < 1e-12);
    }

    #[test]
    fn deliveries_outside_window_are_ignored() {
        let mut m = ThroughputMeter::new();
        m.record_delivery(5, 8); // before start_window: ignored
        m.start_window(10);
        m.record_delivery(9, 8); // before window: ignored
        m.record_delivery(10, 8);
        m.end_window(20);
        m.record_delivery(25, 8); // after window: ignored
        assert_eq!(m.delivered_messages(), 1);
    }

    #[test]
    fn open_window_uses_current_cycle() {
        let mut m = ThroughputMeter::new();
        m.start_window(0);
        m.record_delivery(5, 4);
        assert_eq!(m.window_cycles(50), 50);
        assert!((m.message_throughput(10, 50) - 1.0 / 500.0).abs() < 1e-12);
    }

    #[test]
    fn acceptance_ratio() {
        let mut m = ThroughputMeter::new();
        m.start_window(0);
        for _ in 0..10 {
            m.record_offered();
        }
        for c in 0..7 {
            m.record_delivery(c, 1);
        }
        m.end_window(100);
        assert!((m.acceptance_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(ThroughputMeter::new().acceptance_ratio(), 1.0);
    }

    #[test]
    fn idle_meter_reports_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.message_throughput(64, 100), 0.0);
        assert_eq!(m.flit_throughput(64, 100), 0.0);
        assert_eq!(m.window_cycles(10), 0);
    }
}
