//! # torus-metrics
//!
//! Statistics gathering for the flit-level network simulator, implementing the
//! measurement methodology of Safaei et al. (IPDPS 2006), Section 5.2:
//!
//! * the **mean message latency** is the mean time from the *generation* of a
//!   message until its last data flit reaches the local PE at the destination
//!   (so it includes source-queueing time and any software re-injection
//!   delays);
//! * statistics gathering is inhibited for a configurable number of warm-up
//!   messages to avoid start-up transients (the paper discards the first
//!   10,000 of 100,000 messages);
//! * **throughput** is the rate at which messages are delivered by the network
//!   (messages per node per cycle) over the measurement interval;
//! * the **number of messages queued** counts absorption events at
//!   intermediate nodes due to faults — a message absorbed twice counts twice.
//!
//! The crate is simulator-agnostic: the simulator reports events to a
//! [`MetricsCollector`] and reads a [`SimulationReport`] at the end.

pub mod collector;
pub mod histogram;
pub mod stats;
pub mod throughput;

pub use collector::{MetricsCollector, SimulationReport, WarmupPolicy};
pub use histogram::Histogram;
pub use stats::StreamingStats;
pub use throughput::ThroughputMeter;

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::collector::{MetricsCollector, SimulationReport, WarmupPolicy};
    pub use crate::histogram::Histogram;
    pub use crate::stats::StreamingStats;
    pub use crate::throughput::ThroughputMeter;
}
