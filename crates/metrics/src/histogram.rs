//! Fixed-bin-width histogram for latency distributions.

use serde::{Deserialize, Serialize};

/// A histogram over non-negative values with uniform bin width and an overflow
/// bucket. Latencies in the simulator are cycle counts, so integer-valued bins
/// (width 1 or a small multiple) capture the distribution exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `num_bins` bins of width `bin_width`; values
    /// at or beyond `num_bins * bin_width` land in the overflow bucket.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(num_bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Histogram sized for message latencies: 1-cycle bins up to `max_cycles`.
    pub fn for_latencies(max_cycles: usize) -> Self {
        Histogram::new(1.0, max_cycles.max(1))
    }

    /// Records one observation (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = (v / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Mean of all recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate p-quantile (0 ≤ p ≤ 1) from the binned data: returns the
    /// upper edge of the bin containing the quantile, or `None` if the
    /// histogram is empty or the quantile falls into the overflow bucket.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bin_width);
            }
        }
        None
    }

    /// Bin counts (excluding overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Merges another histogram with identical binning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths must match");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts must match");
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mean() {
        let mut h = Histogram::new(10.0, 10);
        for v in [5.0, 15.0, 25.0, 35.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_bucket() {
        let mut h = Histogram::new(1.0, 5);
        h.record(4.5);
        h.record(5.0);
        h.record(100.0);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::for_latencies(1000);
        for v in 1..=100 {
            h.record(v as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 51.0).abs() <= 1.0);
        let p99 = h.quantile(0.99).unwrap();
        assert!((99.0..=101.0).contains(&p99));
        assert!(h.quantile(0.0).is_some());
        assert_eq!(Histogram::new(1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn quantile_in_overflow_is_none() {
        let mut h = Histogram::new(1.0, 2);
        h.record(10.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn negative_values_clamp_to_zero() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-3.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2.0, 4);
        let mut b = Histogram::new(2.0, 4);
        a.record(1.0);
        b.record(3.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.bins()[0], 1);
        assert_eq!(a.bins()[1], 1);
    }

    #[test]
    #[should_panic(expected = "bin widths must match")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(1.0, 4);
        let b = Histogram::new(2.0, 4);
        a.merge(&b);
    }
}
