//! Streaming (single-pass) summary statistics.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / extrema (Welford's
/// algorithm). Used for message latencies, hop counts and queue occupancies.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation — the square root of
    /// [`StreamingStats::variance`], i.e. `sqrt(m2 / n)`.
    ///
    /// The *population* convention (divide by `n`, not `n - 1`) is used
    /// deliberately and consistently: simulation runs measure the entire
    /// delivered-message population of the run, not a sample from a larger
    /// one, and the derived standard error / confidence intervals inherit the
    /// same convention. Pinned by `std_dev_uses_population_convention`.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the ~95 % normal-approximation confidence interval of the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel sweep aggregation).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = StreamingStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn std_dev_uses_population_convention() {
        // Pin the documented convention: std_dev = sqrt(m2 / n), NOT the
        // Bessel-corrected sample formula sqrt(m2 / (n - 1)).
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut s = StreamingStats::new();
        for v in values {
            s.record(v);
        }
        let n = values.len() as f64;
        let mean: f64 = values.iter().sum::<f64>() / n;
        let m2: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
        let population = (m2 / n).sqrt();
        let sample = (m2 / (n - 1.0)).sqrt();
        assert!((s.std_dev() - population).abs() < 1e-12);
        assert!(
            (s.std_dev() - sample).abs() > 1e-3,
            "must not be the sample convention"
        );
        assert!((s.std_error() - population / n.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut s = StreamingStats::new();
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 50.0)
            .collect();
        let mut all = StreamingStats::new();
        for &v in &values {
            all.record(v);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = StreamingStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert_eq!(a, before);

        let mut empty = StreamingStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let mut small = StreamingStats::new();
        let mut large = StreamingStats::new();
        for i in 0..10 {
            small.record(i as f64);
        }
        for i in 0..10_000 {
            large.record((i % 10) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }
}
