//! Convex / concave classification of fault regions.
//!
//! The paper (Section 3) distinguishes convex ("block") fault regions —
//! regions that completely fill their bounding rectangle, such as `|`, `||`
//! and `□` shapes — from concave regions such as `L`, `U`, `T`, `+` and `H`
//! shapes. Concave regions are harder to enter and exit, which is why Fig. 5
//! shows higher latency for them.

use crate::regions::RegionShape;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Classification of a coalesced fault region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionClass {
    /// The region completely fills its bounding rectangle (a block fault).
    Convex,
    /// The region does not fill its bounding rectangle.
    Concave,
}

/// Classifies a set of 2-D cells as convex (fills its bounding box) or
/// concave.
///
/// An empty region is (vacuously) convex.
pub fn classify_cells(cells: &[(u16, u16)]) -> RegionClass {
    if cells.is_empty() {
        return RegionClass::Convex;
    }
    let set: HashSet<(u16, u16)> = cells.iter().copied().collect();
    let min_x = cells.iter().map(|c| c.0).min().unwrap();
    let max_x = cells.iter().map(|c| c.0).max().unwrap();
    let min_y = cells.iter().map(|c| c.1).min().unwrap();
    let max_y = cells.iter().map(|c| c.1).max().unwrap();
    for x in min_x..=max_x {
        for y in min_y..=max_y {
            if !set.contains(&(x, y)) {
                return RegionClass::Concave;
            }
        }
    }
    RegionClass::Convex
}

/// Classifies a [`RegionShape`].
pub fn classify_region(shape: &RegionShape) -> RegionClass {
    classify_cells(&shape.cells())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convex_shapes_are_convex() {
        assert_eq!(
            classify_region(&RegionShape::Rect {
                width: 4,
                height: 5
            }),
            RegionClass::Convex
        );
        assert_eq!(
            classify_region(&RegionShape::Bar { length: 6 }),
            RegionClass::Convex
        );
        assert_eq!(
            classify_region(&RegionShape::DoubleBar { length: 3 }),
            RegionClass::Convex
        );
    }

    #[test]
    fn concave_shapes_are_concave() {
        for shape in [
            RegionShape::paper_l_9(),
            RegionShape::paper_u_8(),
            RegionShape::paper_t_10(),
            RegionShape::paper_plus_16(),
            RegionShape::HShape {
                width: 4,
                height: 5,
            },
        ] {
            assert_eq!(classify_region(&shape), RegionClass::Concave, "{shape:?}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        // A 1x1 "L" collapses into a single cell, which is convex.
        assert_eq!(
            classify_region(&RegionShape::LShape {
                vertical: 1,
                horizontal: 1
            }),
            RegionClass::Convex
        );
        assert_eq!(classify_cells(&[]), RegionClass::Convex);
        assert_eq!(classify_cells(&[(3, 3)]), RegionClass::Convex);
    }

    #[test]
    fn hand_built_cells() {
        // Square with a bite taken out.
        let cells = vec![(0, 0), (0, 1), (1, 0)];
        assert_eq!(classify_cells(&cells), RegionClass::Concave);
        let full = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        assert_eq!(classify_cells(&full), RegionClass::Convex);
    }
}
