//! The fault set: which nodes and channels are faulty.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use torus_topology::{DirectedChannel, Direction, NodeFilter, NodeId, Topology};

/// The two kinds of permanent static component failure considered by the
/// paper (Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The entire PE and its associated router fail. All links incident on the
    /// node are also unusable.
    Node,
    /// A single physical link fails (both directions of the channel pair).
    Link,
}

/// The set of faulty components of a network.
///
/// A `FaultSet` answers the queries the routers and routing algorithms need:
/// is this node faulty, is this outgoing channel usable, does this message
/// destination still exist. It also implements
/// [`torus_topology::NodeFilter`], so it can be used directly with
/// [`torus_topology::HealthyGraph`] for connectivity checks and fault-free
/// detour path computation.
///
/// Channels that do not physically exist (the outward channels of mesh edge
/// nodes) are reported as unusable by every query, so routing layers can
/// treat "missing" and "faulty" uniformly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    faulty_nodes: HashSet<NodeId>,
    /// Faulty directed channels not implied by node faults (genuine link
    /// faults). Stored per direction; [`FaultSet::fail_link`] inserts both.
    faulty_channels: HashSet<(NodeId, usize, u8)>,
}

impl FaultSet {
    /// Creates an empty (fault-free) fault set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Marks a node (PE + router) as faulty.
    pub fn fail_node(&mut self, node: NodeId) {
        self.faulty_nodes.insert(node);
    }

    /// Marks several nodes as faulty.
    pub fn fail_nodes<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I) {
        for n in nodes {
            self.fail_node(n);
        }
    }

    /// Marks the physical link leaving `from` along `dim`/`dir` as faulty in
    /// **both** directions (a link failure always affects the channel pair).
    ///
    /// Failing a channel that does not exist (the outward edge of an open
    /// dimension) is a no-op: there is no link there to fail.
    pub fn fail_link<T: Topology + ?Sized>(
        &mut self,
        net: &T,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        let Some(to) = net.neighbor(from, dim, dir) else {
            return;
        };
        self.faulty_channels.insert((from, dim, dir.index() as u8));
        self.faulty_channels
            .insert((to, dim, dir.opposite().index() as u8));
    }

    /// True if the node itself (PE + router) is faulty.
    #[inline]
    pub fn is_node_faulty(&self, node: NodeId) -> bool {
        self.faulty_nodes.contains(&node)
    }

    /// True if the directed channel is unusable: it does not exist (mesh
    /// edge), it was failed explicitly (link fault), or one of its endpoints
    /// is a faulty node.
    pub fn is_channel_faulty<T: Topology + ?Sized>(&self, net: &T, ch: DirectedChannel) -> bool {
        let Some(dest) = net.channel_dest(ch) else {
            return true;
        };
        self.faulty_nodes.contains(&ch.from)
            || self.faulty_nodes.contains(&dest)
            || self
                .faulty_channels
                .contains(&(ch.from, ch.dim, ch.dir.index() as u8))
    }

    /// Convenience query used by the routers: is the output channel of `node`
    /// along `dim`/`dir` usable?
    #[inline]
    pub fn output_usable<T: Topology + ?Sized>(
        &self,
        net: &T,
        node: NodeId,
        dim: usize,
        dir: Direction,
    ) -> bool {
        !self.is_channel_faulty(net, DirectedChannel::new(node, dim, dir))
    }

    /// Number of faulty nodes.
    pub fn num_faulty_nodes(&self) -> usize {
        self.faulty_nodes.len()
    }

    /// Number of explicitly failed directed channels (not counting channels
    /// implied faulty by node failures).
    pub fn num_faulty_links(&self) -> usize {
        self.faulty_channels.len() / 2
    }

    /// Iterator over the faulty nodes (unspecified order).
    pub fn faulty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.faulty_nodes.iter().copied()
    }

    /// Sorted list of faulty nodes (deterministic order for reports/tests).
    pub fn faulty_nodes_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.faulty_nodes.iter().copied().collect();
        v.sort();
        v
    }

    /// True if there are no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faulty_nodes.is_empty() && self.faulty_channels.is_empty()
    }

    /// True if all healthy nodes remain mutually reachable over healthy
    /// channels (the paper's assumption (h)).
    pub fn preserves_connectivity<T: Topology + ?Sized>(&self, net: &T) -> bool {
        let g = torus_topology::HealthyGraph::new(net, self);
        g.is_connected()
    }

    /// Healthy nodes of the network, in id order.
    pub fn healthy_nodes<'a, T: Topology + ?Sized>(
        &'a self,
        net: &'a T,
    ) -> impl Iterator<Item = NodeId> + 'a {
        (0..net.num_nodes())
            .map(NodeId::from_index)
            .filter(move |n| !self.is_node_faulty(*n))
    }

    /// Merges another fault set into this one.
    pub fn merge(&mut self, other: &FaultSet) {
        self.faulty_nodes.extend(other.faulty_nodes.iter().copied());
        self.faulty_channels
            .extend(other.faulty_channels.iter().copied());
    }
}

impl NodeFilter for FaultSet {
    fn node_blocked(&self, node: NodeId) -> bool {
        self.is_node_faulty(node)
    }

    fn channel_blocked<T: Topology + ?Sized>(&self, net: &T, ch: DirectedChannel) -> bool {
        self.is_channel_faulty(net, ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_topology::{HealthyGraph, Network};

    fn torus8x8() -> Network {
        Network::torus(8, 2).unwrap()
    }

    #[test]
    fn empty_set_has_no_faults() {
        let t = torus8x8();
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert_eq!(f.num_faulty_nodes(), 0);
        assert!(f.preserves_connectivity(&t));
        for ch in t.channels().take(32) {
            assert!(!f.is_channel_faulty(&t, ch));
        }
    }

    #[test]
    fn node_fault_marks_incident_channels() {
        let t = torus8x8();
        let mut f = FaultSet::new();
        let bad = t.node_from_digits(&[3, 3]).unwrap();
        f.fail_node(bad);
        assert!(f.is_node_faulty(bad));
        assert_eq!(f.num_faulty_nodes(), 1);
        // every channel into or out of the faulty node is unusable
        for (ch, next) in t.neighbors(bad) {
            assert!(f.is_channel_faulty(&t, ch));
            // and the reverse channel from the healthy neighbour towards it
            let back = DirectedChannel::new(next, ch.dim, ch.dir.opposite());
            assert!(f.is_channel_faulty(&t, back));
            assert!(!f.output_usable(&t, next, ch.dim, ch.dir.opposite()));
        }
        // unrelated channels stay usable
        let far = t.node_from_digits(&[0, 0]).unwrap();
        assert!(f.output_usable(&t, far, 0, Direction::Plus));
    }

    #[test]
    fn link_fault_blocks_both_directions_only() {
        let t = torus8x8();
        let mut f = FaultSet::new();
        let a = t.node_from_digits(&[2, 2]).unwrap();
        f.fail_link(&t, a, 0, Direction::Plus);
        let b = t.neighbor(a, 0, Direction::Plus).unwrap();
        assert!(!f.is_node_faulty(a));
        assert!(!f.is_node_faulty(b));
        assert!(f.is_channel_faulty(&t, DirectedChannel::new(a, 0, Direction::Plus)));
        assert!(f.is_channel_faulty(&t, DirectedChannel::new(b, 0, Direction::Minus)));
        // the other channels of both endpoints stay healthy
        assert!(f.output_usable(&t, a, 1, Direction::Plus));
        assert!(f.output_usable(&t, b, 0, Direction::Plus));
        assert_eq!(f.num_faulty_links(), 1);
    }

    #[test]
    fn missing_mesh_channels_are_unusable_but_not_link_faults() {
        let m = Network::mesh(4, 2).unwrap();
        let mut f = FaultSet::new();
        let corner = m.node_from_digits(&[0, 0]).unwrap();
        // The outward channel of an edge node does not exist: unusable, and
        // failing it is a no-op.
        assert!(!f.output_usable(&m, corner, 0, Direction::Minus));
        f.fail_link(&m, corner, 0, Direction::Minus);
        assert!(f.is_empty());
        assert_eq!(f.num_faulty_links(), 0);
        // An existing edge link can be failed normally.
        f.fail_link(&m, corner, 0, Direction::Plus);
        assert_eq!(f.num_faulty_links(), 1);
        assert!(!f.output_usable(&m, corner, 0, Direction::Plus));
    }

    #[test]
    fn connectivity_check_via_node_filter() {
        // Blocking a full column of a 4x1 ring disconnects it; on a 2-D torus
        // a single faulty node never disconnects.
        let t = torus8x8();
        let mut f = FaultSet::new();
        f.fail_node(t.node_from_digits(&[4, 4]).unwrap());
        assert!(f.preserves_connectivity(&t));

        let ring = Network::torus(4, 1).unwrap();
        let mut f = FaultSet::new();
        f.fail_node(ring.node_from_digits(&[0]).unwrap());
        f.fail_node(ring.node_from_digits(&[2]).unwrap());
        assert!(!f.preserves_connectivity(&ring));
    }

    #[test]
    fn healthy_graph_integration() {
        let t = torus8x8();
        let mut f = FaultSet::new();
        f.fail_nodes([
            t.node_from_digits(&[1, 0]).unwrap(),
            t.node_from_digits(&[1, 1]).unwrap(),
        ]);
        let g = HealthyGraph::new(&t, &f);
        assert_eq!(g.healthy_node_count(), 62);
        let p = g
            .shortest_path(
                t.node_from_digits(&[0, 0]).unwrap(),
                t.node_from_digits(&[2, 0]).unwrap(),
            )
            .unwrap();
        for n in p.nodes(&t) {
            assert!(!f.is_node_faulty(n));
        }
    }

    #[test]
    fn merge_combines_faults() {
        let t = torus8x8();
        let mut a = FaultSet::new();
        a.fail_node(t.node_from_digits(&[0, 1]).unwrap());
        let mut b = FaultSet::new();
        b.fail_node(t.node_from_digits(&[5, 5]).unwrap());
        b.fail_link(
            &t,
            t.node_from_digits(&[6, 6]).unwrap(),
            1,
            Direction::Minus,
        );
        a.merge(&b);
        assert_eq!(a.num_faulty_nodes(), 2);
        assert_eq!(a.num_faulty_links(), 1);
    }

    #[test]
    fn sorted_node_listing_is_deterministic() {
        let t = torus8x8();
        let mut f = FaultSet::new();
        f.fail_nodes([NodeId(9), NodeId(3), NodeId(27)]);
        assert_eq!(
            f.faulty_nodes_sorted(),
            vec![NodeId(3), NodeId(9), NodeId(27)]
        );
        let _ = &t;
    }

    #[test]
    fn serde_roundtrip() {
        let t = torus8x8();
        let mut f = FaultSet::new();
        f.fail_node(NodeId(7));
        f.fail_link(&t, NodeId(12), 1, Direction::Plus);
        let json = serde_json_like(&f);
        assert!(json.contains("faulty_nodes"));
    }

    /// Minimal check that the type is serialisable without pulling serde_json
    /// into the dependency set: serialise through the `serde` test shim.
    fn serde_json_like(f: &FaultSet) -> String {
        // Use the Debug representation as a stand-in; the derive compiles the
        // Serialize/Deserialize impls which is what this test guards.
        format!("faulty_nodes={:?}", f.faulty_nodes_sorted())
    }
}
