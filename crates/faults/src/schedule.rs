//! Time-ordered fault schedules: node and link failures arriving at
//! simulation cycles instead of being frozen before cycle 0.
//!
//! A [`FaultSchedule`] is an ordered list of `(cycle, FaultEvent)` pairs.
//! Grouping the events by cycle yields the schedule's *epochs*: every
//! distinct injection cycle starts a new epoch whose cumulative [`FaultSet`]
//! contains every component failed at or before that cycle. Epoch 0 (cycle
//! 0) always exists, so a schedule whose first event arrives later still
//! describes the initial fault-free interval explicitly.
//!
//! Schedules are validated against a concrete network before they are
//! materialised: cycles must be monotone non-decreasing, no component may be
//! failed twice, node ids and dimensions must be in range, and link events
//! must name channels that physically exist (a mesh edge has no outward
//! link to fail). The static verifier (`swbft-verify`) consumes the epoch
//! sequence to prove per-epoch safety and classify every (source,
//! destination) pair's fate as faults accumulate.

use crate::model::FaultSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use torus_topology::{Direction, NodeId, Topology};

/// One scheduled component failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node (PE + router) fails; all incident channels fail with it.
    Node {
        /// Dense id of the failing node.
        node: u32,
    },
    /// The physical link leaving `node` along `dim`/`dir` fails in both
    /// directions.
    Link {
        /// Source-side node of the failing link.
        node: u32,
        /// Dimension of the failing link.
        dim: usize,
        /// Direction of the failing link as seen from `node`.
        dir: Direction,
    },
}

impl FaultEvent {
    /// Short label used in reports and schedule spec strings
    /// (`node@5` / `link@5:d0+`).
    pub fn label(&self) -> String {
        match self {
            FaultEvent::Node { node } => format!("node@{node}"),
            FaultEvent::Link { node, dim, dir } => format!("link@{node}:d{dim}{dir}"),
        }
    }

    /// Applies the event to a cumulative fault set.
    fn apply<T: Topology + ?Sized>(&self, net: &T, faults: &mut FaultSet) {
        match *self {
            FaultEvent::Node { node } => faults.fail_node(NodeId(node)),
            FaultEvent::Link { node, dim, dir } => faults.fail_link(net, NodeId(node), dim, dir),
        }
    }
}

/// One event of a schedule with its injection cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Simulation cycle the component fails at.
    pub cycle: u64,
    /// The failing component.
    pub event: FaultEvent,
}

/// Validation and parse errors for fault schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// Event cycles must be monotone non-decreasing in list order.
    NonMonotoneCycle {
        /// Index of the out-of-order event.
        index: usize,
        /// Its cycle.
        cycle: u64,
        /// The preceding event's cycle.
        previous: u64,
    },
    /// The same node is failed by two events.
    DuplicateNode {
        /// The node failed twice.
        node: u32,
    },
    /// The same physical link is failed by two events (possibly named from
    /// opposite endpoints).
    DuplicateLink {
        /// Source-side node of the second event naming the link.
        node: u32,
        /// Dimension of the link.
        dim: usize,
        /// Direction of the second event.
        dir: Direction,
    },
    /// A node id is outside the network.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the network.
        nodes: usize,
    },
    /// A link event names a dimension the network does not have.
    DimOutOfRange {
        /// The offending dimension.
        dim: usize,
        /// The network's dimensionality.
        dims: usize,
    },
    /// A link event names a channel that does not physically exist (the
    /// outward edge of an open dimension).
    MissingLink {
        /// Source-side node of the event.
        node: u32,
        /// Dimension of the missing channel.
        dim: usize,
        /// Direction of the missing channel.
        dir: Direction,
    },
    /// A schedule spec string failed to parse.
    Parse {
        /// The offending token.
        token: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScheduleError::NonMonotoneCycle {
                index,
                cycle,
                previous,
            } => write!(
                f,
                "schedule event {index} at cycle {cycle} precedes the previous event's \
                 cycle {previous} (events must be listed in non-decreasing cycle order)"
            ),
            FaultScheduleError::DuplicateNode { node } => {
                write!(f, "node {node} is failed by two schedule events")
            }
            FaultScheduleError::DuplicateLink { node, dim, dir } => write!(
                f,
                "link {node}:d{dim}{dir} is failed by two schedule events \
                 (links are identified up to direction)"
            ),
            FaultScheduleError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node network")
            }
            FaultScheduleError::DimOutOfRange { dim, dims } => {
                write!(f, "dimension {dim} out of range for a {dims}-D network")
            }
            FaultScheduleError::MissingLink { node, dim, dir } => write!(
                f,
                "no physical channel leaves node {node} along d{dim}{dir} \
                 (open-dimension edge)"
            ),
            FaultScheduleError::Parse { token, reason } => {
                write!(f, "cannot parse schedule token '{token}': {reason}")
            }
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// One epoch of a materialised schedule: the cumulative fault set in force
/// from `cycle` until the next epoch's cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleEpoch {
    /// First cycle of the epoch.
    pub cycle: u64,
    /// The events that arrived at this cycle (empty only for the implicit
    /// fault-free epoch 0 of a schedule whose first event arrives later).
    pub new_events: Vec<FaultEvent>,
    /// Every component failed at or before `cycle`.
    pub faults: FaultSet,
}

/// An ordered, serialisable list of scheduled fault injections.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// An empty schedule: a single fault-free epoch at cycle 0.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from `(cycle, event)` pairs, checking the
    /// network-independent invariant (monotone non-decreasing cycles) up
    /// front. Per-network validation happens in [`FaultSchedule::validate`].
    pub fn from_events(events: Vec<(u64, FaultEvent)>) -> Result<Self, FaultScheduleError> {
        for (index, w) in events.windows(2).enumerate() {
            if w[1].0 < w[0].0 {
                return Err(FaultScheduleError::NonMonotoneCycle {
                    index: index + 1,
                    cycle: w[1].0,
                    previous: w[0].0,
                });
            }
        }
        Ok(FaultSchedule {
            events: events
                .into_iter()
                .map(|(cycle, event)| ScheduledFault { cycle, event })
                .collect(),
        })
    }

    /// The events in schedule order.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the schedule against a concrete network: in-range node ids
    /// and dimensions, physically existing links, and no component failed
    /// twice (links are identified up to direction, so naming the same link
    /// from both endpoints counts as a duplicate).
    pub fn validate<T: Topology + ?Sized>(&self, net: &T) -> Result<(), FaultScheduleError> {
        let nodes = net.num_nodes();
        let dims = net.dims();
        let mut seen_nodes: Vec<u32> = Vec::new();
        // A physical link, canonically keyed by its endpoint pair + dimension.
        let mut seen_links: Vec<(u32, u32, usize)> = Vec::new();
        for sf in &self.events {
            match sf.event {
                FaultEvent::Node { node } => {
                    if node as usize >= nodes {
                        return Err(FaultScheduleError::NodeOutOfRange { node, nodes });
                    }
                    if seen_nodes.contains(&node) {
                        return Err(FaultScheduleError::DuplicateNode { node });
                    }
                    seen_nodes.push(node);
                }
                FaultEvent::Link { node, dim, dir } => {
                    if node as usize >= nodes {
                        return Err(FaultScheduleError::NodeOutOfRange { node, nodes });
                    }
                    if dim >= dims {
                        return Err(FaultScheduleError::DimOutOfRange { dim, dims });
                    }
                    let Some(other) = net.neighbor(NodeId(node), dim, dir) else {
                        return Err(FaultScheduleError::MissingLink { node, dim, dir });
                    };
                    let key = (node.min(other.0), node.max(other.0), dim);
                    if seen_links.contains(&key) {
                        return Err(FaultScheduleError::DuplicateLink { node, dim, dir });
                    }
                    seen_links.push(key);
                }
            }
        }
        Ok(())
    }

    /// Validates the schedule and materialises its epochs: one
    /// [`ScheduleEpoch`] per distinct injection cycle, each carrying the
    /// cumulative fault set, preceded by an explicit fault-free epoch 0
    /// when the first event arrives after cycle 0.
    pub fn epochs<T: Topology + ?Sized>(
        &self,
        net: &T,
    ) -> Result<Vec<ScheduleEpoch>, FaultScheduleError> {
        self.validate(net)?;
        let mut epochs = Vec::new();
        if self.events.first().is_none_or(|e| e.cycle > 0) {
            epochs.push(ScheduleEpoch {
                cycle: 0,
                new_events: Vec::new(),
                faults: FaultSet::new(),
            });
        }
        let mut cumulative = FaultSet::new();
        let mut i = 0;
        while i < self.events.len() {
            let cycle = self.events[i].cycle;
            let mut new_events = Vec::new();
            while i < self.events.len() && self.events[i].cycle == cycle {
                self.events[i].event.apply(net, &mut cumulative);
                new_events.push(self.events[i].event);
                i += 1;
            }
            epochs.push(ScheduleEpoch {
                cycle,
                new_events,
                faults: cumulative.clone(),
            });
        }
        Ok(epochs)
    }

    /// Parses the comma-joined spec syntax used by the `verify --schedule`
    /// CLI: each token is `CYCLE:node@ID` or `CYCLE:link@ID:dDIM±`, e.g.
    /// `100:node@4,200:link@2:d0+`.
    pub fn parse(spec: &str) -> Result<Self, FaultScheduleError> {
        let parse_err = |token: &str, reason: &str| FaultScheduleError::Parse {
            token: token.to_string(),
            reason: reason.to_string(),
        };
        let mut events = Vec::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let Some((cycle_str, rest)) = token.split_once(':') else {
                return Err(parse_err(
                    token,
                    "expected CYCLE:node@ID or CYCLE:link@ID:dDIM+/-",
                ));
            };
            let Ok(cycle) = cycle_str.parse::<u64>() else {
                return Err(parse_err(token, "cycle is not a non-negative integer"));
            };
            let event = if let Some(id_str) = rest.strip_prefix("node@") {
                let Ok(node) = id_str.parse::<u32>() else {
                    return Err(parse_err(token, "node id is not an integer"));
                };
                FaultEvent::Node { node }
            } else if let Some(link_str) = rest.strip_prefix("link@") {
                let Some((id_str, chan)) = link_str.split_once(':') else {
                    return Err(parse_err(token, "link events need ID:dDIM+ or ID:dDIM-"));
                };
                let Ok(node) = id_str.parse::<u32>() else {
                    return Err(parse_err(token, "link node id is not an integer"));
                };
                let Some(dim_sign) = chan.strip_prefix('d') else {
                    return Err(parse_err(token, "channel must look like d0+ or d2-"));
                };
                let dir = if dim_sign.ends_with('+') {
                    Direction::Plus
                } else if dim_sign.ends_with('-') {
                    Direction::Minus
                } else {
                    return Err(parse_err(token, "channel direction must be + or -"));
                };
                let Ok(dim) = dim_sign[..dim_sign.len() - 1].parse::<usize>() else {
                    return Err(parse_err(token, "channel dimension is not an integer"));
                };
                FaultEvent::Link { node, dim, dir }
            } else {
                return Err(parse_err(token, "event must be node@ID or link@ID:dDIM+/-"));
            };
            events.push((cycle, event));
        }
        FaultSchedule::from_events(events)
    }

    /// Renders the schedule back into the spec syntax accepted by
    /// [`FaultSchedule::parse`].
    pub fn spec_string(&self) -> String {
        self.events
            .iter()
            .map(|sf| format!("{}:{}", sf.cycle, sf.event.label()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_topology::Network;

    fn torus4x2() -> Network {
        Network::torus(4, 2).unwrap()
    }

    #[test]
    fn epochs_are_cumulative_with_an_implicit_fault_free_start() {
        let net = torus4x2();
        let sched = FaultSchedule::from_events(vec![
            (10, FaultEvent::Node { node: 5 }),
            (
                20,
                FaultEvent::Link {
                    node: 2,
                    dim: 0,
                    dir: Direction::Plus,
                },
            ),
            (20, FaultEvent::Node { node: 9 }),
        ])
        .unwrap();
        let epochs = sched.epochs(&net).unwrap();
        assert_eq!(epochs.len(), 3);
        assert_eq!(epochs[0].cycle, 0);
        assert!(epochs[0].faults.is_empty());
        assert!(epochs[0].new_events.is_empty());
        assert_eq!(epochs[1].cycle, 10);
        assert_eq!(epochs[1].faults.num_faulty_nodes(), 1);
        assert_eq!(epochs[2].cycle, 20);
        assert_eq!(epochs[2].new_events.len(), 2);
        assert_eq!(epochs[2].faults.num_faulty_nodes(), 2);
        assert_eq!(epochs[2].faults.num_faulty_links(), 1);
        // The earlier node fault persists into the later epoch.
        assert!(epochs[2].faults.is_node_faulty(NodeId(5)));
    }

    #[test]
    fn cycle_zero_events_fold_into_epoch_zero() {
        let net = torus4x2();
        let sched = FaultSchedule::from_events(vec![(0, FaultEvent::Node { node: 1 })]).unwrap();
        let epochs = sched.epochs(&net).unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].cycle, 0);
        assert_eq!(epochs[0].faults.num_faulty_nodes(), 1);
    }

    #[test]
    fn empty_schedule_has_one_fault_free_epoch() {
        let net = torus4x2();
        let epochs = FaultSchedule::new().epochs(&net).unwrap();
        assert_eq!(epochs.len(), 1);
        assert!(epochs[0].faults.is_empty());
    }

    #[test]
    fn non_monotone_cycles_are_rejected() {
        let err = FaultSchedule::from_events(vec![
            (20, FaultEvent::Node { node: 1 }),
            (10, FaultEvent::Node { node: 2 }),
        ])
        .unwrap_err();
        assert!(matches!(
            err,
            FaultScheduleError::NonMonotoneCycle {
                index: 1,
                cycle: 10,
                previous: 20
            }
        ));
    }

    #[test]
    fn duplicates_and_bounds_are_rejected() {
        let net = torus4x2();
        let dup_node = FaultSchedule::from_events(vec![
            (1, FaultEvent::Node { node: 3 }),
            (2, FaultEvent::Node { node: 3 }),
        ])
        .unwrap();
        assert!(matches!(
            dup_node.validate(&net).unwrap_err(),
            FaultScheduleError::DuplicateNode { node: 3 }
        ));

        // The same physical link named from both endpoints is a duplicate.
        let other = net.neighbor(NodeId(2), 0, Direction::Plus).unwrap();
        let dup_link = FaultSchedule::from_events(vec![
            (
                1,
                FaultEvent::Link {
                    node: 2,
                    dim: 0,
                    dir: Direction::Plus,
                },
            ),
            (
                2,
                FaultEvent::Link {
                    node: other.0,
                    dim: 0,
                    dir: Direction::Minus,
                },
            ),
        ])
        .unwrap();
        assert!(matches!(
            dup_link.validate(&net).unwrap_err(),
            FaultScheduleError::DuplicateLink { .. }
        ));

        let oob = FaultSchedule::from_events(vec![(1, FaultEvent::Node { node: 99 })]).unwrap();
        assert!(matches!(
            oob.validate(&net).unwrap_err(),
            FaultScheduleError::NodeOutOfRange {
                node: 99,
                nodes: 16
            }
        ));

        let bad_dim = FaultSchedule::from_events(vec![(
            1,
            FaultEvent::Link {
                node: 0,
                dim: 7,
                dir: Direction::Plus,
            },
        )])
        .unwrap();
        assert!(matches!(
            bad_dim.validate(&net).unwrap_err(),
            FaultScheduleError::DimOutOfRange { dim: 7, dims: 2 }
        ));

        // Mesh edges have no outward channel to fail.
        let mesh = Network::mesh(4, 2).unwrap();
        let missing = FaultSchedule::from_events(vec![(
            1,
            FaultEvent::Link {
                node: 0,
                dim: 0,
                dir: Direction::Minus,
            },
        )])
        .unwrap();
        assert!(matches!(
            missing.validate(&mesh).unwrap_err(),
            FaultScheduleError::MissingLink { .. }
        ));
    }

    #[test]
    fn spec_round_trips() {
        let spec = "10:node@4,20:link@2:d0+,30:link@7:d1-";
        let sched = FaultSchedule::parse(spec).unwrap();
        assert_eq!(sched.num_events(), 3);
        assert_eq!(sched.spec_string(), spec);
        let reparsed = FaultSchedule::parse(&sched.spec_string()).unwrap();
        assert_eq!(reparsed, sched);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "node@4",
            "10:node@x",
            "10:link@2",
            "10:link@2:0+",
            "10:link@2:d0*",
            "10:flux@2",
        ] {
            assert!(
                matches!(
                    FaultSchedule::parse(bad),
                    Err(FaultScheduleError::Parse { .. })
                ),
                "'{bad}' must fail to parse"
            );
        }
        // Whitespace and empty tokens are tolerated around well-formed ones.
        let ok = FaultSchedule::parse(" 5:node@1 , ,7:node@2 ").unwrap();
        assert_eq!(ok.num_events(), 2);
    }
}
