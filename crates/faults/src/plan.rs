//! Serialisable fault scenarios.
//!
//! A [`FaultScenario`] is a declarative description of the fault configuration
//! of one experiment: either a number of uniformly random node faults (Figs.
//! 3, 4, 6, 7), an explicit shaped fault region (Fig. 5), an explicit list of
//! faulty nodes, or no faults at all. The experiment harness resolves a
//! scenario into a concrete [`FaultSet`] with [`FaultScenario::realize`],
//! which validates region placements against the network's per-dimension
//! radices and wrap flags.

use crate::model::FaultSet;
use crate::random::{random_node_faults, random_switch_faults, RandomFaultError};
use crate::regions::{FaultRegion, RegionPlacementError, RegionShape};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use torus_topology::{AnyTopology, Coord, Network, NodeId};

/// Errors produced when resolving a [`FaultScenario`] on a concrete network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultScenarioError {
    /// Random node-fault injection failed.
    Random(RandomFaultError),
    /// A shaped region does not fit the network.
    Region(RegionPlacementError),
    /// The scenario is defined in grid coordinates (planes, slabs) but the
    /// topology is indirect and has none.
    UnsupportedTopology {
        /// Label of the scenario kind that was rejected.
        scenario: String,
        /// Display form of the offending topology.
        topology: String,
    },
}

impl fmt::Display for FaultScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultScenarioError::Random(e) => write!(f, "{e}"),
            FaultScenarioError::Region(e) => write!(f, "{e}"),
            FaultScenarioError::UnsupportedTopology { scenario, topology } => write!(
                f,
                "{scenario} fault scenarios are defined in grid coordinates and cannot \
                 be realized on {topology}"
            ),
        }
    }
}

impl std::error::Error for FaultScenarioError {}

impl From<RandomFaultError> for FaultScenarioError {
    fn from(e: RandomFaultError) -> Self {
        FaultScenarioError::Random(e)
    }
}

impl From<RegionPlacementError> for FaultScenarioError {
    fn from(e: RegionPlacementError) -> Self {
        FaultScenarioError::Region(e)
    }
}

/// A declarative fault configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faulty components (the fault-free baseline, nf = 0).
    None,
    /// `count` random node faults, sampled uniformly while preserving
    /// connectivity.
    RandomNodes {
        /// Number of faulty nodes.
        count: usize,
    },
    /// `count` random node faults clustered along one axis: every fault's
    /// digit along `dim` lies in `[plane, plane + width)`. This is the
    /// per-dimension fault-density knob — `width == radix(dim)` degenerates
    /// to [`FaultScenario::RandomNodes`], `width == 1` concentrates every
    /// fault in a single cross-section plane. The slab is validated against
    /// the dimension's extent (never silently wrapped), like shaped regions.
    ClusteredNodes {
        /// Number of faulty nodes.
        count: usize,
        /// The dimension the slab cuts across.
        dim: usize,
        /// First plane of the slab along `dim`.
        plane: u16,
        /// Number of consecutive planes in the slab.
        width: u16,
    },
    /// A shaped fault region anchored at a coordinate in a dimension plane.
    Region {
        /// The region shape.
        shape: RegionShape,
        /// Anchor digits of the shape's (0,0) cell.
        anchor: Vec<u16>,
        /// The two dimensions spanning the region's plane.
        plane: (usize, usize),
    },
    /// An explicit list of faulty node ids.
    ExplicitNodes {
        /// The faulty nodes.
        nodes: Vec<u32>,
    },
    /// `count` random *switch* faults on an indirect topology, sampled
    /// uniformly from the switches at level 1 and above while preserving
    /// connectivity (leaf switches are the single attachment point of their
    /// endpoints, so they are never candidates). Rejected with a typed error
    /// on grids, which have no switch fabric.
    RandomSwitches {
        /// Number of faulty switches.
        count: usize,
    },
}

impl FaultScenario {
    /// A shaped region placed in the (0, 1) plane roughly at the centre of the
    /// network, the placement used for the Fig. 5 experiments. Centring keeps
    /// the region inside the extent of both plane dimensions, so the same
    /// scenario is valid on tori and meshes alike (as long as the shape fits).
    pub fn centered_region(net: &Network, shape: RegionShape) -> Self {
        let (w, h) = shape.bounding_box();
        let ax = net.radix(0).saturating_sub(w) / 2;
        let ay = net.radix(1).saturating_sub(h) / 2;
        let mut anchor = vec![0u16; net.dims()];
        anchor[0] = ax;
        anchor[1] = ay;
        FaultScenario::Region {
            shape,
            anchor,
            plane: (0, 1),
        }
    }

    /// Nominal number of faulty nodes the scenario describes.
    pub fn fault_count(&self) -> usize {
        match self {
            FaultScenario::None => 0,
            FaultScenario::RandomNodes { count } => *count,
            FaultScenario::ClusteredNodes { count, .. } => *count,
            FaultScenario::Region { shape, .. } => shape.node_count(),
            FaultScenario::ExplicitNodes { nodes } => nodes.len(),
            FaultScenario::RandomSwitches { count } => *count,
        }
    }

    /// Short label used in result tables (for example `"nf=5"` or
    /// `"T-shaped"`).
    pub fn label(&self) -> String {
        match self {
            FaultScenario::None => "nf=0".to_string(),
            FaultScenario::RandomNodes { count } => format!("nf={count}"),
            FaultScenario::ClusteredNodes {
                count, dim, width, ..
            } => format!("nf={count} (dim {dim}, {width}-plane slab)"),
            FaultScenario::Region { shape, .. } => {
                format!("{} (nf={})", shape.name(), shape.node_count())
            }
            FaultScenario::ExplicitNodes { nodes } => format!("explicit nf={}", nodes.len()),
            FaultScenario::RandomSwitches { count } => format!("nsf={count}"),
        }
    }

    /// Resolves the scenario into a concrete [`FaultSet`] on the given
    /// network.
    ///
    /// Randomised scenarios draw from `rng`, so experiments are reproducible
    /// from the seed recorded in their configuration. Region scenarios are
    /// validated against the network's per-dimension bounds.
    pub fn realize<R: Rng + ?Sized>(
        &self,
        net: &AnyTopology,
        rng: &mut R,
    ) -> Result<FaultSet, FaultScenarioError> {
        match self {
            FaultScenario::None => Ok(FaultSet::new()),
            FaultScenario::RandomNodes { count } => Ok(random_node_faults(net, *count, rng)?),
            FaultScenario::ClusteredNodes {
                count,
                dim,
                plane,
                width,
            } => {
                let grid = self.require_grid(net)?;
                Ok(crate::random::clustered_node_faults(
                    grid, *count, *dim, *plane, *width, rng,
                )?)
            }
            FaultScenario::Region {
                shape,
                anchor,
                plane,
            } => {
                let grid = self.require_grid(net)?;
                let region = FaultRegion {
                    shape: *shape,
                    anchor: Coord::new(anchor.clone()),
                    plane: *plane,
                };
                Ok(region.to_fault_set(grid)?)
            }
            FaultScenario::ExplicitNodes { nodes } => {
                let mut f = FaultSet::new();
                f.fail_nodes(nodes.iter().map(|&id| NodeId(id)));
                Ok(f)
            }
            FaultScenario::RandomSwitches { count } => Ok(random_switch_faults(net, *count, rng)?),
        }
    }

    /// Grid view required by the coordinate-based scenarios, or the typed
    /// rejection on indirect topologies.
    fn require_grid<'a>(&self, net: &'a AnyTopology) -> Result<&'a Network, FaultScenarioError> {
        net.grid().ok_or_else(|| {
            let scenario = match self {
                FaultScenario::ClusteredNodes { .. } => "clustered-node",
                FaultScenario::Region { .. } => "shaped-region",
                _ => "grid-coordinate",
            };
            FaultScenarioError::UnsupportedTopology {
                scenario: scenario.to_string(),
                topology: net.to_string(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_scenario() {
        let t = AnyTopology::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let f = FaultScenario::None.realize(&t, &mut rng).unwrap();
        assert!(f.is_empty());
        assert_eq!(FaultScenario::None.fault_count(), 0);
        assert_eq!(FaultScenario::None.label(), "nf=0");
    }

    #[test]
    fn random_scenario_matches_count() {
        let t = AnyTopology::torus(8, 2).unwrap();
        let s = FaultScenario::RandomNodes { count: 5 };
        let mut rng = StdRng::seed_from_u64(9);
        let f = s.realize(&t, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 5);
        assert_eq!(s.fault_count(), 5);
        assert_eq!(s.label(), "nf=5");
    }

    #[test]
    fn centered_region_scenario() {
        let t = Network::torus(8, 2).unwrap();
        let s = FaultScenario::centered_region(&t, RegionShape::paper_u_8());
        assert_eq!(s.fault_count(), 8);
        assert!(s.label().starts_with("U-shaped"));
        let any = AnyTopology::from(t);
        let mut rng = StdRng::seed_from_u64(0);
        let f = s.realize(&any, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 8);
        assert!(f.preserves_connectivity(&any));
    }

    #[test]
    fn centered_region_fits_meshes_and_mixed_shapes() {
        // Centring keeps the region inside the grid, so the same scenario
        // realizes on a mesh without silent wrapping.
        let m = Network::mesh(8, 2).unwrap();
        let s = FaultScenario::centered_region(&m, RegionShape::paper_u_8());
        let any = AnyTopology::from(m);
        let mut rng = StdRng::seed_from_u64(0);
        let f = s.realize(&any, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 8);

        // A region too wide for an open dimension is rejected with a region
        // placement error rather than wrapped.
        let s = FaultScenario::Region {
            shape: RegionShape::Rect {
                width: 3,
                height: 3,
            },
            anchor: vec![6, 6],
            plane: (0, 1),
        };
        assert!(matches!(
            s.realize(&any, &mut rng).unwrap_err(),
            FaultScenarioError::Region(RegionPlacementError::ExceedsExtent { .. })
        ));
    }

    #[test]
    fn clustered_scenario_realizes_in_the_requested_plane() {
        let any = AnyTopology::mesh(8, 2).unwrap();
        let s = FaultScenario::ClusteredNodes {
            count: 4,
            dim: 0,
            plane: 2,
            width: 2,
        };
        assert_eq!(s.fault_count(), 4);
        assert_eq!(s.label(), "nf=4 (dim 0, 2-plane slab)");
        let mut rng = StdRng::seed_from_u64(5);
        let f = s.realize(&any, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 4);
        for n in f.faulty_nodes_sorted() {
            let p = any.grid().unwrap().position(n, 0);
            assert!((2..4).contains(&p));
        }
        // Overhanging slabs surface the typed random-fault error.
        let bad = FaultScenario::ClusteredNodes {
            count: 2,
            dim: 1,
            plane: 7,
            width: 2,
        };
        assert!(matches!(
            bad.realize(&any, &mut rng).unwrap_err(),
            FaultScenarioError::Random(crate::random::RandomFaultError::SlabOutOfRange { .. })
        ));
    }

    #[test]
    fn explicit_scenario() {
        let t = AnyTopology::torus(4, 2).unwrap();
        let s = FaultScenario::ExplicitNodes {
            nodes: vec![3, 7, 11],
        };
        let mut rng = StdRng::seed_from_u64(0);
        let f = s.realize(&t, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 3);
        assert!(f.is_node_faulty(NodeId(7)));
    }

    #[test]
    fn switch_scenario_and_grid_rejections_on_fat_trees() {
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let s = FaultScenario::RandomSwitches { count: 2 };
        assert_eq!(s.fault_count(), 2);
        assert_eq!(s.label(), "nsf=2");
        let f = s.realize(&ft, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 2);
        assert!(f.preserves_connectivity(&ft));
        // Grid-coordinate scenarios are rejected with the typed error.
        let clustered = FaultScenario::ClusteredNodes {
            count: 2,
            dim: 0,
            plane: 0,
            width: 1,
        };
        assert!(matches!(
            clustered.realize(&ft, &mut rng).unwrap_err(),
            FaultScenarioError::UnsupportedTopology { .. }
        ));
        let region = FaultScenario::Region {
            shape: RegionShape::Rect {
                width: 2,
                height: 2,
            },
            anchor: vec![0, 0],
            plane: (0, 1),
        };
        let err = region.realize(&ft, &mut rng).unwrap_err();
        assert!(err.to_string().contains("cannot be realized on ft:4,2"));
        // Switch faults on a grid are rejected through the random-fault error.
        let grid = AnyTopology::torus(4, 2).unwrap();
        assert!(matches!(
            s.realize(&grid, &mut rng).unwrap_err(),
            FaultScenarioError::Random(RandomFaultError::NoSwitchNodes { .. })
        ));
    }

    #[test]
    fn region_scenario_in_3d_plane() {
        let t = AnyTopology::torus(8, 3).unwrap();
        let s = FaultScenario::Region {
            shape: RegionShape::Rect {
                width: 2,
                height: 3,
            },
            anchor: vec![0, 0, 4],
            plane: (1, 2),
        };
        let mut rng = StdRng::seed_from_u64(0);
        let f = s.realize(&t, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 6);
    }
}
