//! # torus-faults
//!
//! Fault models and fault-pattern generators for mixed-radix multidimensional
//! networks (tori, meshes, hypercubes), following Section 3 of Safaei et al.
//! (IPDPS 2006):
//!
//! * **Node failures** — an entire processing element and its router fail; all
//!   physical links and virtual channels incident on the node are also marked
//!   faulty at adjacent routers.
//! * **Link failures** — a single physical link (both directions) fails; the
//!   paper models a link failure as the failure of its two end nodes, but the
//!   fault set supports genuine link faults too.
//! * **Fault regions** — adjacent faulty nodes coalesce into regions that may
//!   be *convex* (block faults: `|`-shaped, `||`-shaped, `□`-shaped) or
//!   *concave* (`L`, `U`, `+`, `T`, `H`-shaped).
//!
//! The crate provides:
//!
//! * [`FaultSet`] — the queryable set of faulty nodes and channels used by the
//!   routers and the routing algorithms (it implements
//!   [`torus_topology::NodeFilter`] so it plugs directly into connectivity and
//!   detour-path queries).
//! * [`RegionShape`] / [`FaultRegion`] — parametric generators for the shaped
//!   fault regions evaluated in Fig. 5 of the paper, with placement validated
//!   against the per-dimension radices (regions may wrap around rings but are
//!   rejected — not silently wrapped — when they exceed a dimension's extent
//!   or overhang a mesh edge).
//! * [`random`] — uniform random node-fault injection that preserves network
//!   connectivity (paper assumption (h)).
//! * [`FaultScenario`] — a serialisable description of a fault configuration
//!   (used by the experiment harness and the CLI binaries).
//! * [`FaultSchedule`] — a time-ordered list of node/link fault injections,
//!   validated and materialised into cumulative per-epoch fault sets (the
//!   input of the static fault-schedule verifier in `swbft-verify`).

pub mod classify;
pub mod model;
pub mod plan;
pub mod random;
pub mod regions;
pub mod schedule;

pub use classify::{classify_region, RegionClass};
pub use model::{FaultKind, FaultSet};
pub use plan::{FaultScenario, FaultScenarioError};
pub use random::{
    clustered_node_faults, random_node_faults, random_switch_faults, RandomFaultError,
};
pub use regions::{FaultRegion, RegionPlacementError, RegionShape};
pub use schedule::{FaultEvent, FaultSchedule, FaultScheduleError, ScheduleEpoch, ScheduledFault};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::classify::{classify_region, RegionClass};
    pub use crate::model::{FaultKind, FaultSet};
    pub use crate::plan::FaultScenario;
    pub use crate::random::random_node_faults;
    pub use crate::regions::{FaultRegion, RegionShape};
    pub use crate::schedule::{FaultEvent, FaultSchedule};
}
