//! Parametric fault-region generators.
//!
//! Adjacent faulty nodes coalesce into *fault regions*. The paper (Section 3,
//! Fig. 1 and Fig. 5) distinguishes **convex** regions — `|`-shaped,
//! `||`-shaped and `□`-shaped blocks — from **concave** regions — `L`, `U`,
//! `+`, `T` and `H`-shaped patterns. Concave regions are harder to route
//! around and therefore cost more latency (Fig. 5).
//!
//! Shapes are described as sets of cells in a two-dimensional plane of the
//! network; [`FaultRegion`] anchors a shape at a coordinate and maps the cells
//! onto concrete nodes. Placement is validated against the per-dimension
//! radices: a region may wrap around a *wrapped* dimension, but a shape whose
//! bounding box exceeds a dimension's extent — or overhangs the edge of an
//! open (mesh) dimension — is rejected instead of being wrapped silently.

use crate::model::FaultSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use torus_topology::{Coord, Network, NetworkError, NodeId};

/// A parametric 2-D fault-region shape.
///
/// Cell sets are expressed as `(x, y)` offsets with `x` along the first plane
/// dimension and `y` along the second. All lengths are in nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionShape {
    /// `□`-shaped block fault of `width × height` nodes (convex).
    Rect {
        /// Extent along the first plane dimension.
        width: u16,
        /// Extent along the second plane dimension.
        height: u16,
    },
    /// `|`-shaped fault: a single column of `length` nodes (convex).
    Bar {
        /// Number of nodes in the column.
        length: u16,
    },
    /// `||`-shaped fault: two adjacent columns of `length` nodes (convex).
    DoubleBar {
        /// Number of nodes in each column.
        length: u16,
    },
    /// `L`-shaped fault: a vertical arm and a horizontal arm sharing a corner
    /// (concave).
    LShape {
        /// Nodes in the vertical arm (including the corner).
        vertical: u16,
        /// Nodes in the horizontal arm (including the corner).
        horizontal: u16,
    },
    /// `U`-shaped fault: two vertical arms joined by a bottom row (concave).
    UShape {
        /// Width of the bottom row (distance between the two arms, inclusive).
        width: u16,
        /// Height of the two vertical arms (including the bottom corners).
        height: u16,
    },
    /// `T`-shaped fault: a horizontal bar with a vertical stem hanging from
    /// its centre (concave).
    TShape {
        /// Nodes in the horizontal bar.
        bar: u16,
        /// Nodes in the vertical stem (not counting the bar row).
        stem: u16,
    },
    /// `+`-shaped fault: a horizontal and a vertical bar crossing near their
    /// centres (concave). The horizontal bar may be more than one node thick,
    /// which is how the paper's 16-node `+` region fits inside an 8-ary ring.
    PlusShape {
        /// Nodes along the horizontal bar.
        horizontal: u16,
        /// Nodes along the vertical bar.
        vertical: u16,
        /// Thickness (rows) of the horizontal bar.
        thickness: u16,
    },
    /// `H`-shaped fault: two vertical bars joined by a horizontal row at mid
    /// height (concave).
    HShape {
        /// Width of the connecting row (distance between the two bars,
        /// inclusive).
        width: u16,
        /// Height of the two vertical bars.
        height: u16,
    },
}

impl RegionShape {
    /// The `(x, y)` cells covered by the shape, relative to its anchor.
    ///
    /// Cells are returned deduplicated and sorted, so `cells().len()` is the
    /// number of faulty nodes the shape produces.
    pub fn cells(&self) -> Vec<(u16, u16)> {
        let mut cells: Vec<(u16, u16)> = match *self {
            RegionShape::Rect { width, height } => (0..width)
                .flat_map(|x| (0..height).map(move |y| (x, y)))
                .collect(),
            RegionShape::Bar { length } => (0..length).map(|y| (0, y)).collect(),
            RegionShape::DoubleBar { length } => (0..2u16)
                .flat_map(|x| (0..length).map(move |y| (x, y)))
                .collect(),
            RegionShape::LShape {
                vertical,
                horizontal,
            } => {
                let mut v: Vec<(u16, u16)> = (0..vertical).map(|y| (0, y)).collect();
                v.extend((0..horizontal).map(|x| (x, 0)));
                v
            }
            RegionShape::UShape { width, height } => {
                let mut v: Vec<(u16, u16)> = Vec::new();
                for y in 0..height {
                    v.push((0, y));
                    v.push((width.saturating_sub(1), y));
                }
                for x in 0..width {
                    v.push((x, 0));
                }
                v
            }
            RegionShape::TShape { bar, stem } => {
                let mut v: Vec<(u16, u16)> = (0..bar).map(|x| (x, stem)).collect();
                let centre = bar / 2;
                v.extend((0..stem).map(|y| (centre, y)));
                v
            }
            RegionShape::PlusShape {
                horizontal,
                vertical,
                thickness,
            } => {
                let y0 = vertical / 2;
                let mut v: Vec<(u16, u16)> = (0..horizontal)
                    .flat_map(|x| (0..thickness.max(1)).map(move |t| (x, y0 + t)))
                    .collect();
                v.extend((0..vertical).map(|y| (horizontal / 2, y)));
                v
            }
            RegionShape::HShape { width, height } => {
                let mut v: Vec<(u16, u16)> = Vec::new();
                for y in 0..height {
                    v.push((0, y));
                    v.push((width.saturating_sub(1), y));
                }
                for x in 0..width {
                    v.push((x, height / 2));
                }
                v
            }
        };
        cells.sort_unstable();
        cells.dedup();
        cells
    }

    /// Number of faulty nodes the shape produces.
    pub fn node_count(&self) -> usize {
        self.cells().len()
    }

    /// Bounding box `(width, height)` of the shape.
    pub fn bounding_box(&self) -> (u16, u16) {
        let cells = self.cells();
        let w = cells.iter().map(|c| c.0).max().map_or(0, |m| m + 1);
        let h = cells.iter().map(|c| c.1).max().map_or(0, |m| m + 1);
        (w, h)
    }

    /// Short human-readable name used in reports ("rect-shaped", "T-shaped",
    /// ...).
    pub fn name(&self) -> &'static str {
        match self {
            RegionShape::Rect { .. } => "rect-shaped",
            RegionShape::Bar { .. } => "|-shaped",
            RegionShape::DoubleBar { .. } => "||-shaped",
            RegionShape::LShape { .. } => "L-shaped",
            RegionShape::UShape { .. } => "U-shaped",
            RegionShape::TShape { .. } => "T-shaped",
            RegionShape::PlusShape { .. } => "Plus-shaped",
            RegionShape::HShape { .. } => "H-shaped",
        }
    }

    /// ASCII rendering of the shape (rows top to bottom), used by the
    /// `fault_regions` example to reproduce Fig. 1.
    pub fn render_ascii(&self) -> String {
        let cells = self.cells();
        let (w, h) = self.bounding_box();
        let mut out = String::new();
        for y in (0..h).rev() {
            for x in 0..w {
                if cells.contains(&(x, y)) {
                    out.push('#');
                } else {
                    out.push('.');
                }
            }
            out.push('\n');
        }
        out
    }

    /// Shrinks the shape — preserving its kind — until its bounding box fits
    /// inside `max_w × max_h`, or returns `None` when no structurally
    /// meaningful instance of the kind fits.
    ///
    /// A shape that already fits is returned unchanged. Each kind keeps the
    /// minimum extents below which it degenerates into a different kind (a
    /// 2-node bar is still a bar; a 1-node bar is not; a `+` needs at least
    /// a 3×3 cross to stay concave), so a scaled region still exercises the
    /// routing behaviour its Fig. 5 label names. Used by the figure harness
    /// to keep the Fig. 5 sweep meaningful on shapes smaller than the
    /// paper's 8×8 torus.
    pub fn scaled_to_fit(&self, max_w: u16, max_h: u16) -> Option<RegionShape> {
        let scaled = match *self {
            RegionShape::Rect { width, height } => {
                let (width, height) = (width.min(max_w), height.min(max_h));
                if width == 0 || height == 0 || u32::from(width) * u32::from(height) < 2 {
                    return None;
                }
                RegionShape::Rect { width, height }
            }
            RegionShape::Bar { length } => {
                let length = length.min(max_h);
                if length < 2 {
                    return None;
                }
                RegionShape::Bar { length }
            }
            RegionShape::DoubleBar { length } => {
                let length = length.min(max_h);
                if max_w < 2 || length < 2 {
                    return None;
                }
                RegionShape::DoubleBar { length }
            }
            RegionShape::LShape {
                vertical,
                horizontal,
            } => {
                let (vertical, horizontal) = (vertical.min(max_h), horizontal.min(max_w));
                if vertical < 2 || horizontal < 2 {
                    return None;
                }
                RegionShape::LShape {
                    vertical,
                    horizontal,
                }
            }
            RegionShape::UShape { width, height } => {
                let (width, height) = (width.min(max_w), height.min(max_h));
                if width < 3 || height < 2 {
                    return None;
                }
                RegionShape::UShape { width, height }
            }
            RegionShape::TShape { bar, stem } => {
                let bar = bar.min(max_w);
                let stem = stem.min(max_h.saturating_sub(1));
                if bar < 3 || stem < 1 {
                    return None;
                }
                RegionShape::TShape { bar, stem }
            }
            RegionShape::PlusShape {
                horizontal,
                vertical,
                thickness,
            } => {
                let (horizontal, vertical) = (horizontal.min(max_w), vertical.min(max_h));
                if horizontal < 3 || vertical < 3 {
                    return None;
                }
                // The bar sits at rows vertical/2 .. vertical/2 + thickness;
                // thin it until it stays inside the vertical extent.
                let headroom = max_h - vertical / 2;
                let thickness = thickness.max(1).min(headroom);
                if thickness == 0 {
                    return None;
                }
                RegionShape::PlusShape {
                    horizontal,
                    vertical,
                    thickness,
                }
            }
            RegionShape::HShape { width, height } => {
                let (width, height) = (width.min(max_w), height.min(max_h));
                if width < 3 || height < 3 {
                    return None;
                }
                RegionShape::HShape { width, height }
            }
        };
        let (w, h) = scaled.bounding_box();
        (w <= max_w && h <= max_h).then_some(scaled)
    }

    // ----- The exact configurations used in Fig. 5 of the paper -----

    /// The 20-node `□`-shaped (rectangular) region of Fig. 5.
    pub fn paper_rect_20() -> Self {
        RegionShape::Rect {
            width: 4,
            height: 5,
        }
    }

    /// The 10-node `T`-shaped region of Fig. 5.
    pub fn paper_t_10() -> Self {
        RegionShape::TShape { bar: 5, stem: 5 }
    }

    /// The 16-node `+`-shaped region of Fig. 5 (a cross with a two-node-thick
    /// horizontal bar, so it fits inside the 8-ary rings of the 8×8 torus).
    pub fn paper_plus_16() -> Self {
        RegionShape::PlusShape {
            horizontal: 6,
            vertical: 6,
            thickness: 2,
        }
    }

    /// The 9-node `L`-shaped region of Fig. 5.
    pub fn paper_l_9() -> Self {
        RegionShape::LShape {
            vertical: 5,
            horizontal: 5,
        }
    }

    /// The 8-node `U`-shaped region of Fig. 5.
    pub fn paper_u_8() -> Self {
        RegionShape::UShape {
            width: 4,
            height: 3,
        }
    }

    /// All five Fig. 5 regions with their paper labels, in the order of the
    /// figure's legend.
    pub fn paper_fig5_regions() -> Vec<(RegionShape, &'static str)> {
        vec![
            (Self::paper_rect_20(), "rect-shaped"),
            (Self::paper_t_10(), "T-shaped"),
            (Self::paper_plus_16(), "Plus-shaped"),
            (Self::paper_l_9(), "L-shaped"),
            (Self::paper_u_8(), "U-shaped"),
        ]
    }
}

/// Errors produced when validating the placement of a [`FaultRegion`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegionPlacementError {
    /// A plane dimension index is outside the network's dimensionality.
    PlaneDimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The network's dimensionality.
        dims: usize,
    },
    /// The two plane dimensions coincide.
    DegeneratePlane(usize),
    /// The anchor coordinate is not a valid node address.
    Anchor(NetworkError),
    /// The shape's bounding box does not fit the dimension: it is wider than
    /// the dimension's whole extent, or it overhangs the edge of an open
    /// (non-wrapping) dimension. Regions are rejected instead of being
    /// wrapped or truncated silently.
    ExceedsExtent {
        /// The dimension the shape does not fit in.
        dim: usize,
        /// Radix (extent) of that dimension.
        extent: u16,
        /// First position the shape would need beyond the last valid one
        /// (`anchor + bounding_box` for open dims, `bounding_box` for rings).
        /// Wider than the radix type so the sum cannot overflow on large
        /// open dimensions.
        needed: u32,
    },
}

impl fmt::Display for RegionPlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionPlacementError::PlaneDimOutOfRange { dim, dims } => {
                write!(
                    f,
                    "plane dimension {dim} out of range for a {dims}-D network"
                )
            }
            RegionPlacementError::DegeneratePlane(dim) => {
                write!(f, "region plane uses dimension {dim} twice")
            }
            RegionPlacementError::Anchor(e) => write!(f, "invalid region anchor: {e}"),
            RegionPlacementError::ExceedsExtent {
                dim,
                extent,
                needed,
            } => write!(
                f,
                "region needs {needed} positions in dimension {dim} but only {extent} exist \
                 (regions are not wrapped silently)"
            ),
        }
    }
}

impl std::error::Error for RegionPlacementError {}

impl From<NetworkError> for RegionPlacementError {
    fn from(e: NetworkError) -> Self {
        RegionPlacementError::Anchor(e)
    }
}

/// A fault-region shape placed onto a network: anchored at a coordinate,
/// lying in the plane spanned by two dimensions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRegion {
    /// The shape of the region.
    pub shape: RegionShape,
    /// Coordinate of the shape's `(0, 0)` cell.
    pub anchor: Coord,
    /// The two network dimensions spanning the plane of the region
    /// (`plane.0` carries the shape's x offsets, `plane.1` the y offsets).
    pub plane: (usize, usize),
}

impl FaultRegion {
    /// Places `shape` in the plane of dimensions `(0, 1)` anchored at the
    /// given digits, validating the placement against the network.
    pub fn in_default_plane(
        net: &Network,
        shape: RegionShape,
        anchor: &[u16],
    ) -> Result<Self, RegionPlacementError> {
        let region = FaultRegion {
            shape,
            anchor: Coord::new(anchor.to_vec()),
            plane: (0, 1),
        };
        region.validate(net)?;
        Ok(region)
    }

    /// Places `shape` in the plane spanned by the given pair of dimensions
    /// (`plane.0` carries the shape's x offsets, `plane.1` the y offsets)
    /// anchored at the given digits, validating the placement against the
    /// network. On 3-D and higher shapes this anchors clustered faults in
    /// planes other than the default `(0, 1)`.
    pub fn in_plane(
        net: &Network,
        shape: RegionShape,
        plane: (usize, usize),
        anchor: &[u16],
    ) -> Result<Self, RegionPlacementError> {
        let region = FaultRegion {
            shape,
            anchor: Coord::new(anchor.to_vec()),
            plane,
        };
        region.validate(net)?;
        Ok(region)
    }

    /// Validates the placement against the network's per-dimension radices.
    ///
    /// A region is valid when its plane dimensions exist and are distinct,
    /// its anchor is a valid node address, and its bounding box fits each
    /// plane dimension: on a wrapped dimension the shape may overhang the
    /// edge (it wraps around the ring) but must not be wider than the whole
    /// ring; on an open dimension `anchor + bounding_box` must stay within
    /// the extent. Ill-fitting regions are rejected instead of being wrapped
    /// silently.
    pub fn validate(&self, net: &Network) -> Result<(), RegionPlacementError> {
        let dims = net.dims();
        for dim in [self.plane.0, self.plane.1] {
            if dim >= dims {
                return Err(RegionPlacementError::PlaneDimOutOfRange { dim, dims });
            }
        }
        if self.plane.0 == self.plane.1 {
            return Err(RegionPlacementError::DegeneratePlane(self.plane.0));
        }
        net.node(&self.anchor)?;
        let (w, h) = self.shape.bounding_box();
        for (dim, span) in [(self.plane.0, w), (self.plane.1, h)] {
            let extent = net.radix(dim);
            if span > extent {
                return Err(RegionPlacementError::ExceedsExtent {
                    dim,
                    extent,
                    needed: span as u32,
                });
            }
            if !net.wraps(dim) {
                // Widen before adding: `anchor + span` can exceed u16::MAX on
                // a large open dimension, which would silently re-enable the
                // wrapping this check exists to reject.
                let needed = self.anchor.get(dim) as u32 + span as u32;
                if needed > extent as u32 {
                    return Err(RegionPlacementError::ExceedsExtent {
                        dim,
                        extent,
                        needed,
                    });
                }
            }
        }
        Ok(())
    }

    /// The concrete nodes covered by the region on the given network
    /// (wrapping around a ring when the shape overhangs the edge of a
    /// wrapped dimension).
    ///
    /// Call [`FaultRegion::validate`] first; a region that overhangs an open
    /// dimension has no sensible node set (this method would wrap it, which
    /// `validate` exists to reject).
    pub fn nodes(&self, net: &Network) -> Vec<NodeId> {
        debug_assert!(self.validate(net).is_ok(), "unvalidated region placement");
        let (dx, dy) = self.plane;
        let (kx, ky) = (net.radix(dx), net.radix(dy));
        self.shape
            .cells()
            .into_iter()
            .map(|(x, y)| {
                let mut c = self.anchor.clone();
                c.set(dx, (self.anchor.get(dx) + x) % kx);
                c.set(dy, (self.anchor.get(dy) + y) % ky);
                net.node(&c)
                    .expect("region cell wraps onto a valid coordinate")
            })
            .collect()
    }

    /// Builds a [`FaultSet`] failing every node covered by the region,
    /// validating the placement first.
    pub fn to_fault_set(&self, net: &Network) -> Result<FaultSet, RegionPlacementError> {
        self.validate(net)?;
        let mut f = FaultSet::new();
        f.fail_nodes(self.nodes(net));
        Ok(f)
    }

    /// Number of faulty nodes.
    pub fn node_count(&self) -> usize {
        self.shape.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_node_counts_match_legend() {
        assert_eq!(RegionShape::paper_rect_20().node_count(), 20);
        assert_eq!(RegionShape::paper_t_10().node_count(), 10);
        assert_eq!(RegionShape::paper_plus_16().node_count(), 16);
        assert_eq!(RegionShape::paper_l_9().node_count(), 9);
        assert_eq!(RegionShape::paper_u_8().node_count(), 8);
    }

    #[test]
    fn basic_shapes() {
        assert_eq!(RegionShape::Bar { length: 5 }.node_count(), 5);
        assert_eq!(RegionShape::DoubleBar { length: 4 }.node_count(), 8);
        assert_eq!(
            RegionShape::Rect {
                width: 3,
                height: 3
            }
            .node_count(),
            9
        );
        assert_eq!(
            RegionShape::HShape {
                width: 4,
                height: 5
            }
            .node_count(),
            2 * 5 + 4 - 2
        );
    }

    #[test]
    fn cells_are_unique_and_within_bounding_box() {
        for (shape, _) in RegionShape::paper_fig5_regions() {
            let cells = shape.cells();
            let mut dedup = cells.clone();
            dedup.dedup();
            assert_eq!(cells.len(), dedup.len());
            let (w, h) = shape.bounding_box();
            assert!(cells.iter().all(|&(x, y)| x < w && y < h));
        }
    }

    #[test]
    fn region_maps_to_distinct_nodes() {
        let t = Network::torus(8, 2).unwrap();
        for (shape, _) in RegionShape::paper_fig5_regions() {
            let region = FaultRegion::in_default_plane(&t, shape, &[1, 1]).unwrap();
            let nodes = region.nodes(&t);
            let mut sorted = nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), shape.node_count());
        }
    }

    #[test]
    fn region_wraps_around_torus_edges() {
        let t = Network::torus(8, 2).unwrap();
        let region = FaultRegion::in_default_plane(
            &t,
            RegionShape::Rect {
                width: 3,
                height: 2,
            },
            &[6, 7],
        )
        .unwrap();
        let nodes = region.nodes(&t);
        assert_eq!(nodes.len(), 6);
        // The region should cover x in {6,7,0} and y in {7,0}.
        let coords: Vec<Vec<u16>> = nodes
            .iter()
            .map(|n| t.coord(*n).digits().to_vec())
            .collect();
        assert!(coords.contains(&vec![0, 0]));
        assert!(coords.contains(&vec![6, 7]));
    }

    #[test]
    fn region_overhanging_a_mesh_edge_is_rejected() {
        // The same placement that wraps on a torus is rejected on a mesh:
        // open dimensions have no edge to wrap around.
        let m = Network::mesh(8, 2).unwrap();
        let shape = RegionShape::Rect {
            width: 3,
            height: 2,
        };
        assert_eq!(
            FaultRegion::in_default_plane(&m, shape, &[6, 7]).unwrap_err(),
            RegionPlacementError::ExceedsExtent {
                dim: 0,
                extent: 8,
                needed: 9
            }
        );
        // Anchored away from the edge the same shape is fine.
        let region = FaultRegion::in_default_plane(&m, shape, &[5, 6]).unwrap();
        assert_eq!(region.nodes(&m).len(), 6);
    }

    #[test]
    fn region_wider_than_the_dimension_is_rejected_even_on_rings() {
        let t = Network::torus(4, 2).unwrap();
        // A 5-node bar cannot fit a 4-ring without self-overlap.
        let err =
            FaultRegion::in_default_plane(&t, RegionShape::Bar { length: 5 }, &[0, 0]).unwrap_err();
        assert_eq!(
            err,
            RegionPlacementError::ExceedsExtent {
                dim: 1,
                extent: 4,
                needed: 5
            }
        );
        assert!(format!("{err}").contains("not wrapped silently"));
    }

    #[test]
    fn region_validation_on_mixed_radix_networks() {
        // 8x8 wrapped plane with an open radix-4 third dimension.
        let net = Network::new(vec![8, 8, 4], vec![true, true, false]).unwrap();
        let shape = RegionShape::Rect {
            width: 3,
            height: 3,
        };
        // In the wrapped (0, 1) plane the shape may overhang.
        let region = FaultRegion {
            shape,
            anchor: Coord::new(vec![6, 6, 1]),
            plane: (0, 1),
        };
        assert!(region.validate(&net).is_ok());
        // In the (1, 2) plane dimension 2 is open with radix 4: anchored at
        // position 2 the 3-wide shape overhangs (2 + 3 > 4).
        let region = FaultRegion {
            shape,
            anchor: Coord::new(vec![0, 0, 2]),
            plane: (1, 2),
        };
        assert_eq!(
            region.validate(&net).unwrap_err(),
            RegionPlacementError::ExceedsExtent {
                dim: 2,
                extent: 4,
                needed: 5
            }
        );
        // Degenerate and out-of-range planes are rejected.
        let mut bad = region.clone();
        bad.plane = (1, 1);
        assert_eq!(
            bad.validate(&net).unwrap_err(),
            RegionPlacementError::DegeneratePlane(1)
        );
        bad.plane = (1, 3);
        assert_eq!(
            bad.validate(&net).unwrap_err(),
            RegionPlacementError::PlaneDimOutOfRange { dim: 3, dims: 3 }
        );
    }

    #[test]
    fn region_in_higher_dimension_plane() {
        let t = Network::torus(8, 3).unwrap();
        let region = FaultRegion {
            shape: RegionShape::Rect {
                width: 2,
                height: 2,
            },
            anchor: Coord::new(vec![1, 2, 3]),
            plane: (1, 2),
        };
        assert!(region.validate(&t).is_ok());
        let nodes = region.nodes(&t);
        assert_eq!(nodes.len(), 4);
        // dimension 0 never changes
        assert!(nodes.iter().all(|n| t.coord(*n).get(0) == 1));
    }

    #[test]
    fn to_fault_set_and_connectivity() {
        let t = Network::torus(8, 2).unwrap();
        let region = FaultRegion::in_default_plane(&t, RegionShape::paper_u_8(), &[2, 2]).unwrap();
        let f = region.to_fault_set(&t).unwrap();
        assert_eq!(f.num_faulty_nodes(), 8);
        assert!(f.preserves_connectivity(&t));
    }

    #[test]
    fn ascii_render_has_correct_cell_count() {
        let shape = RegionShape::paper_t_10();
        let art = shape.render_ascii();
        assert_eq!(art.matches('#').count(), 10);
        let shape = RegionShape::paper_u_8();
        assert_eq!(shape.render_ascii().matches('#').count(), 8);
    }

    #[test]
    fn anchor_validation() {
        let t = Network::torus(8, 2).unwrap();
        assert!(matches!(
            FaultRegion::in_default_plane(&t, RegionShape::paper_l_9(), &[9, 0]).unwrap_err(),
            RegionPlacementError::Anchor(_)
        ));
        assert!(matches!(
            FaultRegion::in_default_plane(&t, RegionShape::paper_l_9(), &[0]).unwrap_err(),
            RegionPlacementError::Anchor(_)
        ));
    }

    #[test]
    fn scaling_is_identity_when_the_shape_already_fits() {
        for (shape, _) in RegionShape::paper_fig5_regions() {
            assert_eq!(shape.scaled_to_fit(8, 8), Some(shape));
        }
    }

    #[test]
    fn scaling_preserves_kind_and_fits_the_caps() {
        for (shape, _) in RegionShape::paper_fig5_regions() {
            for (max_w, max_h) in [(3u16, 3u16), (4, 3), (3, 4), (5, 4)] {
                let Some(scaled) = shape.scaled_to_fit(max_w, max_h) else {
                    continue;
                };
                assert_eq!(
                    std::mem::discriminant(&scaled),
                    std::mem::discriminant(&shape),
                    "scaling must not change the kind of {shape:?}"
                );
                let (w, h) = scaled.bounding_box();
                assert!(
                    w <= max_w && h <= max_h,
                    "{shape:?} scaled to {scaled:?} still {w}x{h} > {max_w}x{max_h}"
                );
                assert!(scaled.node_count() >= 2);
            }
        }
    }

    #[test]
    fn scaling_keeps_concave_shapes_concave() {
        use crate::classify::{classify_region, RegionClass};
        for shape in [
            RegionShape::paper_t_10(),
            RegionShape::paper_plus_16(),
            RegionShape::paper_l_9(),
            RegionShape::paper_u_8(),
        ] {
            let scaled = shape.scaled_to_fit(4, 4).expect("4x4 fits every kind");
            assert_eq!(
                classify_region(&scaled),
                RegionClass::Concave,
                "{shape:?} scaled to {scaled:?} lost its concavity"
            );
        }
    }

    #[test]
    fn degenerate_caps_scale_nothing() {
        for (shape, _) in RegionShape::paper_fig5_regions() {
            assert_eq!(shape.scaled_to_fit(1, 1), None);
            assert_eq!(shape.scaled_to_fit(0, 8), None);
        }
        // A bar needs at least two nodes of height.
        assert_eq!(RegionShape::Bar { length: 5 }.scaled_to_fit(1, 1), None);
        assert_eq!(
            RegionShape::Bar { length: 5 }.scaled_to_fit(1, 2),
            Some(RegionShape::Bar { length: 2 })
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RegionShape::paper_rect_20().name(), "rect-shaped");
        assert_eq!(RegionShape::paper_plus_16().name(), "Plus-shaped");
        assert_eq!(RegionShape::Bar { length: 3 }.name(), "|-shaped");
    }
}
