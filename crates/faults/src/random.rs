//! Uniform random node-fault injection.
//!
//! The experiments in Figs. 3, 4, 6 and 7 of the paper use "random failed
//! nodes ... determined using a uniform random number generator" under the
//! constraint (assumption (h)) that faults never disconnect the network.
//! [`random_node_faults`] samples such placements: it draws `nf` distinct
//! nodes uniformly at random and resamples the whole placement if the healthy
//! subgraph would be disconnected.

use crate::model::FaultSet;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;
use torus_topology::{AnyTopology, FatTreeNode, Network, NodeId, Topology};

/// Errors produced by random fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomFaultError {
    /// More faults were requested than nodes exist (or all nodes would fail).
    TooManyFaults {
        /// Requested number of faulty nodes.
        requested: usize,
        /// Number of nodes in the network.
        nodes: usize,
    },
    /// No connectivity-preserving placement was found within the retry budget.
    NoConnectedPlacement {
        /// Requested number of faulty nodes.
        requested: usize,
        /// Number of placements tried.
        attempts: usize,
    },
    /// A clustered placement named a dimension the network does not have.
    DimensionOutOfRange {
        /// Requested dimension index.
        dim: usize,
        /// Dimensionality of the network.
        dims: usize,
    },
    /// A clustered placement's slab of planes exceeds the dimension's extent.
    /// Slabs never wrap, even on wrapped dimensions, so the same scenario
    /// means the same node set on a torus and on the matching mesh.
    SlabOutOfRange {
        /// First plane of the slab.
        plane: u16,
        /// Number of consecutive planes in the slab.
        width: u16,
        /// Radix of the dimension the slab lies in.
        radix: u16,
    },
    /// Switch faults were requested on a topology without switch nodes
    /// (every grid node is an endpoint; only indirect topologies have a
    /// switch fabric to fail).
    NoSwitchNodes {
        /// Display form of the offending topology.
        topology: String,
    },
}

impl fmt::Display for RandomFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomFaultError::TooManyFaults { requested, nodes } => write!(
                f,
                "cannot fail {requested} nodes in a network of {nodes} nodes"
            ),
            RandomFaultError::NoConnectedPlacement {
                requested,
                attempts,
            } => write!(
                f,
                "no connectivity-preserving placement of {requested} faults found in {attempts} attempts"
            ),
            RandomFaultError::DimensionOutOfRange { dim, dims } => write!(
                f,
                "clustered faults name dimension {dim} of a {dims}-dimensional network"
            ),
            RandomFaultError::SlabOutOfRange {
                plane,
                width,
                radix,
            } => write!(
                f,
                "fault slab [{plane}, {}) exceeds the dimension's extent {radix}",
                *plane as u32 + *width as u32
            ),
            RandomFaultError::NoSwitchNodes { topology } => write!(
                f,
                "switch faults requested on {topology}, which has no switch nodes"
            ),
        }
    }
}

impl std::error::Error for RandomFaultError {}

/// Maximum number of placements tried before giving up.
const MAX_ATTEMPTS: usize = 1000;

/// Shared sampling loop: draws `nf` distinct nodes from the candidate set,
/// resampling the whole placement until the healthy subgraph of the network
/// stays connected (or the retry budget runs out).
fn sample_connected<T: Topology + ?Sized, R: Rng + ?Sized>(
    net: &T,
    mut ids: Vec<NodeId>,
    nf: usize,
    rng: &mut R,
) -> Result<FaultSet, RandomFaultError> {
    for _ in 0..MAX_ATTEMPTS {
        ids.shuffle(rng);
        let mut f = FaultSet::new();
        f.fail_nodes(ids[..nf].iter().copied());
        if f.preserves_connectivity(net) {
            return Ok(f);
        }
    }
    Err(RandomFaultError::NoConnectedPlacement {
        requested: nf,
        attempts: MAX_ATTEMPTS,
    })
}

/// Samples `nf` distinct faulty nodes uniformly at random such that the
/// healthy subgraph remains connected.
///
/// "Node" here means a processing element: faults are drawn from the
/// topology's endpoints. On grids every node is an endpoint, so this is the
/// paper's uniform sampler; on a fat-tree only the compute endpoints below
/// the leaf switches are candidates (use [`random_switch_faults`] to fail
/// the switch fabric).
///
/// Passing `nf == 0` returns an empty fault set. The placement is a function
/// of the supplied RNG only, so experiments are reproducible from their seed.
///
/// # Errors
/// Fails if `nf` is not smaller than the number of endpoints, or if no
/// connectivity-preserving placement is found within an internal retry budget
/// (practically impossible for the fault densities used in the paper — at
/// most 20 faults in a 64..512-node net).
pub fn random_node_faults<T: Topology + ?Sized, R: Rng + ?Sized>(
    net: &T,
    nf: usize,
    rng: &mut R,
) -> Result<FaultSet, RandomFaultError> {
    if nf == 0 {
        return Ok(FaultSet::new());
    }
    let n = net.num_endpoints();
    if nf >= n {
        return Err(RandomFaultError::TooManyFaults {
            requested: nf,
            nodes: n,
        });
    }
    sample_connected(net, (0..n).map(NodeId::from_index).collect(), nf, rng)
}

/// Samples `nf` distinct faulty *switches* uniformly at random on an indirect
/// topology, such that the healthy subgraph remains connected.
///
/// Candidates are restricted to switches at level 1 and above: a leaf switch
/// is the single attachment point of its `k` endpoints, so failing one always
/// disconnects them — the connectivity retry loop would reject every such
/// placement. Upper-level switches are exactly the components the up*/down*
/// fault handling must route around.
///
/// # Errors
/// Fails with [`RandomFaultError::NoSwitchNodes`] on topologies without a
/// switch fabric (grids), with `TooManyFaults` if `nf` is not smaller than
/// the number of candidate switches, or with `NoConnectedPlacement` when the
/// retry budget runs out.
pub fn random_switch_faults<R: Rng + ?Sized>(
    net: &AnyTopology,
    nf: usize,
    rng: &mut R,
) -> Result<FaultSet, RandomFaultError> {
    let Some(ft) = net.fat_tree() else {
        return Err(RandomFaultError::NoSwitchNodes {
            topology: net.to_string(),
        });
    };
    if nf == 0 {
        return Ok(FaultSet::new());
    }
    let ids: Vec<NodeId> = ft
        .nodes()
        .filter(|&n| matches!(ft.classify(n), FatTreeNode::Switch { level, .. } if level >= 1))
        .collect();
    if nf >= ids.len() {
        return Err(RandomFaultError::TooManyFaults {
            requested: nf,
            nodes: ids.len(),
        });
    }
    sample_connected(net, ids, nf, rng)
}

/// Samples `nf` distinct faulty nodes uniformly at random *within a slab of
/// planes along one dimension*, such that the healthy subgraph of the whole
/// network remains connected.
///
/// This is the per-dimension fault-density knob: all faults have their digit
/// along `dim` in `[plane, plane + width)`, so a sweep over `dim`/`width`
/// exposes how a routing scheme degrades when faults cluster along one axis
/// instead of spreading uniformly. `width == radix(dim)` recovers the uniform
/// sampler. The slab never wraps — it is validated against the dimension's
/// extent exactly like a shaped fault region on an open dimension — so the
/// same scenario denotes the same node set on a torus and the matching mesh.
///
/// # Errors
/// Fails if `dim` is out of range, the slab exceeds the dimension's extent,
/// the slab holds fewer than `nf` candidate nodes, or no
/// connectivity-preserving placement is found within the retry budget.
pub fn clustered_node_faults<R: Rng + ?Sized>(
    net: &Network,
    nf: usize,
    dim: usize,
    plane: u16,
    width: u16,
    rng: &mut R,
) -> Result<FaultSet, RandomFaultError> {
    if dim >= net.dims() {
        return Err(RandomFaultError::DimensionOutOfRange {
            dim,
            dims: net.dims(),
        });
    }
    let radix = net.radix(dim);
    if width == 0 || plane >= radix || radix - plane < width {
        return Err(RandomFaultError::SlabOutOfRange {
            plane,
            width,
            radix,
        });
    }
    if nf == 0 {
        return Ok(FaultSet::new());
    }
    let ids: Vec<NodeId> = net
        .nodes()
        .filter(|&n| {
            let p = net.position(n, dim);
            p >= plane && p < plane + width
        })
        .collect();
    // More faults than candidate nodes is impossible; failing every node of
    // the network is always invalid. Failing an entire slab is allowed —
    // a boundary slab can leave the rest of the network connected, and the
    // connectivity retry loop decides each concrete placement.
    if nf > ids.len() || nf >= net.num_nodes() {
        return Err(RandomFaultError::TooManyFaults {
            requested: nf,
            nodes: ids.len(),
        });
    }
    sample_connected(net, ids, nf, rng)
}

/// Samples `count` independent fault placements of `nf` nodes each (used by
/// the Fig. 6 experiment, which averages over several random placements per
/// fault count to make results independent of relative fault positions).
pub fn random_fault_ensembles<T: Topology + ?Sized, R: Rng + ?Sized>(
    net: &T,
    nf: usize,
    count: usize,
    rng: &mut R,
) -> Result<Vec<FaultSet>, RandomFaultError> {
    (0..count)
        .map(|_| random_node_faults(net, nf, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_faults_is_empty() {
        let t = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_node_faults(&t, 0, &mut rng).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn requested_count_is_honoured_and_connected() {
        let t = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for nf in [1, 3, 5, 10, 20] {
            let f = random_node_faults(&t, nf, &mut rng).unwrap();
            assert_eq!(f.num_faulty_nodes(), nf);
            assert!(f.preserves_connectivity(&t));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = Network::torus(8, 3).unwrap();
        let a = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.faulty_nodes_sorted(), b.faulty_nodes_sorted());
        let c = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a.faulty_nodes_sorted(), c.faulty_nodes_sorted());
    }

    #[test]
    fn too_many_faults_is_an_error() {
        let t = Network::torus(4, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            random_node_faults(&t, 4, &mut rng),
            Err(RandomFaultError::TooManyFaults { .. })
        ));
        assert!(matches!(
            random_node_faults(&t, 9, &mut rng),
            Err(RandomFaultError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn clustered_faults_land_in_the_requested_slab() {
        let t = Network::torus(8, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for (dim, plane, width) in [(0usize, 2u16, 1u16), (1, 5, 2), (2, 0, 3)] {
            let f = clustered_node_faults(&t, 6, dim, plane, width, &mut rng).unwrap();
            assert_eq!(f.num_faulty_nodes(), 6);
            assert!(f.preserves_connectivity(&t));
            for n in f.faulty_nodes_sorted() {
                let p = t.position(n, dim);
                assert!(
                    p >= plane && p < plane + width,
                    "fault at digit {p} outside slab [{plane}, {})",
                    plane + width
                );
            }
        }
        // Full-width slab degenerates to the uniform sampler's support.
        let f = clustered_node_faults(&t, 4, 0, 0, 8, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 4);
    }

    #[test]
    fn clustered_faults_work_on_open_dimensions() {
        let m = Network::mesh(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let f = clustered_node_faults(&m, 3, 1, 6, 2, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 3);
        assert!(f.preserves_connectivity(&m));
        for n in f.faulty_nodes_sorted() {
            assert!(m.position(n, 1) >= 6);
        }
    }

    #[test]
    fn clustered_faults_validate_dim_and_slab() {
        let m = Network::mesh(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            clustered_node_faults(&m, 2, 5, 0, 1, &mut rng),
            Err(RandomFaultError::DimensionOutOfRange { dim: 5, dims: 2 })
        ));
        // A slab overhanging the extent is rejected, not wrapped — even on a
        // wrapped dimension.
        let t = Network::torus(8, 2).unwrap();
        for net in [&m, &t] {
            assert!(matches!(
                clustered_node_faults(net, 2, 0, 6, 3, &mut rng),
                Err(RandomFaultError::SlabOutOfRange {
                    plane: 6,
                    width: 3,
                    radix: 8
                })
            ));
        }
        assert!(matches!(
            clustered_node_faults(&m, 2, 0, 0, 0, &mut rng),
            Err(RandomFaultError::SlabOutOfRange { .. })
        ));
        // The slab-overflow error renders without panicking even at the
        // extremes of the u16 domain.
        let err = clustered_node_faults(&m, 1, 0, u16::MAX, 2, &mut rng).unwrap_err();
        assert!(err.to_string().contains("exceeds the dimension's extent"));
        // More faults than slab candidates.
        assert!(matches!(
            clustered_node_faults(&m, 9, 0, 3, 1, &mut rng),
            Err(RandomFaultError::TooManyFaults {
                requested: 9,
                nodes: 8
            })
        ));
        assert!(clustered_node_faults(&m, 0, 0, 3, 1, &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn failing_an_entire_boundary_slab_is_allowed_when_connectivity_survives() {
        // The whole boundary column of a mesh can fail: the remaining 7
        // columns stay connected.
        let m = Network::mesh(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let f = clustered_node_faults(&m, 8, 0, 7, 1, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 8);
        assert!(f.preserves_connectivity(&m));
        for n in f.faulty_nodes_sorted() {
            assert_eq!(m.position(n, 0), 7);
        }
    }

    #[test]
    fn switch_faults_target_upper_levels_only() {
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let tree = ft.fat_tree().unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let f = random_switch_faults(&ft, 2, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 2);
        assert!(f.preserves_connectivity(&ft));
        for n in f.faulty_nodes_sorted() {
            assert!(
                matches!(tree.classify(n), FatTreeNode::Switch { level, .. } if level >= 1),
                "fault {n:?} is not an upper-level switch"
            );
        }
        // Grids have no switch fabric to fail.
        let grid = AnyTopology::torus(4, 2).unwrap();
        assert!(matches!(
            random_switch_faults(&grid, 1, &mut rng),
            Err(RandomFaultError::NoSwitchNodes { .. })
        ));
        // Requesting every upper switch (or more) is rejected: 4 top switches
        // on ft:4,2, and failing all of them would disconnect the tree.
        assert!(matches!(
            random_switch_faults(&ft, 4, &mut rng),
            Err(RandomFaultError::TooManyFaults { .. })
        ));
        assert!(random_switch_faults(&ft, 0, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn node_faults_on_fat_trees_hit_endpoints_only() {
        let ft = AnyTopology::fat_tree_new(2, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let f = random_node_faults(&ft, 3, &mut rng).unwrap();
        assert_eq!(f.num_faulty_nodes(), 3);
        assert!(f.preserves_connectivity(&ft));
        for n in f.faulty_nodes_sorted() {
            assert!(ft.is_endpoint(n), "fault {n:?} is not an endpoint");
        }
    }

    #[test]
    fn ensembles_produce_independent_placements() {
        let t = Network::torus(16, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let ensembles = random_fault_ensembles(&t, 6, 5, &mut rng).unwrap();
        assert_eq!(ensembles.len(), 5);
        for f in &ensembles {
            assert_eq!(f.num_faulty_nodes(), 6);
            assert!(f.preserves_connectivity(&t));
        }
        // overwhelmingly likely that at least two placements differ
        let distinct: std::collections::HashSet<Vec<NodeId>> = ensembles
            .iter()
            .map(FaultSet::faulty_nodes_sorted)
            .collect();
        assert!(distinct.len() > 1);
    }
}
