//! Uniform random node-fault injection.
//!
//! The experiments in Figs. 3, 4, 6 and 7 of the paper use "random failed
//! nodes ... determined using a uniform random number generator" under the
//! constraint (assumption (h)) that faults never disconnect the network.
//! [`random_node_faults`] samples such placements: it draws `nf` distinct
//! nodes uniformly at random and resamples the whole placement if the healthy
//! subgraph would be disconnected.

use crate::model::FaultSet;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;
use torus_topology::{Network, NodeId};

/// Errors produced by random fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomFaultError {
    /// More faults were requested than nodes exist (or all nodes would fail).
    TooManyFaults {
        /// Requested number of faulty nodes.
        requested: usize,
        /// Number of nodes in the network.
        nodes: usize,
    },
    /// No connectivity-preserving placement was found within the retry budget.
    NoConnectedPlacement {
        /// Requested number of faulty nodes.
        requested: usize,
        /// Number of placements tried.
        attempts: usize,
    },
}

impl fmt::Display for RandomFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomFaultError::TooManyFaults { requested, nodes } => write!(
                f,
                "cannot fail {requested} nodes in a network of {nodes} nodes"
            ),
            RandomFaultError::NoConnectedPlacement {
                requested,
                attempts,
            } => write!(
                f,
                "no connectivity-preserving placement of {requested} faults found in {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for RandomFaultError {}

/// Maximum number of placements tried before giving up.
const MAX_ATTEMPTS: usize = 1000;

/// Samples `nf` distinct faulty nodes uniformly at random such that the
/// healthy subgraph remains connected.
///
/// Passing `nf == 0` returns an empty fault set. The placement is a function
/// of the supplied RNG only, so experiments are reproducible from their seed.
///
/// # Errors
/// Fails if `nf` is not smaller than the number of nodes, or if no
/// connectivity-preserving placement is found within an internal retry budget
/// (practically impossible for the fault densities used in the paper — at
/// most 20 faults in a 64..512-node net).
pub fn random_node_faults<R: Rng + ?Sized>(
    net: &Network,
    nf: usize,
    rng: &mut R,
) -> Result<FaultSet, RandomFaultError> {
    if nf == 0 {
        return Ok(FaultSet::new());
    }
    let n = net.num_nodes();
    if nf >= n {
        return Err(RandomFaultError::TooManyFaults {
            requested: nf,
            nodes: n,
        });
    }
    let mut ids: Vec<NodeId> = net.nodes().collect();
    for attempt in 1..=MAX_ATTEMPTS {
        ids.shuffle(rng);
        let mut f = FaultSet::new();
        f.fail_nodes(ids[..nf].iter().copied());
        if f.preserves_connectivity(net) {
            return Ok(f);
        }
        if attempt == MAX_ATTEMPTS {
            break;
        }
    }
    Err(RandomFaultError::NoConnectedPlacement {
        requested: nf,
        attempts: MAX_ATTEMPTS,
    })
}

/// Samples `count` independent fault placements of `nf` nodes each (used by
/// the Fig. 6 experiment, which averages over several random placements per
/// fault count to make results independent of relative fault positions).
pub fn random_fault_ensembles<R: Rng + ?Sized>(
    net: &Network,
    nf: usize,
    count: usize,
    rng: &mut R,
) -> Result<Vec<FaultSet>, RandomFaultError> {
    (0..count)
        .map(|_| random_node_faults(net, nf, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_faults_is_empty() {
        let t = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_node_faults(&t, 0, &mut rng).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn requested_count_is_honoured_and_connected() {
        let t = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for nf in [1, 3, 5, 10, 20] {
            let f = random_node_faults(&t, nf, &mut rng).unwrap();
            assert_eq!(f.num_faulty_nodes(), nf);
            assert!(f.preserves_connectivity(&t));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t = Network::torus(8, 3).unwrap();
        let a = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(7)).unwrap();
        let b = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.faulty_nodes_sorted(), b.faulty_nodes_sorted());
        let c = random_node_faults(&t, 12, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_ne!(a.faulty_nodes_sorted(), c.faulty_nodes_sorted());
    }

    #[test]
    fn too_many_faults_is_an_error() {
        let t = Network::torus(4, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            random_node_faults(&t, 4, &mut rng),
            Err(RandomFaultError::TooManyFaults { .. })
        ));
        assert!(matches!(
            random_node_faults(&t, 9, &mut rng),
            Err(RandomFaultError::TooManyFaults { .. })
        ));
    }

    #[test]
    fn ensembles_produce_independent_placements() {
        let t = Network::torus(16, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let ensembles = random_fault_ensembles(&t, 6, 5, &mut rng).unwrap();
        assert_eq!(ensembles.len(), 5);
        for f in &ensembles {
            assert_eq!(f.num_faulty_nodes(), 6);
            assert!(f.preserves_connectivity(&t));
        }
        // overwhelmingly likely that at least two placements differ
        let distinct: std::collections::HashSet<Vec<NodeId>> =
            ensembles.iter().map(|f| f.faulty_nodes_sorted()).collect();
        assert!(distinct.len() > 1);
    }
}
