//! Equivalence harness: the active-set engine ([`Simulation`]) and the
//! straightforward full-scan reference ([`ReferenceSimulation`]) must produce
//! **bit-identical** [`SimulationReport`]s — same delivery order, same
//! floating-point accumulation order, same RNG stream — for every seed, load
//! and fault scenario.
//!
//! With the `sanitizer` feature (the default) every case additionally runs
//! both engines under the conservation sanitizer and asserts a clean audit:
//! no flit created or destroyed outside inject/absorb, credit counters the
//! exact complement of downstream occupancy, faulty components quiescent, no
//! stale message references. (CDG-conformance runs, which need the static
//! verifier, live in the workspace-level `sanitizer_conformance` suite.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use torus_faults::{FaultScenario, FaultSet};
use torus_routing::{RoutingAlgorithm, SwBasedRouting, TurnModelRouting, UpDownRouting};
use torus_sim::{ReferenceSimulation, SimConfig, Simulation, StopCondition};
use torus_topology::{AnyTopology, Direction, TopologySpec};

/// Runs both engines with `algo` on the same configuration and asserts
/// identical results. Returns the two engines' message-table peaks for
/// boundedness checks.
fn assert_equivalent_with<A: RoutingAlgorithm + Clone>(
    config: SimConfig,
    faults: FaultSet,
    algo: A,
) -> (u64, u64) {
    let mut a = Simulation::new(config.clone(), faults.clone(), algo.clone())
        .expect("valid config for the active engine");
    let mut r = ReferenceSimulation::new(config, faults, algo.clone())
        .expect("valid config for the reference engine");
    #[cfg(feature = "sanitizer")]
    {
        a.attach_sanitizer(None);
        r.attach_sanitizer(None);
    }
    let (active, reference) = (a.run(), r.run());
    for (engine, sanitizer) in [("active", a.sanitizer()), ("reference", r.sanitizer())] {
        if let Some(s) = sanitizer {
            assert!(
                s.is_clean(),
                "{engine} engine violated {} invariant(s) under {}; first: {:?}",
                s.violation_count(),
                algo.name(),
                s.violations().first()
            );
        }
    }
    assert_eq!(
        active.report,
        reference.report,
        "active-set and full-scan engines diverged under {}",
        algo.name()
    );
    assert_eq!(active.hit_max_cycles, reference.hit_max_cycles);
    assert_eq!(active.forced_absorptions, reference.forced_absorptions);
    assert_eq!(active.dropped_messages, reference.dropped_messages);
    (active.message_table_peak, reference.message_table_peak)
}

/// Legacy SW-Based entry point used by the torus/mesh baseline cases.
fn assert_equivalent(config: SimConfig, faults: FaultSet, adaptive: bool) -> (u64, u64) {
    if adaptive {
        assert_equivalent_with(config, faults, SwBasedRouting::adaptive())
    } else {
        assert_equivalent_with(config, faults, SwBasedRouting::deterministic())
    }
}

fn quick(radix: u16, dims: u32, v: usize, m: u32, rate: f64, seed: u64) -> SimConfig {
    quick_topology(TopologySpec::torus(radix, dims), v, m, rate, seed)
}

fn quick_topology(spec: TopologySpec, v: usize, m: u32, rate: f64, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_topology(spec, v, m, rate).with_seed(seed);
    c.warmup_messages = 100;
    c.stop = StopCondition::MeasuredMessages(500);
    c.max_cycles = 100_000;
    c
}

fn faults_for(scenario: &FaultScenario, torus: &AnyTopology, seed: u64) -> FaultSet {
    let mut rng = StdRng::seed_from_u64(seed);
    scenario
        .realize(torus, &mut rng)
        .expect("realizable faults")
}

#[test]
fn fault_free_across_seeds_and_loads() {
    for seed in [1, 2, 3] {
        for rate in [0.003, 0.02] {
            for adaptive in [false, true] {
                let config = quick(4, 2, 4, 8, rate, seed);
                assert_equivalent(config, FaultSet::new(), adaptive);
            }
        }
    }
}

#[test]
fn random_node_faults_across_seeds() {
    let torus = AnyTopology::torus(8, 2).unwrap();
    let scenario = FaultScenario::RandomNodes { count: 5 };
    for seed in [7, 8] {
        for adaptive in [false, true] {
            let config = quick(8, 2, 4, 16, 0.003, seed);
            let faults = faults_for(&scenario, &torus, seed ^ 0xFA);
            assert_equivalent(config, faults, adaptive);
        }
    }
}

#[test]
fn region_faults_match() {
    let torus = AnyTopology::torus(8, 2).unwrap();
    let scenario = FaultScenario::centered_region(
        torus.grid().unwrap(),
        torus_faults::RegionShape::paper_u_8(),
    );
    let faults = faults_for(&scenario, &torus, 0);
    let config = quick(8, 2, 4, 16, 0.003, 9);
    assert_equivalent(config, faults, true);
}

#[test]
fn three_dimensional_faulted_match() {
    let torus = AnyTopology::torus(4, 3).unwrap();
    let scenario = FaultScenario::RandomNodes { count: 3 };
    let faults = faults_for(&scenario, &torus, 5);
    let config = quick(4, 3, 4, 8, 0.004, 4);
    assert_equivalent(config, faults, false);
}

#[test]
fn near_saturation_cycle_capped_match() {
    // A saturated network exercises the busy sets at full occupancy and the
    // cycle-cap exit path.
    let mut config = quick(4, 2, 4, 8, 0.2, 13);
    config.stop = StopCondition::Cycles(4_000);
    config.max_cycles = 4_000;
    assert_equivalent(config, FaultSet::new(), false);
}

#[test]
fn nonzero_delays_match() {
    // Router decision time and re-injection overhead shift `ready_at`
    // schedules; both engines must agree cycle for cycle.
    let torus = AnyTopology::torus(8, 2).unwrap();
    let faults = faults_for(&FaultScenario::RandomNodes { count: 4 }, &torus, 3);
    let mut config = quick(8, 2, 4, 16, 0.003, 21);
    config.router_delay = 2;
    config.reinjection_delay = 40;
    assert_equivalent(config, faults, false);
}

#[test]
fn message_table_stays_bounded_under_sustained_traffic() {
    // The active engine's table peak must track the in-flight population;
    // the reference's append-only table grows with the delivered total.
    let mut config = quick(4, 2, 4, 8, 0.02, 2);
    config.stop = StopCondition::Cycles(50_000);
    config.max_cycles = 50_000;
    let (active_peak, reference_total) = assert_equivalent(config, FaultSet::new(), false);
    assert!(
        reference_total > 5_000,
        "run too short to be meaningful: {reference_total}"
    );
    assert!(
        active_peak < reference_total / 10,
        "active peak {active_peak} should be far below the append-only total {reference_total}"
    );
}

#[test]
fn tiny_stall_threshold_matches() {
    // A threshold far below the legacy 128-cycle watchdog stride: the
    // deadline-driven scans must reproduce the reference's every-cycle checks
    // exactly (including when the watchdog never needs to fire).
    let mut config = quick(4, 2, 4, 8, 0.02, 6);
    config.stall_absorb_threshold = 37;
    config.stop = StopCondition::MeasuredMessages(300);
    assert_equivalent(config, FaultSet::new(), false);
}

#[test]
fn mesh_fault_free_across_seeds_and_loads() {
    // Non-wrap topologies exercise the absent-edge-port paths of both
    // engines; they must stay bit-identical there too.
    for seed in [1, 2] {
        for rate in [0.003, 0.02] {
            for adaptive in [false, true] {
                let config = quick_topology(TopologySpec::mesh(4, 2), 4, 8, rate, seed);
                assert_equivalent(config, FaultSet::new(), adaptive);
            }
        }
    }
}

#[test]
fn mesh_random_node_faults_match() {
    let mesh = AnyTopology::mesh(8, 2).unwrap();
    let scenario = FaultScenario::RandomNodes { count: 4 };
    for adaptive in [false, true] {
        let config = quick_topology(TopologySpec::mesh(8, 2), 4, 16, 0.003, 15);
        let faults = faults_for(&scenario, &mesh, 0x3E5);
        assert_equivalent(config, faults, adaptive);
    }
}

#[test]
fn mesh_region_faults_match() {
    let mesh = AnyTopology::mesh(8, 2).unwrap();
    let scenario = FaultScenario::centered_region(
        mesh.grid().unwrap(),
        torus_faults::RegionShape::paper_u_8(),
    );
    let faults = faults_for(&scenario, &mesh, 0);
    let config = quick_topology(TopologySpec::mesh(8, 2), 4, 16, 0.003, 9);
    assert_equivalent(config, faults, true);
}

#[test]
fn hypercube_fault_free_and_faulted_match() {
    let cube = AnyTopology::hypercube(5).unwrap();
    for adaptive in [false, true] {
        let config = quick_topology(TopologySpec::hypercube(5), 3, 8, 0.005, 31);
        assert_equivalent(config, FaultSet::new(), adaptive);
        let config = quick_topology(TopologySpec::hypercube(5), 3, 8, 0.005, 32);
        let faults = faults_for(&FaultScenario::RandomNodes { count: 2 }, &cube, 77);
        assert_equivalent(config, faults, adaptive);
    }
}

#[test]
fn mesh_minimum_vc_configurations_match() {
    // Meshes need no dateline VC: one VC suffices for deterministic routing
    // and two for Duato's protocol. Both engines must agree at the minimum.
    let config = quick_topology(TopologySpec::mesh(4, 2), 1, 8, 0.01, 5);
    assert_equivalent(config, FaultSet::new(), false);
    let config = quick_topology(TopologySpec::mesh(4, 2), 2, 8, 0.01, 6);
    assert_equivalent(config, FaultSet::new(), true);
}

#[test]
fn mixed_radix_network_matches() {
    // A 4x4 wrapped plane with an open radix-3 third dimension (48 nodes).
    let spec = TopologySpec::mixed(vec![4, 4, 3], vec![true, true, false]);
    let net = spec.build().unwrap();
    let config = quick_topology(spec, 4, 8, 0.003, 23);
    let faults = faults_for(&FaultScenario::RandomNodes { count: 3 }, &net, 41);
    assert_equivalent(config, faults, false);
}

#[test]
fn turn_model_mesh_fault_free_across_seeds_and_loads() {
    // The negative-first turn model exercises a different deterministic
    // output and phase-restricted adaptive candidates; both engines must stay
    // bit-identical across seeds and loads.
    for seed in [1, 2] {
        for rate in [0.003, 0.02] {
            let config = quick_topology(TopologySpec::mesh(4, 2), 2, 8, rate, seed);
            assert_equivalent_with(
                config.clone(),
                FaultSet::new(),
                TurnModelRouting::adaptive(),
            );
            assert_equivalent_with(config, FaultSet::new(), TurnModelRouting::deterministic());
        }
    }
}

#[test]
fn turn_model_mesh_random_node_faults_match() {
    let mesh = AnyTopology::mesh(8, 2).unwrap();
    let scenario = FaultScenario::RandomNodes { count: 4 };
    let faults = faults_for(&scenario, &mesh, 0x3E5);
    let config = quick_topology(TopologySpec::mesh(8, 2), 4, 16, 0.003, 15);
    assert_equivalent_with(config.clone(), faults.clone(), TurnModelRouting::adaptive());
    assert_equivalent_with(config, faults, TurnModelRouting::deterministic());
}

#[test]
fn turn_model_hypercube_matches() {
    let cube = AnyTopology::hypercube(5).unwrap();
    let config = quick_topology(TopologySpec::hypercube(5), 2, 8, 0.005, 31);
    assert_equivalent_with(
        config.clone(),
        FaultSet::new(),
        TurnModelRouting::adaptive(),
    );
    let faults = faults_for(&FaultScenario::RandomNodes { count: 2 }, &cube, 77);
    assert_equivalent_with(config, faults, TurnModelRouting::adaptive());
}

#[test]
fn turn_model_mixed_radix_open_mesh_matches() {
    // A mixed-radix all-open shape (6x3x2, 36 nodes): the turn model accepts
    // any network as long as no dimension wraps.
    let spec = TopologySpec::mixed(vec![6, 3, 2], vec![false, false, false]);
    let net = spec.build().unwrap();
    let config = quick_topology(spec, 2, 8, 0.004, 19);
    let faults = faults_for(&FaultScenario::RandomNodes { count: 2 }, &net, 53);
    assert_equivalent_with(config, faults, TurnModelRouting::adaptive());
}

#[test]
fn turn_model_minimum_vc_configurations_match() {
    // The reduced VC budget: one VC suffices for the deterministic flavour,
    // two (1 escape + 1 adaptive) for the adaptive flavour.
    let config = quick_topology(TopologySpec::mesh(4, 2), 1, 8, 0.01, 5);
    assert_equivalent_with(config, FaultSet::new(), TurnModelRouting::deterministic());
    let config = quick_topology(TopologySpec::mesh(4, 2), 2, 8, 0.01, 6);
    assert_equivalent_with(config, FaultSet::new(), TurnModelRouting::adaptive());
}

#[test]
fn fat_tree_fault_free_across_seeds_and_loads() {
    // Indirect-network traffic: messages are injected and absorbed only at
    // the endpoint leaves; switches never source traffic. Both engines must
    // stay bit-identical under either up/down flavour.
    for seed in [1, 2] {
        for rate in [0.003, 0.02] {
            let config = quick_topology(TopologySpec::fat_tree(4, 2), 2, 8, rate, seed);
            assert_equivalent_with(config.clone(), FaultSet::new(), UpDownRouting::adaptive());
            assert_equivalent_with(config, FaultSet::new(), UpDownRouting::deterministic());
        }
    }
}

#[test]
fn fat_tree_switch_and_uplink_faults_match() {
    // A dead level-1 switch plus a dead leaf up-link force the re-ascent
    // path through alternate parents; the case runs sanitizer-audited on
    // both engines (conservation, quiescent faulty components) and must
    // stay bit-identical.
    let net = AnyTopology::fat_tree_new(4, 2).unwrap();
    let ft = net.fat_tree().unwrap();
    let mut faults = FaultSet::new();
    faults.fail_node(ft.switch_id(1, 0));
    let leaf = ft.switch_id(0, 1);
    let (port, _) = ft.parents(leaf)[1];
    faults.fail_link(&net, leaf, port, Direction::Plus);
    assert!(faults.num_faulty_links() > 0);
    assert!(faults.preserves_connectivity(&net));
    let config = quick_topology(TopologySpec::fat_tree(4, 2), 2, 8, 0.01, 33);
    assert_equivalent_with(config, faults.clone(), UpDownRouting::adaptive());
    let config = quick_topology(TopologySpec::fat_tree(4, 2), 1, 8, 0.01, 34);
    assert_equivalent_with(config, faults, UpDownRouting::deterministic());
}

#[test]
fn fat_tree_minimum_vc_configurations_match() {
    // The up*/down* channel order alone is deadlock free: one VC suffices
    // for the deterministic flavour, two (1 escape + 1 adaptive) for the
    // adaptive one — on a deeper 2-ary 3-level tree.
    let config = quick_topology(TopologySpec::fat_tree(2, 3), 1, 8, 0.01, 5);
    assert_equivalent_with(config, FaultSet::new(), UpDownRouting::deterministic());
    let config = quick_topology(TopologySpec::fat_tree(2, 3), 2, 8, 0.01, 6);
    assert_equivalent_with(config, FaultSet::new(), UpDownRouting::adaptive());
}

#[test]
fn up_down_rejected_identically_by_both_engines_on_grids() {
    use torus_sim::SimConfigError;
    let config = quick_topology(TopologySpec::torus(4, 2), 2, 8, 0.003, 1);
    let active = Simulation::new(config.clone(), FaultSet::new(), UpDownRouting::adaptive())
        .err()
        .expect("active engine must reject up/down routing on a torus");
    let reference =
        ReferenceSimulation::new(config, FaultSet::new(), UpDownRouting::deterministic())
            .err()
            .expect("reference engine must reject up/down routing on a torus");
    assert!(matches!(active, SimConfigError::UnsupportedRouting { .. }));
    assert!(matches!(
        reference,
        SimConfigError::UnsupportedRouting { .. }
    ));
}

#[test]
fn turn_model_rejected_identically_by_both_engines_on_wrapped_dimensions() {
    use torus_sim::SimConfigError;
    for spec in [
        TopologySpec::torus(4, 2),
        TopologySpec::mixed(vec![4, 3], vec![true, false]),
    ] {
        let config = quick_topology(spec, 4, 8, 0.003, 1);
        let active = Simulation::new(
            config.clone(),
            FaultSet::new(),
            TurnModelRouting::adaptive(),
        )
        .err()
        .expect("active engine must reject the turn model on wrapped dims");
        let reference =
            ReferenceSimulation::new(config, FaultSet::new(), TurnModelRouting::deterministic())
                .err()
                .expect("reference engine must reject the turn model on wrapped dims");
        assert!(matches!(active, SimConfigError::UnsupportedRouting { .. }));
        assert!(matches!(
            reference,
            SimConfigError::UnsupportedRouting { .. }
        ));
    }
}
