//! The simulation sanitizer: an invariant-checking observer for both
//! engines.
//!
//! The sanitizer audits a running simulation on two levels:
//!
//! 1. **Conservation invariants**, checked at the end of every cycle over the
//!    full router/message state: no flit is created or destroyed outside
//!    injection and local absorption/delivery (every in-network message has
//!    exactly `length` flits across all buffers and assembly counters), every
//!    credit counter is the exact complement of its downstream buffer
//!    occupancy, faulty routers and faulty channels stay quiescent, every
//!    message reference (buffers, routes, output owners, queues) resolves to
//!    a live message — stale generation-tagged identifiers are caught, with
//!    the lazy `draining` owner of an already-retired message as the single
//!    documented exception.
//! 2. **Channel-dependency-graph conformance**: the sanitizer maintains the
//!    runtime *wait-for* state of every message — the last tracked (escape or
//!    deterministic-layer) virtual-channel resource it was granted — and on
//!    each new tracked allocation asserts that the observed
//!    `held → requested` dependency is an edge of the statically extracted
//!    exact CDG for this (topology, routing, VC, fault) case. This is the
//!    refinement check tying the static verifier (`swbft-verify`,
//!    `extract_exact_cdg`) to the real engines: the static graph records
//!    `held × requested` over *all* candidate VCs of every reachable header
//!    state, so every dependency a correct engine can create is predicted,
//!    and a divergence (reported with cycle, message, held and requested
//!    channel) means the engine routed outside the verified relation.
//!
//! Resource identifiers use exactly the per-VC granularity of
//! `swbft_verify::exact`: `channel_id(node, dim, dir) * V + vc`, so a
//! [`torus_routing::cdg::DependencyGraph`] produced by the verifier can be
//! handed to [`Sanitizer::new`] unchanged.
//!
//! Violations are recorded, not panicked on, so tests can assert both
//! directions: the equivalence suite asserts a clean run, the mutation tests
//! assert a seeded bug is flagged. The module is always compiled (it has its
//! own unit tests); the *hooks* in the engines are gated behind the
//! `sanitizer` cargo feature so release benchmarks pay zero cost.

use crate::flit::MessageId;
use crate::message::{MessagePhase, MessageSlab, MessageState};
use crate::router::{RouteTarget, RouterState};
use std::collections::HashMap;
use torus_faults::FaultSet;
use torus_routing::cdg::DependencyGraph;
use torus_topology::{AnyTopology, DirectedChannel, Direction, NodeId};

/// Upper bound on stored violation reports (the total count keeps growing).
const MAX_RECORDED: usize = 64;

/// One invariant violation observed by the sanitizer.
#[derive(Clone, Debug)]
pub struct InvariantViolation {
    /// Simulation cycle the violation was observed at.
    pub cycle: u64,
    /// Short machine-matchable category, e.g. `"cdg-divergence"`.
    pub kind: &'static str,
    /// Human-readable description with the concrete state involved.
    pub detail: String,
}

/// Read-only view over a message store, implemented by both engines' tables
/// (the reclaiming [`MessageSlab`] and the reference engine's append-only
/// `Vec`). `lookup` must return `None` for stale or retired identifiers
/// rather than panicking.
pub trait MessageLookup {
    /// Resolves an identifier to its message, if the identifier is current.
    fn lookup(&self, id: MessageId) -> Option<&MessageState>;
    /// Visits every live (not delivered/dropped) message.
    fn for_each_live(&self, f: &mut dyn FnMut(&MessageState));
}

impl MessageLookup for MessageSlab {
    fn lookup(&self, id: MessageId) -> Option<&MessageState> {
        self.get(id)
    }

    fn for_each_live(&self, f: &mut dyn FnMut(&MessageState)) {
        for m in self.iter_live() {
            if !m.is_done() {
                f(m);
            }
        }
    }
}

impl MessageLookup for Vec<MessageState> {
    fn lookup(&self, id: MessageId) -> Option<&MessageState> {
        if id.generation() != 0 {
            return None;
        }
        self.get(id.slot())
    }

    fn for_each_live(&self, f: &mut dyn FnMut(&MessageState)) {
        for m in self {
            if !m.is_done() {
                f(m);
            }
        }
    }
}

/// The invariant-checking observer. Attach one to an engine with
/// `attach_sanitizer` (requires the `sanitizer` cargo feature), run the
/// simulation, then inspect [`Sanitizer::violations`].
#[derive(Clone, Debug)]
pub struct Sanitizer {
    /// Virtual channels per physical channel (the resource-id stride).
    v: usize,
    /// Flit-buffer depth (the credit complement).
    buffer_depth: usize,
    /// True when every hop rides the tracked layer (deterministic-flavour
    /// routing); false tracks only escape-channel allocations, mirroring the
    /// escape-layer scope of the static extraction for adaptive flavours.
    all_tracked: bool,
    /// The statically extracted exact CDG to check runtime dependencies
    /// against, or `None` to run conservation checks only.
    allowed: Option<DependencyGraph>,
    /// Last tracked resource granted to each in-network message.
    held: HashMap<MessageId, usize>,
    /// First [`MAX_RECORDED`] violations, in observation order.
    recorded: Vec<InvariantViolation>,
    /// Total violations observed (including unrecorded ones).
    total: u64,
    /// Cycles audited so far.
    cycles_checked: u64,
    /// Tracked allocations checked against the CDG so far.
    edges_checked: u64,
}

impl Sanitizer {
    /// Creates a sanitizer for an engine with `v` virtual channels and the
    /// given buffer depth. `all_tracked` selects the tracked layer (true for
    /// deterministic-flavour routing, false to track escape allocations
    /// only); `allowed` is the exact CDG to enforce, or `None` for
    /// conservation checks alone.
    pub fn new(
        v: usize,
        buffer_depth: usize,
        all_tracked: bool,
        allowed: Option<DependencyGraph>,
    ) -> Self {
        Sanitizer {
            v,
            buffer_depth,
            all_tracked,
            allowed,
            held: HashMap::new(),
            recorded: Vec::new(),
            total: 0,
            cycles_checked: 0,
            edges_checked: 0,
        }
    }

    /// The violations observed so far (capped at an internal limit; see
    /// [`Sanitizer::violation_count`] for the uncapped total).
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.recorded
    }

    /// Total number of violations observed, including any beyond the
    /// recording cap.
    pub fn violation_count(&self) -> u64 {
        self.total
    }

    /// True when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Number of end-of-cycle audits performed.
    pub fn cycles_checked(&self) -> u64 {
        self.cycles_checked
    }

    /// Number of tracked allocations checked against the exact CDG.
    pub fn edges_checked(&self) -> u64 {
        self.edges_checked
    }

    fn record(&mut self, cycle: u64, kind: &'static str, detail: String) {
        self.total += 1;
        if self.recorded.len() < MAX_RECORDED {
            self.recorded.push(InvariantViolation {
                cycle,
                kind,
                detail,
            });
        }
    }

    /// The per-VC resource id of `(node, dim, dir, vc)` — identical to the
    /// `Granularity::PerVc` id space of `swbft_verify::exact`.
    fn resource_id(
        &self,
        net: &AnyTopology,
        node: NodeId,
        dim: usize,
        dir: Direction,
        vc: usize,
    ) -> usize {
        net.channel_id(DirectedChannel::new(node, dim, dir)).index() * self.v + vc
    }

    fn describe(node: NodeId, dim: usize, dir: Direction, vc: usize) -> String {
        let sign = match dir {
            Direction::Plus => '+',
            Direction::Minus => '-',
        };
        format!("channel {node:?} d{dim}{sign} vc{vc}")
    }

    // ------------------------------------------------------------- hooks

    /// Called by the engines when a head flit is granted output VC `vc`
    /// towards `(dim, dir)` at `node`. Tracked allocations (every allocation
    /// under `all_tracked`, escape allocations otherwise) are checked against
    /// the exact CDG and update the message's wait-for state; untracked
    /// (adaptive-layer) allocations leave it unchanged, mirroring Duato-style
    /// indirect dependencies in the static extraction.
    #[allow(clippy::too_many_arguments)]
    pub fn on_allocate(
        &mut self,
        cycle: u64,
        net: &AnyTopology,
        msg: MessageId,
        node: NodeId,
        dim: usize,
        dir: Direction,
        vc: usize,
        is_escape: bool,
    ) {
        if !(self.all_tracked || is_escape) {
            return;
        }
        let requested = self.resource_id(net, node, dim, dir, vc);
        if let Some(&held) = self.held.get(&msg) {
            self.edges_checked += 1;
            let allowed = match &self.allowed {
                Some(cdg) => held == requested || cdg.has_edge(held, requested),
                None => true,
            };
            if !allowed {
                let detail = format!(
                    "message {msg:?} holds resource {held} while being granted \
                     {requested} ({}): the dependency {held} -> {requested} is \
                     not an edge of the exact CDG",
                    Self::describe(node, dim, dir, vc)
                );
                self.record(cycle, "cdg-divergence", detail);
            }
        }
        self.held.insert(msg, requested);
    }

    /// Called by the engines when a message leaves the network: delivery,
    /// absorption (which releases every held channel before software
    /// re-injection) or drop.
    pub fn on_release(&mut self, msg: MessageId) {
        self.held.remove(&msg);
    }

    // ------------------------------------------- end-of-cycle conservation

    /// Audits the full router/message state at the end of a cycle.
    pub fn check_cycle(
        &mut self,
        cycle: u64,
        net: &AnyTopology,
        faults: &FaultSet,
        routers: &[RouterState],
        messages: &dyn MessageLookup,
        in_flight: u64,
    ) {
        self.cycles_checked += 1;
        self.check_flit_conservation(cycle, routers, messages);
        self.check_credits_and_faulty_channels(cycle, net, faults, routers);
        self.check_references(cycle, routers, messages);
        self.check_in_flight(cycle, messages, in_flight);
    }

    /// Every live in-network message has exactly `length` flits across all
    /// input buffers and local assembly counters; queued messages have none;
    /// every buffered flit belongs to a live message; each input buffer holds
    /// flits of a single message with consecutive sequence numbers.
    fn check_flit_conservation(
        &mut self,
        cycle: u64,
        routers: &[RouterState],
        messages: &dyn MessageLookup,
    ) {
        let mut counts: HashMap<MessageId, u32> = HashMap::new();
        for router in routers {
            for port in &router.inputs {
                for ivc in port {
                    let mut prev: Option<(MessageId, u32)> = None;
                    for flit in &ivc.buffer {
                        *counts.entry(flit.msg).or_insert(0) += 1;
                        if let Some((pmsg, pseq)) = prev {
                            if pmsg != flit.msg || flit.seq != pseq + 1 {
                                self.record(
                                    cycle,
                                    "buffer-interleaving",
                                    format!(
                                        "router {:?} buffer interleaves {pmsg:?}#{pseq} \
                                         with {:?}#{}",
                                        router.node, flit.msg, flit.seq
                                    ),
                                );
                            }
                        }
                        prev = Some((flit.msg, flit.seq));
                    }
                }
            }
            for (&msg, &n) in &router.local_assembly {
                *counts.entry(msg).or_insert(0) += n;
            }
        }
        for (&msg, &n) in &counts {
            match messages.lookup(msg) {
                None => self.record(
                    cycle,
                    "stale-flit",
                    format!("{n} buffered flit(s) reference retired/stale message {msg:?}"),
                ),
                Some(m) if m.phase != MessagePhase::InNetwork => self.record(
                    cycle,
                    "flit-conservation",
                    format!(
                        "message {msg:?} is {:?} but has {n} flit(s) in the network",
                        m.phase
                    ),
                ),
                Some(_) => {}
            }
        }
        messages.for_each_live(&mut |m| {
            if m.phase == MessagePhase::InNetwork {
                let n = counts.get(&m.id).copied().unwrap_or(0);
                if n != m.length {
                    self.record(
                        cycle,
                        "flit-conservation",
                        format!(
                            "in-network message {:?} has {n} flit(s) buffered, \
                             expected its full length {}",
                            m.id, m.length
                        ),
                    );
                }
            }
        });
    }

    /// Credit counters are the exact complement of the downstream buffer
    /// occupancy; faulty routers are quiescent; faulty channels carry no
    /// flits, no owner and a full credit counter.
    fn check_credits_and_faulty_channels(
        &mut self,
        cycle: u64,
        net: &AnyTopology,
        faults: &FaultSet,
        routers: &[RouterState],
    ) {
        for router in routers {
            let node = router.node;
            if router.is_faulty && !router.is_quiescent() {
                self.record(
                    cycle,
                    "faulty-router-active",
                    format!("faulty router {node:?} holds flits or queued messages"),
                );
            }
            for out_port in 0..router.num_net_ports() {
                if !router.port_present[out_port] {
                    continue;
                }
                let (dim, dir) = RouterState::port_dim_dir(out_port);
                let downstream = net
                    .neighbor(node, dim, dir)
                    .expect("present ports lead to existing neighbours");
                let faulty_channel =
                    faults.is_channel_faulty(net, DirectedChannel::new(node, dim, dir));
                for vc in 0..self.v {
                    let ovc = &router.outputs[out_port][vc];
                    let down_buf = routers[downstream.index()].inputs[out_port][vc]
                        .buffer
                        .len();
                    if ovc.credits > self.buffer_depth
                        || ovc.credits + down_buf != self.buffer_depth
                    {
                        self.record(
                            cycle,
                            "credit-mismatch",
                            format!(
                                "{}: {} credits + {down_buf} buffered downstream != \
                                 depth {}",
                                Self::describe(node, dim, dir, vc),
                                ovc.credits,
                                self.buffer_depth
                            ),
                        );
                    }
                    if faulty_channel
                        && (ovc.owner.is_some()
                            || ovc.credits != self.buffer_depth
                            || down_buf != 0)
                    {
                        self.record(
                            cycle,
                            "faulty-channel-occupied",
                            format!(
                                "faulty {} is occupied (owner {:?}, {} credits, \
                                 {down_buf} downstream flits)",
                                Self::describe(node, dim, dir, vc),
                                ovc.owner,
                                ovc.credits
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Every message reference held by router state resolves to a live
    /// message, with the lazily released `draining` owner as the one allowed
    /// exception; non-draining output owners are backed by a matching input
    /// route of the same router.
    fn check_references(
        &mut self,
        cycle: u64,
        routers: &[RouterState],
        messages: &dyn MessageLookup,
    ) {
        let live = |id: MessageId| messages.lookup(id).is_some_and(|m| !m.is_done());
        for router in routers {
            let node = router.node;
            // Map of this router's claimed (out_port, out_vc) -> message.
            let mut claimed: HashMap<(usize, usize), MessageId> = HashMap::new();
            for port in &router.inputs {
                for ivc in port {
                    let Some(route) = ivc.route else { continue };
                    if !live(route.msg) {
                        self.record(
                            cycle,
                            "stale-route",
                            format!("router {node:?} route references retired {:?}", route.msg),
                        );
                    }
                    if let Some(front) = ivc.buffer.front() {
                        if front.msg != route.msg {
                            self.record(
                                cycle,
                                "route-mismatch",
                                format!(
                                    "router {node:?} buffers {:?} on a VC routed for {:?}",
                                    front.msg, route.msg
                                ),
                            );
                        }
                    }
                    if let RouteTarget::Network { out_port, out_vc } = route.target {
                        claimed.insert((out_port, out_vc), route.msg);
                    }
                }
            }
            for (out_port, port_vcs) in router.outputs.iter().enumerate() {
                for (vc, ovc) in port_vcs.iter().enumerate() {
                    let Some(owner) = ovc.owner else { continue };
                    if ovc.draining {
                        continue; // lazy release: the owner may be retired
                    }
                    if !live(owner) {
                        self.record(
                            cycle,
                            "stale-owner",
                            format!(
                                "router {node:?} output p{out_port} vc{vc} owned by \
                                 retired {owner:?}"
                            ),
                        );
                    }
                    if claimed.get(&(out_port, vc)) != Some(&owner) {
                        self.record(
                            cycle,
                            "owner-without-route",
                            format!(
                                "router {node:?} output p{out_port} vc{vc} owned by \
                                 {owner:?} without a matching input route"
                            ),
                        );
                    }
                }
            }
            for &id in &router.source_queue {
                if !messages
                    .lookup(id)
                    .is_some_and(|m| m.phase == MessagePhase::Queued)
                {
                    self.record(
                        cycle,
                        "queue-mismatch",
                        format!("router {node:?} source queue holds non-queued {id:?}"),
                    );
                }
            }
            for e in &router.reinjection_queue {
                if !messages
                    .lookup(e.msg)
                    .is_some_and(|m| m.phase == MessagePhase::Queued)
                {
                    self.record(
                        cycle,
                        "queue-mismatch",
                        format!(
                            "router {node:?} reinjection queue holds non-queued {:?}",
                            e.msg
                        ),
                    );
                }
            }
        }
    }

    /// The engine's `in_flight` counter equals the live message population.
    fn check_in_flight(&mut self, cycle: u64, messages: &dyn MessageLookup, in_flight: u64) {
        let mut live = 0u64;
        messages.for_each_live(&mut |_| live += 1);
        if live != in_flight {
            self.record(
                cycle,
                "in-flight-mismatch",
                format!("in_flight counter is {in_flight} but {live} messages are live"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Flit;
    use crate::router::VcRoute;
    use torus_routing::{RoutingAlgorithm, SwBasedRouting};

    fn mesh() -> AnyTopology {
        AnyTopology::mesh(4, 2).unwrap()
    }

    fn routers_for(net: &AnyTopology, v: usize, depth: usize) -> Vec<RouterState> {
        net.nodes()
            .map(|node| {
                let port_present = (0..2 * net.dims())
                    .map(|port| {
                        let (dim, dir) = RouterState::port_dim_dir(port);
                        net.has_channel(node, dim, dir)
                    })
                    .collect();
                RouterState::new(node, net.dims(), v, depth, false, port_present)
            })
            .collect()
    }

    fn message(net: &AnyTopology, id: MessageId, length: u32) -> MessageState {
        let algo = SwBasedRouting::deterministic();
        let header = algo.make_header(net, NodeId(0), NodeId(5));
        MessageState::new(id, header, length, 0, false)
    }

    #[test]
    fn pristine_state_is_clean() {
        let net = mesh();
        let routers = routers_for(&net, 2, 4);
        let messages: Vec<MessageState> = Vec::new();
        let mut s = Sanitizer::new(2, 4, true, None);
        s.check_cycle(0, &net, &FaultSet::new(), &routers, &messages, 0);
        assert!(s.is_clean());
        assert_eq!(s.cycles_checked(), 1);
    }

    #[test]
    fn missing_flits_are_a_conservation_violation() {
        let net = mesh();
        let routers = routers_for(&net, 2, 4);
        let mut m = message(&net, MessageId(0), 4);
        m.note_injected(1); // InNetwork, but no flits buffered anywhere
        let messages = vec![m];
        let mut s = Sanitizer::new(2, 4, true, None);
        s.check_cycle(1, &net, &FaultSet::new(), &routers, &messages, 1);
        assert!(!s.is_clean());
        assert!(s.violations().iter().any(|v| v.kind == "flit-conservation"));
    }

    #[test]
    fn stale_flit_and_credit_mismatch_are_detected() {
        let net = mesh();
        let mut routers = routers_for(&net, 2, 4);
        // A flit referencing a message the table does not know.
        routers[0].inputs[0][0]
            .buffer
            .push_back(Flit::nth_of(MessageId(9), 0, 1));
        // A credit counter that lost a credit with no downstream flit
        // (port 0 = dim 0 towards +x, the one port node 0 of a mesh has).
        routers[0].outputs[0][0].credits = 3;
        let messages: Vec<MessageState> = Vec::new();
        let mut s = Sanitizer::new(2, 4, true, None);
        s.check_cycle(2, &net, &FaultSet::new(), &routers, &messages, 0);
        let kinds: Vec<&str> = s.violations().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&"stale-flit"), "{kinds:?}");
        assert!(kinds.contains(&"credit-mismatch"), "{kinds:?}");
    }

    #[test]
    fn faulty_channel_occupancy_is_detected() {
        let net = mesh();
        let mut faults = FaultSet::new();
        faults.fail_link(&net, NodeId(0), 0, Direction::Plus);
        let mut routers = routers_for(&net, 2, 4);
        let port = RouterState::out_port(0, Direction::Plus);
        routers[0].outputs[port][1].owner = Some(MessageId(3));
        let mut m = message(&net, MessageId(3), 1);
        m.note_injected(0);
        // Give the owner a matching route so only the fault check fires
        // (plus the flit-conservation check for the missing flit, which we
        // tolerate here).
        routers[0].inputs[0][0].route = Some(VcRoute {
            msg: MessageId(3),
            target: RouteTarget::Network {
                out_port: port,
                out_vc: 1,
            },
            ready_at: 0,
        });
        let messages = vec![m];
        let mut s = Sanitizer::new(2, 4, true, None);
        s.check_cycle(3, &net, &faults, &routers, &messages, 1);
        assert!(s
            .violations()
            .iter()
            .any(|v| v.kind == "faulty-channel-occupied"));
    }

    #[test]
    fn cdg_conformance_accepts_allowed_edges_and_flags_divergence() {
        let net = mesh();
        let v = 1;
        // Hand-built CDG permitting only the 0 -> +x -> +x chain.
        let a = NodeId(0);
        let b = net.neighbor(a, 0, Direction::Plus).unwrap();
        let mut cdg = DependencyGraph::new(net.channel_slots() * v);
        let ra = net
            .channel_id(DirectedChannel::new(a, 0, Direction::Plus))
            .index()
            * v;
        let rb = net
            .channel_id(DirectedChannel::new(b, 0, Direction::Plus))
            .index()
            * v;
        cdg.add_edge(ra, rb);
        let mut s = Sanitizer::new(v, 4, true, Some(cdg));
        let msg = MessageId(0);
        // First allocation: no held resource yet, always fine.
        s.on_allocate(0, &net, msg, a, 0, Direction::Plus, 0, false);
        // Allowed edge.
        s.on_allocate(1, &net, msg, b, 0, Direction::Plus, 0, false);
        assert!(s.is_clean());
        assert_eq!(s.edges_checked(), 1);
        // A turn the CDG does not contain is a divergence.
        let c = net.neighbor(b, 0, Direction::Plus).unwrap();
        s.on_allocate(2, &net, msg, c, 1, Direction::Plus, 0, false);
        assert_eq!(s.violation_count(), 1);
        let v0 = &s.violations()[0];
        assert_eq!(v0.kind, "cdg-divergence");
        assert_eq!(v0.cycle, 2);
        assert!(v0.detail.contains("not an edge of the exact CDG"));
        // Release clears the wait-for state: the next allocation is fresh.
        s.on_release(msg);
        s.on_allocate(3, &net, msg, c, 1, Direction::Plus, 0, false);
        assert_eq!(s.violation_count(), 1);
    }

    #[test]
    fn untracked_allocations_are_ignored_without_all_tracked() {
        let net = mesh();
        let mut s = Sanitizer::new(1, 4, false, Some(DependencyGraph::new(net.channel_slots())));
        let msg = MessageId(0);
        // Adaptive-layer (non-escape) hops never touch the wait-for state.
        s.on_allocate(0, &net, msg, NodeId(0), 0, Direction::Plus, 0, false);
        s.on_allocate(1, &net, msg, NodeId(1), 1, Direction::Plus, 0, false);
        assert!(s.is_clean());
        assert_eq!(s.edges_checked(), 0);
        // Escape hops do: with an edge-free CDG the second one diverges.
        s.on_allocate(2, &net, msg, NodeId(0), 0, Direction::Plus, 0, true);
        s.on_allocate(3, &net, msg, NodeId(1), 1, Direction::Plus, 0, true);
        assert_eq!(s.violation_count(), 1);
    }

    #[test]
    fn recording_is_capped_but_counting_is_not() {
        let mut s = Sanitizer::new(1, 1, true, None);
        for i in 0..(MAX_RECORDED as u64 + 10) {
            s.record(i, "test", String::new());
        }
        assert_eq!(s.violations().len(), MAX_RECORDED);
        assert_eq!(s.violation_count(), MAX_RECORDED as u64 + 10);
    }
}
