//! Deterministic active-set worklists for the simulation engine.
//!
//! The engine keeps one [`ActiveSet`] per kind of pending work (routers with
//! queued injections, routers with occupied input VCs) so each pipeline stage
//! iterates only over live state instead of the full `routers × ports × VCs`
//! grid. The set is a fixed-size bitset: insertion, removal and membership are
//! O(1), and iteration always yields indices in **ascending order** — the same
//! order a full scan visits them — which is what keeps active-set scheduling
//! bit-identical to the reference full-scan engine (RNG draws and metric
//! recordings happen in exactly the same sequence).

/// A set of router indices with deterministic ascending iteration.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        ActiveSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Adds `index` to the set (no-op if already present).
    #[inline]
    pub fn insert(&mut self, index: usize) {
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Removes `index` from the set (no-op if absent).
    #[inline]
    pub fn remove(&mut self, index: usize) {
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// True when `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when the set holds no indices.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears `out` and fills it with the set's indices in ascending order.
    ///
    /// Stages snapshot the set before processing it so that insertions and
    /// removals made *during* the stage (downstream arrivals, queues draining)
    /// take effect from the next stage onwards, exactly like a full scan.
    pub fn collect_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(set: &ActiveSet) -> Vec<usize> {
        let mut v = Vec::new();
        set.collect_into(&mut v);
        v
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(200);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(199);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(199));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        s.remove(63); // double-remove is a no-op
        assert_eq!(s.len(), 3);
        s.insert(64); // double-insert is a no-op
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = ActiveSet::new(300);
        for &i in &[250, 3, 128, 64, 63, 0, 299] {
            s.insert(i);
        }
        assert_eq!(collected(&s), vec![0, 3, 63, 64, 128, 250, 299]);
    }

    #[test]
    fn collect_reuses_buffer() {
        let mut s = ActiveSet::new(10);
        s.insert(5);
        let mut buf = vec![1, 2, 3];
        s.collect_into(&mut buf);
        assert_eq!(buf, vec![5]);
        s.remove(5);
        s.collect_into(&mut buf);
        assert!(buf.is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_word() {
        let mut s = ActiveSet::new(65);
        s.insert(64);
        assert!(s.contains(64));
        assert_eq!(collected(&s), vec![64]);
        let empty = ActiveSet::new(0);
        assert!(empty.is_empty());
    }
}
