//! Per-node router state: input/output virtual channels, source and
//! re-injection queues, local assembly buffers.
//!
//! Port numbering convention:
//!
//! * network port `p = dim * 2 + dir.index()` — as an **output** port it sends
//!   flits in direction `dir` along `dim`; as an **input** port it receives
//!   the flits that travelled in direction `dir` (i.e. sent by the neighbour
//!   in direction `dir.opposite()`);
//! * the **injection** port is the extra input port with index `2 * n`
//!   ([`RouterState::injection_port`]); ejection/absorption is not a port but
//!   an unconstrained local sink (paper assumption (d): messages are
//!   transferred to the PE as soon as they arrive).

use crate::flit::{Flit, MessageId};
use std::collections::{HashMap, VecDeque};
use torus_topology::{Direction, NodeId};

/// Where an input virtual channel is currently forwarding its flits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteTarget {
    /// Towards a network output port and virtual channel.
    Network {
        /// Output port index (`dim * 2 + dir.index()`).
        out_port: usize,
        /// Output virtual channel index.
        out_vc: usize,
    },
    /// Into the local node: deliver to the PE (final destination reached).
    Deliver,
    /// Into the local node: absorb and hand to the message-passing software
    /// for re-routing (Software-Based fault handling).
    Absorb,
}

/// Binding of an input virtual channel to the message currently crossing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcRoute {
    /// The message occupying the channel.
    pub msg: MessageId,
    /// Where its flits are being forwarded.
    pub target: RouteTarget,
    /// Earliest cycle flits may start moving (models the router decision time
    /// `Td`).
    pub ready_at: u64,
}

/// State of one input virtual channel.
#[derive(Clone, Debug, Default)]
pub struct InputVc {
    /// Flit FIFO (depth-bounded for network ports, unbounded for the injection
    /// port, which holds the whole message being injected).
    pub buffer: VecDeque<Flit>,
    /// Current binding, `None` while idle or awaiting routing/VC allocation.
    pub route: Option<VcRoute>,
    /// Cycle of the last forward progress (used by the stall watchdog).
    pub last_progress: u64,
}

impl InputVc {
    /// True when the channel holds no flits and is not bound to a message.
    pub fn is_idle(&self) -> bool {
        self.buffer.is_empty() && self.route.is_none()
    }
}

/// Ownership state of one output virtual channel (the credit counter tracks
/// the free buffer slots of the corresponding downstream input VC).
#[derive(Clone, Debug)]
pub struct OutputVc {
    /// Message currently owning the VC (set from header acceptance until the
    /// downstream buffer has drained the tail flit).
    pub owner: Option<MessageId>,
    /// True once the tail flit has been sent; the VC is released lazily when
    /// all credits have returned (atomic VC reallocation).
    pub draining: bool,
    /// Remaining credits (free downstream buffer slots).
    pub credits: usize,
}

impl OutputVc {
    fn new(buffer_depth: usize) -> Self {
        OutputVc {
            owner: None,
            draining: false,
            credits: buffer_depth,
        }
    }

    /// True if a new message may claim this VC, releasing a drained VC lazily.
    pub fn available(&mut self, buffer_depth: usize) -> bool {
        if self.draining && self.credits == buffer_depth {
            self.owner = None;
            self.draining = false;
        }
        self.owner.is_none() && !self.draining
    }
}

/// An entry of the software re-injection queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReinjectionEntry {
    /// The absorbed message awaiting re-injection.
    pub msg: MessageId,
    /// Earliest cycle it may re-enter the network (absorption cycle + Δ).
    pub ready_at: u64,
}

/// Full per-node router state.
#[derive(Clone, Debug)]
pub struct RouterState {
    /// The node this router belongs to.
    pub node: NodeId,
    /// True when the node (PE + router) is faulty; a faulty router neither
    /// generates, forwards nor accepts flits.
    pub is_faulty: bool,
    /// Which of the `2n` network ports physically exist. On a torus every
    /// port is present; at the edge of an open (mesh) dimension the outward
    /// port is absent — its VC state is allocated but never used (the VC
    /// allocation stage of both engines debug-asserts that no routing
    /// candidate targets an absent port).
    pub port_present: Vec<bool>,
    /// Input ports: `2n` network ports followed by the injection port. Each
    /// has `V` virtual channels.
    pub inputs: Vec<Vec<InputVc>>,
    /// Output virtual channels of the `2n` network output ports.
    pub outputs: Vec<Vec<OutputVc>>,
    /// Locally generated messages waiting to enter the network.
    pub source_queue: VecDeque<MessageId>,
    /// Absorbed messages re-routed by the software layer, waiting to re-enter
    /// the network; always served before `source_queue`.
    pub reinjection_queue: VecDeque<ReinjectionEntry>,
    /// Flits received locally per in-flight message (delivery / absorption
    /// assembly buffers).
    pub local_assembly: HashMap<MessageId, u32>,
    /// Round-robin pointers of the switch allocator, one per output port.
    pub sa_pointer: Vec<usize>,
}

impl RouterState {
    /// Creates the router of `node` for an `n`-dimensional network with `v`
    /// virtual channels per physical channel and the given flit-buffer depth.
    /// `port_present[p]` records whether network port `p` physically exists
    /// (pass `vec![true; 2 * n]` for a torus).
    pub fn new(
        node: NodeId,
        n: usize,
        v: usize,
        buffer_depth: usize,
        is_faulty: bool,
        port_present: Vec<bool>,
    ) -> Self {
        let num_net_ports = 2 * n;
        debug_assert_eq!(port_present.len(), num_net_ports);
        let inputs = (0..=num_net_ports)
            .map(|_| (0..v).map(|_| InputVc::default()).collect())
            .collect();
        let outputs = (0..num_net_ports)
            .map(|_| (0..v).map(|_| OutputVc::new(buffer_depth)).collect())
            .collect();
        RouterState {
            node,
            is_faulty,
            port_present,
            inputs,
            outputs,
            source_queue: VecDeque::new(),
            reinjection_queue: VecDeque::new(),
            local_assembly: HashMap::new(),
            sa_pointer: vec![0; num_net_ports],
        }
    }

    /// Number of network ports (`2n`).
    pub fn num_net_ports(&self) -> usize {
        self.outputs.len()
    }

    /// Index of the injection input port.
    pub fn injection_port(&self) -> usize {
        self.num_net_ports()
    }

    /// Output port index for a hop along `dim` in direction `dir`.
    pub fn out_port(dim: usize, dir: Direction) -> usize {
        dim * 2 + dir.index()
    }

    /// `(dim, dir)` of an output (or network input) port index.
    pub fn port_dim_dir(port: usize) -> (usize, Direction) {
        (port / 2, Direction::from_index(port % 2))
    }

    /// Total flits currently buffered in this router (all input VCs).
    pub fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|port| port.iter())
            .map(|vc| vc.buffer.len())
            .sum()
    }

    /// True when the router holds no flits, no queued messages and no
    /// in-flight local assembly.
    pub fn is_quiescent(&self) -> bool {
        self.buffered_flits() == 0
            && self.source_queue.is_empty()
            && self.reinjection_queue.is_empty()
            && self.local_assembly.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_port_layout() {
        let r = RouterState::new(NodeId(3), 2, 4, 2, false, vec![true; 4]);
        assert_eq!(r.num_net_ports(), 4);
        assert_eq!(r.injection_port(), 4);
        assert_eq!(r.inputs.len(), 5);
        assert_eq!(r.inputs[0].len(), 4);
        assert_eq!(r.outputs.len(), 4);
        assert!(!r.is_faulty);
        assert!(r.port_present.iter().all(|&p| p));
        assert!(r.is_quiescent());
    }

    #[test]
    fn port_index_roundtrip() {
        for dim in 0..3 {
            for dir in Direction::BOTH {
                let p = RouterState::out_port(dim, dir);
                assert_eq!(RouterState::port_dim_dir(p), (dim, dir));
            }
        }
    }

    #[test]
    fn output_vc_lazy_release() {
        let mut vc = OutputVc::new(2);
        assert!(vc.available(2));
        vc.owner = Some(MessageId(1));
        assert!(!vc.available(2));
        // Tail sent, one credit still outstanding: not yet available.
        vc.draining = true;
        vc.credits = 1;
        assert!(!vc.available(2));
        // All credits back: released lazily.
        vc.credits = 2;
        assert!(vc.available(2));
        assert_eq!(vc.owner, None);
        assert!(!vc.draining);
    }

    #[test]
    fn input_vc_idle_tracking() {
        let mut vc = InputVc::default();
        assert!(vc.is_idle());
        vc.buffer.push_back(Flit::nth_of(MessageId(0), 0, 1));
        assert!(!vc.is_idle());
        vc.buffer.clear();
        vc.route = Some(VcRoute {
            msg: MessageId(0),
            target: RouteTarget::Deliver,
            ready_at: 0,
        });
        assert!(!vc.is_idle());
    }

    #[test]
    fn buffered_flit_count() {
        let mut r = RouterState::new(NodeId(0), 2, 2, 4, false, vec![true; 4]);
        r.inputs[0][1]
            .buffer
            .push_back(Flit::nth_of(MessageId(0), 0, 2));
        r.inputs[4][0]
            .buffer
            .push_back(Flit::nth_of(MessageId(1), 0, 1));
        assert_eq!(r.buffered_flits(), 2);
        assert!(!r.is_quiescent());
    }
}
