//! Flits — the flow-control units of wormhole switching.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a message within one simulation run.
///
/// The identifier packs a **slot index** (low 32 bits) and a **generation
/// tag** (high 32 bits). The slot indexes the simulator's message table
/// ([`crate::message::MessageSlab`]); the generation distinguishes successive
/// messages that reuse the same reclaimed slot, so a stale identifier can
/// never silently alias a newer message. Identifiers produced by an
/// append-only table (generation 0) are plain sequential integers, which
/// keeps `MessageId(n)` literals in tests meaningful.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl MessageId {
    const SLOT_BITS: u32 = 32;
    const SLOT_MASK: u64 = (1 << Self::SLOT_BITS) - 1;

    /// Builds an identifier from a table slot index and a generation tag.
    #[inline]
    pub fn from_parts(slot: u32, generation: u32) -> Self {
        MessageId(((generation as u64) << Self::SLOT_BITS) | slot as u64)
    }

    /// The message-table slot this identifier points at.
    #[inline]
    pub fn slot(self) -> usize {
        (self.0 & Self::SLOT_MASK) as usize
    }

    /// The generation tag of the slot at the time the message was created.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> Self::SLOT_BITS) as u32
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.generation() == 0 {
            write!(f, "m{}", self.slot())
        } else {
            write!(f, "m{}g{}", self.slot(), self.generation())
        }
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Kind of a flit within its message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitKind {
    /// Header flit: carries the routing information and allocates channels.
    Head,
    /// Data (body) flit.
    Body,
    /// Tail flit: releases the channels the message holds as it passes.
    Tail,
    /// A single-flit message is simultaneously head and tail.
    HeadTail,
}

impl FlitKind {
    /// True for flits that carry the header (and therefore trigger routing).
    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// True for flits that terminate the message (and release resources).
    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit travelling through the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// The message this flit belongs to.
    pub msg: MessageId,
    /// Position of the flit within its message (0 = header).
    pub seq: u32,
    /// Kind of the flit.
    pub kind: FlitKind,
}

impl Flit {
    /// Builds the `seq`-th flit of a message of `length` flits.
    pub fn nth_of(msg: MessageId, seq: u32, length: u32) -> Self {
        debug_assert!(length >= 1 && seq < length);
        let kind = match (seq, length) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        };
        Flit { msg, seq, kind }
    }

    /// Materialises all flits of a message, header first.
    pub fn all_of(msg: MessageId, length: u32) -> impl Iterator<Item = Flit> {
        (0..length.max(1)).map(move |seq| Flit::nth_of(msg, seq, length.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_kinds_by_position() {
        let flits: Vec<Flit> = Flit::all_of(MessageId(3), 4).collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits[0].kind.is_head());
        assert!(!flits[0].kind.is_tail());
        assert!(flits[3].kind.is_tail());
        assert!(flits.iter().all(|f| f.msg == MessageId(3)));
        assert_eq!(flits[2].seq, 2);
    }

    #[test]
    fn single_flit_message_is_head_and_tail() {
        let flits: Vec<Flit> = Flit::all_of(MessageId(0), 1).collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn zero_length_clamps_to_one() {
        let flits: Vec<Flit> = Flit::all_of(MessageId(0), 0).collect();
        assert_eq!(flits.len(), 1);
    }

    #[test]
    fn two_flit_message() {
        let flits: Vec<Flit> = Flit::all_of(MessageId(7), 2).collect();
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn message_id_display() {
        assert_eq!(format!("{}", MessageId(12)), "12");
        assert_eq!(format!("{:?}", MessageId(12)), "m12");
        assert_eq!(MessageId(5).slot(), 5);
        assert_eq!(MessageId(5).generation(), 0);
    }

    #[test]
    fn message_id_packs_slot_and_generation() {
        let id = MessageId::from_parts(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(format!("{id:?}"), "m7g3");
        assert_ne!(
            id,
            MessageId::from_parts(7, 2),
            "generations disambiguate reuse"
        );
        assert_eq!(
            MessageId::from_parts(9, 0),
            MessageId(9),
            "generation 0 is the plain index"
        );
        let max = MessageId::from_parts(u32::MAX, u32::MAX);
        assert_eq!(max.slot(), u32::MAX as usize);
        assert_eq!(max.generation(), u32::MAX);
    }
}
