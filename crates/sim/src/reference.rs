//! A straightforward full-scan reference implementation of the simulator.
//!
//! [`ReferenceSimulation`] implements exactly the same cycle semantics as the
//! production engine ([`crate::Simulation`]) with the simplest possible
//! scheduling: every stage scans the full `routers × ports × VCs` grid every
//! cycle, every healthy source is polled every cycle, the stall watchdog
//! checks every stalled head flit against its deadline every cycle, and the
//! message table is an append-only `Vec` that never reclaims entries.
//!
//! It exists as an executable specification: the equivalence test suite runs
//! both engines across seeds, loads and fault scenarios and asserts they
//! produce **bit-identical** [`SimulationReport`]s, and the `bench_cycles`
//! runner in `torus-bench` times both to record the speedup of active-set
//! scheduling. Keep this module boring — any cleverness belongs in the
//! production engine.

use crate::config::{SimConfig, SimConfigError, StopCondition};
use crate::flit::{Flit, MessageId};
use crate::message::{MessagePhase, MessageState};
use crate::network::RunOutcome;
use crate::router::{InputVc, OutputVc, ReinjectionEntry, RouteTarget, RouterState, VcRoute};
use crate::sanitizer::Sanitizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use torus_faults::FaultSet;
use torus_metrics::{MetricsCollector, SimulationReport, WarmupPolicy};
use torus_routing::{RouteDecision, RoutingAlgorithm};
use torus_topology::{AnyTopology, Direction};
use torus_workloads::TrafficSource;

/// Full-scan, append-only-table reference implementation of the simulator.
pub struct ReferenceSimulation<A: RoutingAlgorithm> {
    net: AnyTopology,
    faults: FaultSet,
    algo: A,
    config: SimConfig,
    routers: Vec<RouterState>,
    messages: Vec<MessageState>,
    sources: Vec<TrafficSource>,
    collector: MetricsCollector,
    rng: StdRng,
    cycle: u64,
    in_flight: u64,
    dropped: u64,
    forced_absorptions: u64,
    arrivals: Vec<(usize, usize, usize, Flit)>,
    credit_returns: Vec<(usize, usize, usize)>,
    /// Optional invariant-checking observer (attached by tests; the hooks
    /// that feed it are compiled only with the `sanitizer` feature).
    sanitizer: Option<Box<Sanitizer>>,
}

impl<A: RoutingAlgorithm> ReferenceSimulation<A> {
    /// Builds a reference simulation from a configuration, a fault set and a
    /// routing algorithm.
    pub fn new(config: SimConfig, faults: FaultSet, algo: A) -> Result<Self, SimConfigError> {
        let net = config.topology.build().map_err(SimConfigError::Topology)?;
        algo.supported_on(&net)
            .map_err(|error| SimConfigError::UnsupportedRouting {
                topology: config.topology.to_spec_string(),
                routing: algo.name(),
                error,
            })?;
        config.validate(algo.min_virtual_channels(&net))?;
        let n = net.dims();
        let v = config.virtual_channels;
        let routers = net
            .nodes()
            .map(|node| {
                let port_present = (0..2 * n)
                    .map(|port| {
                        let (dim, dir) = RouterState::port_dim_dir(port);
                        net.has_channel(node, dim, dir)
                    })
                    .collect();
                RouterState::new(
                    node,
                    n,
                    v,
                    config.buffer_depth,
                    faults.is_node_faulty(node),
                    port_present,
                )
            })
            .collect();
        // Traffic originates at endpoints only (the same criterion as the
        // production engine — endpoint ids are the dense prefix of the id
        // space, so `sources[idx]` aligns with `routers[idx]`).
        let sources = net
            .endpoints()
            .map(|node| config.traffic.source_for(node))
            .collect();
        let collector = MetricsCollector::new(
            net.num_nodes(),
            WarmupPolicy::Messages(config.warmup_messages),
        );
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(ReferenceSimulation {
            net,
            faults,
            algo,
            config,
            routers,
            messages: Vec::new(),
            sources,
            collector,
            rng,
            cycle: 0,
            in_flight: 0,
            dropped: 0,
            forced_absorptions: 0,
            arrivals: Vec::new(),
            credit_returns: Vec::new(),
            sanitizer: None,
        })
    }

    /// Attaches an invariant sanitizer to this engine. Pass the statically
    /// extracted exact CDG (per-VC granularity, matching this configuration's
    /// topology, routing, VC count and fault set) to additionally enforce
    /// runtime wait-for conformance, or `None` for conservation checks only.
    #[cfg(feature = "sanitizer")]
    pub fn attach_sanitizer(&mut self, cdg: Option<torus_routing::cdg::DependencyGraph>) {
        let all_tracked = self.algo.flavor() == torus_routing::RoutingFlavor::Deterministic;
        self.sanitizer = Some(Box::new(Sanitizer::new(
            self.config.virtual_channels,
            self.config.buffer_depth,
            all_tracked,
            cdg,
        )));
    }

    /// The attached sanitizer, if any (always `None` unless
    /// `attach_sanitizer` was called under the `sanitizer` feature).
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_deref()
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Messages currently queued or travelling.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Total entries in the append-only message table (equal to the total
    /// number of messages ever generated — nothing is reclaimed).
    pub fn message_table_len(&self) -> usize {
        self.messages.len()
    }

    /// The current metrics report.
    pub fn report(&self) -> SimulationReport {
        self.collector.report(self.cycle, self.in_flight)
    }

    /// Runs the simulation until its stop condition (or `max_cycles`) and
    /// returns the outcome.
    pub fn run(&mut self) -> RunOutcome {
        let mut hit_max_cycles = false;
        loop {
            if self.stop_condition_met() {
                break;
            }
            if self.cycle >= self.config.max_cycles {
                hit_max_cycles = true;
                break;
            }
            self.step();
        }
        RunOutcome {
            report: self.report(),
            hit_max_cycles,
            forced_absorptions: self.forced_absorptions,
            dropped_messages: self.dropped,
            message_table_peak: self.messages.len() as u64,
        }
    }

    fn stop_condition_met(&self) -> bool {
        match self.config.stop {
            StopCondition::MeasuredMessages(n) => self.collector.delivered_measured() >= n,
            StopCondition::Cycles(c) => self.cycle >= c,
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.generate_traffic(now);
        self.assign_injection_vcs(now);
        self.route_and_allocate(now);
        self.switch_and_traverse(now);
        self.apply_arrivals(now);
        self.apply_credit_returns();
        if self.config.stall_absorb_threshold > 0 {
            self.stall_watchdog(now);
        }
        #[cfg(feature = "sanitizer")]
        {
            let mut sanitizer = self.sanitizer.take();
            if let Some(s) = sanitizer.as_deref_mut() {
                s.check_cycle(
                    now,
                    &self.net,
                    &self.faults,
                    &self.routers,
                    &self.messages,
                    self.in_flight,
                );
            }
            self.sanitizer = sanitizer;
        }
        self.cycle = now + 1;
    }

    // ---------------------------------------------------------------- stages

    fn generate_traffic(&mut self, now: u64) {
        let ReferenceSimulation {
            net,
            faults,
            algo,
            routers,
            messages,
            sources,
            collector,
            rng,
            in_flight,
            ..
        } = self;
        for (idx, source) in sources.iter_mut().enumerate() {
            if routers[idx].is_faulty {
                continue;
            }
            for gen in source.generate(net, faults, now, rng) {
                let id = MessageId(messages.len() as u64);
                let header = algo.make_header(net, gen.src, gen.dest);
                let measured = collector.on_generated(now);
                messages.push(MessageState::new(id, header, gen.length, now, measured));
                routers[idx].source_queue.push_back(id);
                *in_flight += 1;
            }
        }
    }

    fn assign_injection_vcs(&mut self, now: u64) {
        let ReferenceSimulation {
            routers,
            messages,
            config,
            ..
        } = self;
        for router in routers.iter_mut() {
            if router.is_faulty {
                continue;
            }
            let port = router.injection_port();
            for vc in 0..config.virtual_channels {
                if !router.inputs[port][vc].is_idle() {
                    continue;
                }
                // Re-injected (absorbed) messages have priority over new ones.
                let msg_id = if router
                    .reinjection_queue
                    .front()
                    .is_some_and(|e| e.ready_at <= now)
                {
                    router.reinjection_queue.pop_front().map(|e| e.msg)
                } else {
                    router.source_queue.pop_front()
                };
                let Some(msg_id) = msg_id else {
                    break;
                };
                let msg = &mut messages[msg_id.slot()];
                msg.header.reset_for_injection();
                msg.note_injected(now);
                let ivc = &mut router.inputs[port][vc];
                ivc.buffer.extend(Flit::all_of(msg_id, msg.length));
                ivc.route = None;
                ivc.last_progress = now;
            }
        }
    }

    fn route_and_allocate(&mut self, now: u64) {
        #[cfg(feature = "sanitizer")]
        let mut sanitizer = self.sanitizer.take();
        let ReferenceSimulation {
            net,
            faults,
            algo,
            routers,
            messages,
            config,
            rng,
            ..
        } = self;
        let v = config.virtual_channels;
        for router in routers.iter_mut() {
            if router.is_faulty {
                continue;
            }
            let node = router.node;
            let num_ports = router.injection_port() + 1;
            for port in 0..num_ports {
                for vc in 0..v {
                    if router.inputs[port][vc].route.is_some() {
                        continue;
                    }
                    let Some(front) = router.inputs[port][vc].buffer.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let msg_id = front.msg;
                    let header = &mut messages[msg_id.slot()].header;
                    let decision = algo.route(net, faults, header, node, v);
                    let ready_at = now + config.router_delay as u64;
                    match decision {
                        RouteDecision::Deliver => {
                            router.inputs[port][vc].route = Some(VcRoute {
                                msg: msg_id,
                                target: RouteTarget::Deliver,
                                ready_at,
                            });
                        }
                        RouteDecision::Absorb => {
                            router.inputs[port][vc].route = Some(VcRoute {
                                msg: msg_id,
                                target: RouteTarget::Absorb,
                                ready_at,
                            });
                        }
                        RouteDecision::Forward(mut candidates) => {
                            candidates[..].shuffle(rng);
                            candidates.sort_by_key(|c| c.is_escape);
                            let mut chosen: Option<(usize, usize, bool)> = None;
                            for cand in &candidates {
                                let out_port = RouterState::out_port(cand.dim, cand.dir);
                                debug_assert!(
                                    router.port_present[out_port],
                                    "routing candidate targets an absent mesh-edge port"
                                );
                                let free: Vec<usize> = cand
                                    .vcs
                                    .iter()
                                    .copied()
                                    .filter(|&ovc| {
                                        router.outputs[out_port][ovc].available(config.buffer_depth)
                                    })
                                    .collect();
                                if let Some(&ovc) = free.choose(rng) {
                                    chosen = Some((out_port, ovc, cand.is_escape));
                                    break;
                                }
                            }
                            if let Some((out_port, out_vc, _is_escape)) = chosen {
                                router.outputs[out_port][out_vc].owner = Some(msg_id);
                                router.outputs[out_port][out_vc].draining = false;
                                router.inputs[port][vc].route = Some(VcRoute {
                                    msg: msg_id,
                                    target: RouteTarget::Network { out_port, out_vc },
                                    ready_at,
                                });
                                #[cfg(feature = "sanitizer")]
                                if let Some(s) = sanitizer.as_deref_mut() {
                                    let (dim, dir) = RouterState::port_dim_dir(out_port);
                                    s.on_allocate(
                                        now, net, msg_id, node, dim, dir, out_vc, _is_escape,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        #[cfg(feature = "sanitizer")]
        {
            self.sanitizer = sanitizer;
        }
    }

    fn switch_and_traverse(&mut self, now: u64) {
        #[cfg(feature = "sanitizer")]
        let mut sanitizer = self.sanitizer.take();
        let ReferenceSimulation {
            net,
            faults,
            algo,
            routers,
            messages,
            collector,
            config,
            in_flight,
            dropped,
            arrivals,
            credit_returns,
            ..
        } = self;
        let v = config.virtual_channels;
        arrivals.clear();
        credit_returns.clear();

        for router in routers.iter_mut() {
            if router.is_faulty {
                continue;
            }
            let node = router.node;
            let injection_port = router.injection_port();
            let num_inputs = injection_port + 1;

            // ---- local sinks: delivery and absorption (unbounded bandwidth)
            for port in 0..num_inputs {
                for vc in 0..v {
                    let Some(route) = router.inputs[port][vc].route else {
                        continue;
                    };
                    let local = matches!(route.target, RouteTarget::Deliver | RouteTarget::Absorb);
                    if !local || route.ready_at > now {
                        continue;
                    }
                    let Some(flit) = router.inputs[port][vc].buffer.pop_front() else {
                        continue;
                    };
                    router.inputs[port][vc].last_progress = now;
                    if port != injection_port {
                        let (dim, dir) = RouterState::port_dim_dir(port);
                        let upstream = net
                            .neighbor(node, dim, dir.opposite())
                            .expect("flits only arrive over existing channels");
                        credit_returns.push((upstream.index(), port, vc));
                    }
                    let entry = router.local_assembly.entry(flit.msg).or_insert(0);
                    *entry += 1;
                    if !flit.kind.is_tail() {
                        continue;
                    }
                    // Whole message has arrived locally.
                    router.local_assembly.remove(&flit.msg);
                    router.inputs[port][vc].route = None;
                    // Delivery, absorption and drop all release every channel
                    // the worm held, clearing its wait-for state.
                    #[cfg(feature = "sanitizer")]
                    if let Some(s) = sanitizer.as_deref_mut() {
                        s.on_release(flit.msg);
                    }
                    let msg = &mut messages[flit.msg.slot()];
                    match route.target {
                        RouteTarget::Deliver => {
                            msg.note_delivered(now);
                            collector.on_delivered(
                                msg.generated_at,
                                msg.first_injected_at.unwrap_or(msg.generated_at),
                                now,
                                msg.length,
                                msg.header.hops,
                                msg.measured,
                            );
                            *in_flight -= 1;
                        }
                        RouteTarget::Absorb => {
                            collector.on_absorbed(msg.measured);
                            let blocked = algo
                                .deterministic_output(net, &msg.header, node)
                                .unwrap_or((0, Direction::Plus));
                            let rerouted =
                                algo.reroute_on_fault(net, faults, &mut msg.header, node, blocked);
                            if rerouted {
                                msg.phase = MessagePhase::Queued;
                                router.reinjection_queue.push_back(ReinjectionEntry {
                                    msg: flit.msg,
                                    ready_at: now + config.reinjection_delay as u64,
                                });
                                collector
                                    .on_reinjection_queue_depth(router.reinjection_queue.len());
                            } else {
                                msg.note_dropped();
                                *dropped += 1;
                                *in_flight -= 1;
                            }
                        }
                        RouteTarget::Network { .. } => unreachable!("local sink"),
                    }
                }
            }

            // ---- network output ports: one flit per physical channel per cycle
            let total_slots = num_inputs * v;
            for out_port in 0..router.num_net_ports() {
                let start = router.sa_pointer[out_port];
                let mut winner: Option<usize> = None;
                for offset in 0..total_slots {
                    let flat = (start + offset) % total_slots;
                    let (in_port, in_vc) = (flat / v, flat % v);
                    let Some(route) = router.inputs[in_port][in_vc].route else {
                        continue;
                    };
                    if route.ready_at > now {
                        continue;
                    }
                    let RouteTarget::Network {
                        out_port: op,
                        out_vc,
                    } = route.target
                    else {
                        continue;
                    };
                    if op != out_port || router.inputs[in_port][in_vc].buffer.is_empty() {
                        continue;
                    }
                    if router.outputs[out_port][out_vc].credits == 0 {
                        continue;
                    }
                    winner = Some(flat);
                    break;
                }
                let Some(flat) = winner else {
                    continue;
                };
                let (in_port, in_vc) = (flat / v, flat % v);
                let route = router.inputs[in_port][in_vc]
                    .route
                    .expect("winner has a route");
                let RouteTarget::Network { out_vc, .. } = route.target else {
                    unreachable!()
                };
                let flit = router.inputs[in_port][in_vc]
                    .buffer
                    .pop_front()
                    .expect("winner has a flit");
                router.inputs[in_port][in_vc].last_progress = now;
                router.outputs[out_port][out_vc].credits -= 1;
                if in_port != injection_port {
                    let (dim, dir) = RouterState::port_dim_dir(in_port);
                    let upstream = net
                        .neighbor(node, dim, dir.opposite())
                        .expect("flits only arrive over existing channels");
                    credit_returns.push((upstream.index(), in_port, in_vc));
                }
                let (dim, dir) = RouterState::port_dim_dir(out_port);
                if flit.kind.is_head() {
                    let header = &mut messages[flit.msg.slot()].header;
                    algo.note_hop(net, header, node, dim, dir);
                }
                let dest = net
                    .neighbor(node, dim, dir)
                    .expect("routing only targets existing channels");
                arrivals.push((dest.index(), out_port, out_vc, flit));
                if flit.kind.is_tail() {
                    router.inputs[in_port][in_vc].route = None;
                    router.outputs[out_port][out_vc].draining = true;
                }
                router.sa_pointer[out_port] = (flat + 1) % total_slots;
            }
        }
        #[cfg(feature = "sanitizer")]
        {
            self.sanitizer = sanitizer;
        }
    }

    fn apply_arrivals(&mut self, now: u64) {
        let ReferenceSimulation {
            routers,
            arrivals,
            config,
            ..
        } = self;
        for (node_idx, in_port, vc, flit) in arrivals.drain(..) {
            let ivc = &mut routers[node_idx].inputs[in_port][vc];
            debug_assert!(
                ivc.buffer.len() < config.buffer_depth,
                "flit arrived at a full buffer (credit accounting violated)"
            );
            if ivc.buffer.is_empty() {
                ivc.last_progress = now;
            }
            ivc.buffer.push_back(flit);
        }
    }

    fn apply_credit_returns(&mut self) {
        let ReferenceSimulation {
            routers,
            credit_returns,
            config,
            ..
        } = self;
        for (node_idx, out_port, vc) in credit_returns.drain(..) {
            let ovc: &mut OutputVc = &mut routers[node_idx].outputs[out_port][vc];
            ovc.credits += 1;
            debug_assert!(
                ovc.credits <= config.buffer_depth,
                "credit counter exceeded the buffer depth"
            );
        }
    }

    /// The straightforward watchdog: every cycle, absorb any stalled head
    /// flit whose deadline (`last_progress + threshold`) has expired. The
    /// production engine reproduces exactly this schedule with deadline-driven
    /// scans.
    fn stall_watchdog(&mut self, now: u64) {
        let threshold = self.config.stall_absorb_threshold;
        let v = self.config.virtual_channels;
        let ReferenceSimulation {
            routers,
            forced_absorptions,
            ..
        } = self;
        for router in routers.iter_mut() {
            if router.is_faulty {
                continue;
            }
            let num_inputs = router.injection_port() + 1;
            for port in 0..num_inputs {
                for vc in 0..v {
                    let ivc: &mut InputVc = &mut router.inputs[port][vc];
                    if ivc.route.is_some() || ivc.buffer.is_empty() {
                        continue;
                    }
                    let Some(front) = ivc.buffer.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    if ivc.last_progress + threshold > now {
                        continue;
                    }
                    ivc.route = Some(VcRoute {
                        msg: front.msg,
                        target: RouteTarget::Absorb,
                        ready_at: now,
                    });
                    *forced_absorptions += 1;
                }
            }
        }
    }
}
