//! Simulation configuration.

use serde::{Deserialize, Serialize};
use std::fmt;
use torus_topology::TopologySpec;
use torus_workloads::TrafficSpec;

/// When a simulation run stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopCondition {
    /// Stop once this many *measured* (post-warm-up) messages have been
    /// delivered, the paper's methodology (100,000 messages of which the
    /// first 10,000 are discarded).
    MeasuredMessages(u64),
    /// Stop after simulating this many cycles.
    Cycles(u64),
}

/// Errors detected when validating a [`SimConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimConfigError {
    /// The requested number of virtual channels is below the minimum the
    /// routing algorithm needs for deadlock freedom on this topology.
    TooFewVirtualChannels {
        /// Requested V.
        requested: usize,
        /// Minimum required by the routing flavour on this topology.
        minimum: usize,
    },
    /// Flit buffers must hold at least one flit.
    ZeroBufferDepth,
    /// The workload is configured with zero-length messages. A message needs
    /// at least its header flit; rather than silently clamping the length to
    /// one flit at generation time, the configuration is rejected up front.
    ZeroMessageLength,
    /// The topology parameters are invalid.
    Topology(torus_topology::NetworkError),
    /// The routing algorithm cannot operate on this topology (e.g. a turn
    /// model on a network with wrapped dimensions).
    UnsupportedRouting {
        /// Spec-string of the offending topology (e.g. `torus:8x2`).
        topology: String,
        /// Name of the rejecting routing algorithm.
        routing: String,
        /// The underlying typed rejection.
        error: torus_routing::RoutingTopologyError,
    },
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimConfigError::TooFewVirtualChannels { requested, minimum } => write!(
                f,
                "{requested} virtual channels requested but the routing algorithm needs at least {minimum} on this topology"
            ),
            SimConfigError::ZeroBufferDepth => write!(f, "flit buffers must hold at least one flit"),
            SimConfigError::ZeroMessageLength => write!(
                f,
                "the workload is configured with zero-length messages (every message needs at least its header flit)"
            ),
            SimConfigError::Topology(e) => write!(f, "invalid topology: {e}"),
            SimConfigError::UnsupportedRouting {
                topology,
                routing,
                error,
            } => {
                write!(
                    f,
                    "routing '{routing}' is unsupported on topology '{topology}': {error}"
                )
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Full configuration of one simulation run.
///
/// The defaults reproduce the paper's assumptions: router decision time
/// `Td = 0`, re-injection overhead `Δ = 0`, fixed-length messages, Poisson
/// arrivals, uniform destinations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The network topology (torus / mesh / hypercube / mixed-radix).
    pub topology: TopologySpec,
    /// Virtual channels per physical channel (`V`).
    pub virtual_channels: usize,
    /// Flit-buffer depth of each virtual channel, in flits.
    pub buffer_depth: usize,
    /// Workload applied to every healthy node.
    pub traffic: TrafficSpec,
    /// Router decision time `Td` in cycles (0 in all paper experiments).
    pub router_delay: u32,
    /// Software re-injection overhead `Δ` in cycles (0 in all paper
    /// experiments).
    pub reinjection_delay: u32,
    /// Number of generated messages discarded as warm-up transient.
    pub warmup_messages: u64,
    /// Stop condition of the run.
    pub stop: StopCondition,
    /// Hard cap on simulated cycles (applies to every stop condition, so a
    /// saturated network cannot run forever).
    pub max_cycles: u64,
    /// RNG seed; every run is a deterministic function of its seed.
    pub seed: u64,
    /// Safety valve: a head flit that has been unable to obtain an output for
    /// this many cycles is absorbed by the local software layer exactly as if
    /// it had encountered a fault. With the deadlock-free routing algorithms
    /// in this repository the valve never fires (asserted by tests); it
    /// protects long experiment sweeps against pathological configurations.
    pub stall_absorb_threshold: u64,
}

impl SimConfig {
    /// A configuration matching the paper's experimental setup for a k-ary
    /// n-cube, virtual-channel count, message length (flits) and traffic rate
    /// (messages/node/cycle), at a reduced message budget suitable for quick
    /// runs (2,000 warm-up + 10,000 measured messages).
    pub fn paper(radix: u16, dims: u32, v: usize, message_length: u32, rate: f64) -> Self {
        Self::paper_topology(TopologySpec::torus(radix, dims), v, message_length, rate)
    }

    /// The paper-style configuration on an arbitrary topology (mesh,
    /// hypercube or mixed-radix shape).
    pub fn paper_topology(
        topology: TopologySpec,
        v: usize,
        message_length: u32,
        rate: f64,
    ) -> Self {
        SimConfig {
            topology,
            virtual_channels: v,
            buffer_depth: 2,
            traffic: TrafficSpec::paper(rate, message_length),
            router_delay: 0,
            reinjection_delay: 0,
            warmup_messages: 2_000,
            stop: StopCondition::MeasuredMessages(10_000),
            max_cycles: 300_000,
            seed: 0x005a_fae1_2006,
            stall_absorb_threshold: 20_000,
        }
    }

    /// Switches to the paper's full message budget (10,000 warm-up messages,
    /// 90,000 measured messages).
    pub fn with_paper_scale(mut self) -> Self {
        self.warmup_messages = 10_000;
        self.stop = StopCondition::MeasuredMessages(90_000);
        self.max_cycles = 2_000_000;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of nodes of the configured topology.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Validates the configuration against the minimum virtual-channel count
    /// required by a routing algorithm on this topology.
    pub fn validate(&self, min_vcs: usize) -> Result<(), SimConfigError> {
        self.topology.build().map_err(SimConfigError::Topology)?;
        if self.buffer_depth == 0 {
            return Err(SimConfigError::ZeroBufferDepth);
        }
        if self.traffic.length.min_flits() == 0 {
            return Err(SimConfigError::ZeroMessageLength);
        }
        if self.virtual_channels < min_vcs {
            return Err(SimConfigError::TooFewVirtualChannels {
                requested: self.virtual_channels,
                minimum: min_vcs,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = SimConfig::paper(8, 2, 6, 32, 0.008);
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.topology, TopologySpec::torus(8, 2));
        assert_eq!(c.router_delay, 0);
        assert_eq!(c.reinjection_delay, 0);
        assert_eq!(c.virtual_channels, 6);
        assert!(matches!(c.stop, StopCondition::MeasuredMessages(_)));
        assert!(c.validate(3).is_ok());
    }

    #[test]
    fn paper_scale_increases_budget() {
        let c = SimConfig::paper(8, 3, 10, 64, 0.004).with_paper_scale();
        assert_eq!(c.warmup_messages, 10_000);
        assert_eq!(c.stop, StopCondition::MeasuredMessages(90_000));
        assert_eq!(c.num_nodes(), 512);
    }

    #[test]
    fn mesh_and_hypercube_configs() {
        let m = SimConfig::paper_topology(TopologySpec::mesh(8, 2), 4, 32, 0.004);
        assert_eq!(m.num_nodes(), 64);
        assert!(m.validate(1).is_ok());
        let h = SimConfig::paper_topology(TopologySpec::hypercube(6), 2, 16, 0.002);
        assert_eq!(h.num_nodes(), 64);
        assert!(h.validate(2).is_ok());
    }

    #[test]
    fn validation_errors() {
        let mut c = SimConfig::paper(8, 2, 2, 32, 0.001);
        assert_eq!(
            c.validate(3),
            Err(SimConfigError::TooFewVirtualChannels {
                requested: 2,
                minimum: 3
            })
        );
        c.virtual_channels = 4;
        c.buffer_depth = 0;
        assert_eq!(c.validate(2), Err(SimConfigError::ZeroBufferDepth));
        c.buffer_depth = 2;
        c.topology = TopologySpec::torus(1, 2);
        assert!(matches!(c.validate(2), Err(SimConfigError::Topology(_))));
    }

    #[test]
    fn zero_length_messages_are_rejected() {
        use torus_workloads::MessageLength;
        let mut c = SimConfig::paper(8, 2, 4, 0, 0.001);
        assert_eq!(c.validate(2), Err(SimConfigError::ZeroMessageLength));
        assert!(format!("{}", SimConfigError::ZeroMessageLength).contains("zero-length"));
        c.traffic.length = MessageLength::Uniform { min: 0, max: 8 };
        assert_eq!(c.validate(2), Err(SimConfigError::ZeroMessageLength));
        c.traffic.length = MessageLength::Bimodal {
            short: 0,
            long: 32,
            short_fraction: 0.5,
        };
        assert_eq!(c.validate(2), Err(SimConfigError::ZeroMessageLength));
        c.traffic.length = MessageLength::Fixed(1);
        assert!(c.validate(2).is_ok());
    }

    #[test]
    fn unsupported_routing_error_renders() {
        use torus_routing::RoutingTopologyError;
        let e = SimConfigError::UnsupportedRouting {
            topology: "torus:8x2".into(),
            routing: "Negative-First (adaptive)".into(),
            error: RoutingTopologyError::WrappedDimension {
                algorithm: "negative-first turn-model",
                shape: "8x8".into(),
                dim: 0,
                radix: 8,
            },
        };
        let msg = format!("{e}");
        assert!(msg.contains("unsupported on topology 'torus:8x2'"));
        assert!(msg.contains("routing 'Negative-First (adaptive)'"));
        assert!(msg.contains("negative-first turn-model"));
    }

    #[test]
    fn seed_builder() {
        let c = SimConfig::paper(8, 2, 4, 32, 0.001).with_seed(99);
        assert_eq!(c.seed, 99);
    }
}
