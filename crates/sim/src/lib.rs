//! # torus-sim
//!
//! A flit-level simulator of wormhole-switched multidimensional networks
//! (tori, meshes, hypercubes and mixed-radix shapes, selected by
//! [`torus_topology::TopologySpec`]) with virtual channels, faithful to the
//! simulation model of Safaei et al. (IPDPS 2006), Section 5:
//!
//! * each node couples a processing element (PE) to a router with up to `2n`
//!   network input/output channel pairs plus injection and ejection channels
//!   (edge nodes of open/mesh dimensions lack the outward ports);
//! * every physical channel carries `V` virtual channels, each with its own
//!   flit buffer, sharing the physical link bandwidth (one flit per physical
//!   channel per cycle);
//! * messages are split into flits; the header flit carries the routing state
//!   and data flits follow it in a pipelined fashion (wormhole switching);
//! * routing decisions, virtual-channel selection and deadlock avoidance are
//!   delegated to a [`torus_routing::RoutingAlgorithm`] — in this repository
//!   the Software-Based fault-tolerant algorithm (deterministic and adaptive
//!   flavours) and the negative-first turn model for open topologies; an
//!   algorithm that cannot operate on the configured topology is rejected at
//!   construction time with a typed error
//!   ([`SimConfigError::UnsupportedRouting`]), and the blocked output
//!   reported to the software layer at absorption time comes from the
//!   algorithm's own deterministic layer
//!   ([`torus_routing::RoutingAlgorithm::deterministic_output`]);
//! * when the routing algorithm decides to **absorb** a message (its useful
//!   outputs lead to faulty components), the whole worm is drained into the
//!   local node, handed to the message-passing software, re-routed and
//!   re-injected with priority over locally generated messages — the
//!   Software-Based fault-tolerance mechanism;
//! * per-node traffic sources (Poisson arrivals, uniform destinations, fixed
//!   message length) come from `torus-workloads`, statistics from
//!   `torus-metrics`.
//!
//! The main entry point is [`Simulation`]: build it from a [`SimConfig`],
//! call [`Simulation::run`] and read the resulting
//! [`torus_metrics::SimulationReport`].
//!
//! [`Simulation`] schedules its pipeline stages over active-set worklists and
//! reclaims retired message-table entries (see [`network`]); the full-scan
//! [`reference::ReferenceSimulation`] implements identical semantics in the
//! simplest possible way and is used by the equivalence tests and benchmarks
//! as the executable specification.
//!
//! With the `sanitizer` cargo feature (on by default; disable it for release
//! benchmarks) both engines accept an invariant-checking observer
//! ([`sanitizer::Sanitizer`]) that audits conservation invariants every cycle
//! and checks the runtime wait-for graph against a statically extracted exact
//! channel-dependency graph.

pub mod active;
pub mod config;
pub mod flit;
pub mod message;
pub mod network;
pub mod reference;
pub mod router;
pub mod sanitizer;

pub use config::{SimConfig, SimConfigError, StopCondition};
pub use flit::{Flit, FlitKind, MessageId};
pub use message::{MessageSlab, MessageState};
pub use network::{RunOutcome, Simulation};
pub use reference::ReferenceSimulation;
pub use sanitizer::{InvariantViolation, Sanitizer};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::config::{SimConfig, StopCondition};
    pub use crate::flit::{Flit, FlitKind, MessageId};
    pub use crate::network::{RunOutcome, Simulation};
}
