//! The cycle-driven flit-level network simulator.
//!
//! Every simulated cycle consists of the classical wormhole router pipeline,
//! applied synchronously to all routers:
//!
//! 1. **Traffic generation** — healthy PEs draw new messages from their
//!    Poisson sources into the node's source queue.
//! 2. **Injection** — idle injection virtual channels accept the next message
//!    from the software re-injection queue (priority) or the source queue.
//! 3. **Routing computation + virtual-channel allocation** — head flits at the
//!    front of an input VC obtain a routing decision from the routing
//!    algorithm and try to claim a permitted output VC.
//! 4. **Switch allocation + traversal** — each output physical channel moves
//!    at most one flit per cycle (round-robin among requesting input VCs with
//!    downstream credit); flits routed to the local node (delivery or
//!    absorption) drain without bandwidth limit (paper assumption (d)).
//! 5. **Credit return / arrival application** — movements become visible to
//!    the downstream routers at the start of the next cycle.
//!
//! Absorption (the Software-Based mechanism) drains the whole worm into the
//! local node; once the tail flit has arrived the message-passing software
//! rewrites the header ([`torus_routing::RoutingAlgorithm::reroute_on_fault`])
//! and places the message in the node's re-injection queue, which is served
//! with priority over locally generated messages.
//!
//! # Active-set scheduling
//!
//! The stages above iterate **worklists of live state** instead of the full
//! `routers × ports × VCs` grid:
//!
//! * traffic generation pops an *arrival calendar* (a min-heap of per-node
//!   next-arrival cycles) so idle sources are never polled — safe because
//!   [`torus_workloads::TrafficSource::next_due_cycle`] guarantees skipped
//!   polls draw nothing from the RNG;
//! * injection iterates only routers with non-empty source/re-injection
//!   queues ([`crate::active::ActiveSet`]);
//! * routing, switching and the stall watchdog iterate only routers with at
//!   least one occupied input VC (tracked by a per-router live-VC counter).
//!
//! All worklists iterate in ascending router order — the order a full scan
//! visits them — so RNG draws and metric recordings happen in exactly the
//! same sequence and fixed-seed results are **bit-identical** to the
//! straightforward full-scan engine ([`crate::reference::ReferenceSimulation`],
//! enforced by the equivalence test suite).
//!
//! The message table is a reclaiming slab ([`MessageSlab`]): delivered and
//! dropped entries are retired after their metrics have been folded into the
//! collector, so table memory is bounded by the peak in-flight population
//! rather than by the total traffic of the run.

use crate::active::ActiveSet;
use crate::config::{SimConfig, SimConfigError, StopCondition};
use crate::flit::Flit;
use crate::message::{MessagePhase, MessageSlab, MessageState};
use crate::router::{InputVc, OutputVc, ReinjectionEntry, RouteTarget, RouterState, VcRoute};
use crate::sanitizer::Sanitizer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use torus_faults::FaultSet;
use torus_metrics::{MetricsCollector, SimulationReport, WarmupPolicy};
use torus_routing::{RouteDecision, RoutingAlgorithm};
use torus_topology::{AnyTopology, Direction};
use torus_workloads::TrafficSource;

/// Legacy scan stride of the stall watchdog, kept as an upper bound on the
/// interval between scans. Within a stride the watchdog wakes exactly at the
/// earliest pending stall deadline, so `stall_absorb_threshold` is honored to
/// the cycle instead of being quantized to the stride.
const WATCHDOG_STRIDE: u64 = 128;

/// Result of running a simulation to its stop condition.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The metrics report of the run.
    pub report: SimulationReport,
    /// True if the run stopped because it hit the `max_cycles` cap rather than
    /// its stop condition (typically a saturated network).
    pub hit_max_cycles: bool,
    /// Messages absorbed by the stall watchdog rather than a fault encounter
    /// (always 0 with the deadlock-free algorithms shipped here).
    pub forced_absorptions: u64,
    /// Messages dropped because no fault-free path to their destination
    /// existed (always 0 when faults preserve connectivity).
    pub dropped_messages: u64,
    /// Peak number of simultaneously live entries in the message table.
    /// Bounded by the in-flight population (the table reclaims retired
    /// entries), not by the total number of messages delivered.
    pub message_table_peak: u64,
}

/// A flit-level wormhole simulation of one network configuration.
pub struct Simulation<A: RoutingAlgorithm> {
    net: AnyTopology,
    faults: FaultSet,
    algo: A,
    config: SimConfig,
    routers: Vec<RouterState>,
    messages: MessageSlab,
    sources: Vec<TrafficSource>,
    collector: MetricsCollector,
    rng: StdRng,
    cycle: u64,
    in_flight: u64,
    dropped: u64,
    forced_absorptions: u64,
    // Scratch buffers reused across cycles to avoid per-cycle allocation.
    arrivals: Vec<(usize, usize, usize, Flit)>,
    credit_returns: Vec<(usize, usize, usize)>,
    // Active-set scheduling state.
    /// Min-heap of `(next_arrival_cycle, node)` for every healthy source.
    arrival_calendar: BinaryHeap<Reverse<(u64, usize)>>,
    /// Routers with a non-empty source or re-injection queue.
    inject_set: ActiveSet,
    /// Routers with at least one non-idle input VC.
    busy_set: ActiveSet,
    /// Per-router count of non-idle input VCs (backs `busy_set` membership).
    live_input_vcs: Vec<u32>,
    /// Reusable snapshot buffer for per-stage worklist iteration.
    stage_scratch: Vec<usize>,
    /// Next cycle the stall watchdog must scan at.
    watchdog_next: u64,
    /// Optional invariant-checking observer (attached by tests; the hooks
    /// that feed it are compiled only with the `sanitizer` feature).
    sanitizer: Option<Box<Sanitizer>>,
}

impl<A: RoutingAlgorithm> Simulation<A> {
    /// Builds a simulation from a configuration, a fault set and a routing
    /// algorithm.
    pub fn new(config: SimConfig, faults: FaultSet, algo: A) -> Result<Self, SimConfigError> {
        let net = config.topology.build().map_err(SimConfigError::Topology)?;
        algo.supported_on(&net)
            .map_err(|error| SimConfigError::UnsupportedRouting {
                topology: config.topology.to_spec_string(),
                routing: algo.name(),
                error,
            })?;
        config.validate(algo.min_virtual_channels(&net))?;
        let n = net.dims();
        let v = config.virtual_channels;
        let routers: Vec<RouterState> = net
            .nodes()
            .map(|node| {
                let port_present = (0..2 * n)
                    .map(|port| {
                        let (dim, dir) = RouterState::port_dim_dir(port);
                        net.has_channel(node, dim, dir)
                    })
                    .collect();
                RouterState::new(
                    node,
                    n,
                    v,
                    config.buffer_depth,
                    faults.is_node_faulty(node),
                    port_present,
                )
            })
            .collect();
        // Traffic originates at endpoints only: on grids that is every node,
        // on fat-trees the processing nodes below the switch fabric. The
        // sources vector is indexed by node id, which works because endpoint
        // ids form the dense prefix `0..num_endpoints` of the id space.
        let sources = net
            .endpoints()
            .map(|node| config.traffic.source_for(node))
            .collect();
        let collector = MetricsCollector::new(
            net.num_nodes(),
            WarmupPolicy::Messages(config.warmup_messages),
        );
        let rng = StdRng::seed_from_u64(config.seed);
        let num_nodes = net.num_nodes();
        // Every healthy source is due for its very first poll at cycle 0 (the
        // poll that draws its initial inter-arrival gap).
        let mut arrival_calendar = BinaryHeap::with_capacity(net.num_endpoints());
        for (idx, router) in routers.iter().enumerate().take(net.num_endpoints()) {
            if !router.is_faulty {
                arrival_calendar.push(Reverse((0u64, idx)));
            }
        }
        Ok(Simulation {
            net,
            faults,
            algo,
            config,
            routers,
            messages: MessageSlab::new(),
            sources,
            collector,
            rng,
            cycle: 0,
            in_flight: 0,
            dropped: 0,
            forced_absorptions: 0,
            arrivals: Vec::new(),
            credit_returns: Vec::new(),
            arrival_calendar,
            inject_set: ActiveSet::new(num_nodes),
            busy_set: ActiveSet::new(num_nodes),
            live_input_vcs: vec![0; num_nodes],
            stage_scratch: Vec::with_capacity(num_nodes),
            watchdog_next: 0,
            sanitizer: None,
        })
    }

    /// Attaches an invariant sanitizer to this engine. Pass the statically
    /// extracted exact CDG (per-VC granularity, matching this configuration's
    /// topology, routing, VC count and fault set) to additionally enforce
    /// runtime wait-for conformance, or `None` for conservation checks only.
    #[cfg(feature = "sanitizer")]
    pub fn attach_sanitizer(&mut self, cdg: Option<torus_routing::cdg::DependencyGraph>) {
        let all_tracked = self.algo.flavor() == torus_routing::RoutingFlavor::Deterministic;
        self.sanitizer = Some(Box::new(Sanitizer::new(
            self.config.virtual_channels,
            self.config.buffer_depth,
            all_tracked,
            cdg,
        )));
    }

    /// The attached sanitizer, if any (always `None` unless
    /// `attach_sanitizer` was called under the `sanitizer` feature).
    pub fn sanitizer(&self) -> Option<&Sanitizer> {
        self.sanitizer.as_deref()
    }

    /// The topology being simulated.
    pub fn network(&self) -> &AnyTopology {
        &self.net
    }

    /// The fault set applied to the network.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Messages currently queued or travelling.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Messages absorbed by the stall watchdog (should stay 0).
    pub fn forced_absorptions(&self) -> u64 {
        self.forced_absorptions
    }

    /// Messages dropped for lack of any fault-free path (should stay 0).
    pub fn dropped_messages(&self) -> u64 {
        self.dropped
    }

    /// Read-only iterator over the live (not yet retired) messages, in table
    /// slot order (used by tests and examples).
    pub fn live_messages(&self) -> impl Iterator<Item = &MessageState> {
        self.messages.iter_live()
    }

    /// Current number of live entries in the message table.
    pub fn message_table_live(&self) -> usize {
        self.messages.live()
    }

    /// Peak number of simultaneously live entries the message table has held.
    pub fn message_table_peak(&self) -> usize {
        self.messages.peak_live()
    }

    /// Number of slots the message table has grown to (its memory footprint).
    pub fn message_table_capacity(&self) -> usize {
        self.messages.capacity()
    }

    /// The current metrics report.
    pub fn report(&self) -> SimulationReport {
        self.collector.report(self.cycle, self.in_flight)
    }

    /// Runs the simulation until its stop condition (or `max_cycles`) and
    /// returns the outcome.
    pub fn run(&mut self) -> RunOutcome {
        let mut hit_max_cycles = false;
        loop {
            if self.stop_condition_met() {
                break;
            }
            if self.cycle >= self.config.max_cycles {
                hit_max_cycles = true;
                break;
            }
            self.step();
        }
        RunOutcome {
            report: self.report(),
            hit_max_cycles,
            forced_absorptions: self.forced_absorptions,
            dropped_messages: self.dropped,
            message_table_peak: self.messages.peak_live() as u64,
        }
    }

    fn stop_condition_met(&self) -> bool {
        match self.config.stop {
            StopCondition::MeasuredMessages(n) => self.collector.delivered_measured() >= n,
            StopCondition::Cycles(c) => self.cycle >= c,
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.generate_traffic(now);
        self.assign_injection_vcs(now);
        self.route_and_allocate(now);
        self.switch_and_traverse(now);
        self.apply_arrivals(now);
        self.apply_credit_returns();
        if self.config.stall_absorb_threshold > 0 && now >= self.watchdog_next {
            self.stall_watchdog(now);
        }
        #[cfg(feature = "sanitizer")]
        {
            let mut sanitizer = self.sanitizer.take();
            if let Some(s) = sanitizer.as_deref_mut() {
                s.check_cycle(
                    now,
                    &self.net,
                    &self.faults,
                    &self.routers,
                    &self.messages,
                    self.in_flight,
                );
            }
            self.sanitizer = sanitizer;
        }
        self.cycle = now + 1;
    }

    // ---------------------------------------------------------------- stages

    fn generate_traffic(&mut self, now: u64) {
        let Simulation {
            net,
            faults,
            algo,
            routers,
            messages,
            sources,
            collector,
            rng,
            in_flight,
            arrival_calendar,
            inject_set,
            ..
        } = self;
        // Entries pop in (cycle, node) order, so sources due at the same
        // cycle are polled in ascending node order — exactly the order the
        // full scan polls them — and skipped (not-yet-due) sources would have
        // drawn nothing from the RNG anyway.
        while let Some(&Reverse((due, idx))) = arrival_calendar.peek() {
            if due > now {
                break;
            }
            arrival_calendar.pop();
            debug_assert!(!routers[idx].is_faulty, "faulty nodes are never scheduled");
            let source = &mut sources[idx];
            let mut queued_any = false;
            for gen in source.generate(net, faults, now, rng) {
                let header = algo.make_header(net, gen.src, gen.dest);
                let measured = collector.on_generated(now);
                let id = messages
                    .insert_with(|id| MessageState::new(id, header, gen.length, now, measured));
                routers[idx].source_queue.push_back(id);
                *in_flight += 1;
                queued_any = true;
            }
            if queued_any {
                inject_set.insert(idx);
            }
            if let Some(next_due) = source.next_due_cycle() {
                arrival_calendar.push(Reverse((next_due.max(now + 1), idx)));
            }
        }
    }

    fn assign_injection_vcs(&mut self, now: u64) {
        let Simulation {
            routers,
            messages,
            config,
            inject_set,
            busy_set,
            live_input_vcs,
            stage_scratch,
            ..
        } = self;
        inject_set.collect_into(stage_scratch);
        for &idx in stage_scratch.iter() {
            let router = &mut routers[idx];
            let port = router.injection_port();
            for vc in 0..config.virtual_channels {
                if !router.inputs[port][vc].is_idle() {
                    continue;
                }
                // Re-injected (absorbed) messages have priority over new ones.
                let msg_id = if router
                    .reinjection_queue
                    .front()
                    .is_some_and(|e| e.ready_at <= now)
                {
                    router.reinjection_queue.pop_front().map(|e| e.msg)
                } else {
                    router.source_queue.pop_front()
                };
                let Some(msg_id) = msg_id else {
                    break;
                };
                let msg = &mut messages[msg_id];
                msg.header.reset_for_injection();
                msg.note_injected(now);
                let ivc = &mut router.inputs[port][vc];
                ivc.buffer.extend(Flit::all_of(msg_id, msg.length));
                ivc.route = None;
                ivc.last_progress = now;
                live_input_vcs[idx] += 1;
                busy_set.insert(idx);
            }
            if router.source_queue.is_empty() && router.reinjection_queue.is_empty() {
                inject_set.remove(idx);
            }
        }
    }

    fn route_and_allocate(&mut self, now: u64) {
        #[cfg(feature = "sanitizer")]
        let mut sanitizer = self.sanitizer.take();
        let Simulation {
            net,
            faults,
            algo,
            routers,
            messages,
            config,
            rng,
            busy_set,
            stage_scratch,
            ..
        } = self;
        let v = config.virtual_channels;
        busy_set.collect_into(stage_scratch);
        for &idx in stage_scratch.iter() {
            let router = &mut routers[idx];
            let node = router.node;
            let num_ports = router.injection_port() + 1;
            for port in 0..num_ports {
                for vc in 0..v {
                    if router.inputs[port][vc].route.is_some() {
                        continue;
                    }
                    let Some(front) = router.inputs[port][vc].buffer.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let msg_id = front.msg;
                    let header = &mut messages[msg_id].header;
                    let decision = algo.route(net, faults, header, node, v);
                    let ready_at = now + config.router_delay as u64;
                    match decision {
                        RouteDecision::Deliver => {
                            router.inputs[port][vc].route = Some(VcRoute {
                                msg: msg_id,
                                target: RouteTarget::Deliver,
                                ready_at,
                            });
                        }
                        RouteDecision::Absorb => {
                            router.inputs[port][vc].route = Some(VcRoute {
                                msg: msg_id,
                                target: RouteTarget::Absorb,
                                ready_at,
                            });
                        }
                        RouteDecision::Forward(mut candidates) => {
                            // The paper's assumption (e): pick randomly among
                            // the available VCs of the profitable physical
                            // channels; escape channels are only considered
                            // when no adaptive candidate has a free VC.
                            candidates[..].shuffle(rng);
                            candidates.sort_by_key(|c| c.is_escape);
                            let mut chosen: Option<(usize, usize, bool)> = None;
                            for cand in &candidates {
                                let out_port = RouterState::out_port(cand.dim, cand.dir);
                                debug_assert!(
                                    router.port_present[out_port],
                                    "routing candidate targets an absent mesh-edge port"
                                );
                                let free: Vec<usize> = cand
                                    .vcs
                                    .iter()
                                    .copied()
                                    .filter(|&ovc| {
                                        router.outputs[out_port][ovc].available(config.buffer_depth)
                                    })
                                    .collect();
                                if let Some(&ovc) = free.choose(rng) {
                                    chosen = Some((out_port, ovc, cand.is_escape));
                                    break;
                                }
                            }
                            if let Some((out_port, out_vc, _is_escape)) = chosen {
                                router.outputs[out_port][out_vc].owner = Some(msg_id);
                                router.outputs[out_port][out_vc].draining = false;
                                router.inputs[port][vc].route = Some(VcRoute {
                                    msg: msg_id,
                                    target: RouteTarget::Network { out_port, out_vc },
                                    ready_at,
                                });
                                #[cfg(feature = "sanitizer")]
                                if let Some(s) = sanitizer.as_deref_mut() {
                                    let (dim, dir) = RouterState::port_dim_dir(out_port);
                                    s.on_allocate(
                                        now, net, msg_id, node, dim, dir, out_vc, _is_escape,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        #[cfg(feature = "sanitizer")]
        {
            self.sanitizer = sanitizer;
        }
    }

    fn switch_and_traverse(&mut self, now: u64) {
        #[cfg(feature = "sanitizer")]
        let mut sanitizer = self.sanitizer.take();
        let Simulation {
            net,
            faults,
            algo,
            routers,
            messages,
            collector,
            config,
            in_flight,
            dropped,
            arrivals,
            credit_returns,
            inject_set,
            busy_set,
            live_input_vcs,
            stage_scratch,
            ..
        } = self;
        let v = config.virtual_channels;
        arrivals.clear();
        credit_returns.clear();

        busy_set.collect_into(stage_scratch);
        for &idx in stage_scratch.iter() {
            let router = &mut routers[idx];
            let node = router.node;
            let injection_port = router.injection_port();
            let num_inputs = injection_port + 1;

            // ---- local sinks: delivery and absorption (unbounded bandwidth)
            for port in 0..num_inputs {
                for vc in 0..v {
                    let Some(route) = router.inputs[port][vc].route else {
                        continue;
                    };
                    let local = matches!(route.target, RouteTarget::Deliver | RouteTarget::Absorb);
                    if !local || route.ready_at > now {
                        continue;
                    }
                    let Some(flit) = router.inputs[port][vc].buffer.pop_front() else {
                        continue;
                    };
                    router.inputs[port][vc].last_progress = now;
                    if port != injection_port {
                        let (dim, dir) = RouterState::port_dim_dir(port);
                        let upstream = net
                            .neighbor(node, dim, dir.opposite())
                            .expect("flits only arrive over existing channels");
                        credit_returns.push((upstream.index(), port, vc));
                    }
                    let entry = router.local_assembly.entry(flit.msg).or_insert(0);
                    *entry += 1;
                    if !flit.kind.is_tail() {
                        continue;
                    }
                    // Whole message has arrived locally.
                    router.local_assembly.remove(&flit.msg);
                    router.inputs[port][vc].route = None;
                    // Delivery, absorption and drop all release every channel
                    // the worm held, clearing its wait-for state.
                    #[cfg(feature = "sanitizer")]
                    if let Some(s) = sanitizer.as_deref_mut() {
                        s.on_release(flit.msg);
                    }
                    match route.target {
                        RouteTarget::Deliver => {
                            // Fold-on-retire: fold the metrics into the
                            // collector, then reclaim the table slot.
                            let mut msg = messages.remove(flit.msg);
                            msg.note_delivered(now);
                            collector.on_delivered(
                                msg.generated_at,
                                msg.first_injected_at.unwrap_or(msg.generated_at),
                                now,
                                msg.length,
                                msg.header.hops,
                                msg.measured,
                            );
                            *in_flight -= 1;
                        }
                        RouteTarget::Absorb => {
                            collector.on_absorbed(messages[flit.msg].measured);
                            let blocked = algo
                                .deterministic_output(net, &messages[flit.msg].header, node)
                                .unwrap_or((0, Direction::Plus));
                            let rerouted = algo.reroute_on_fault(
                                net,
                                faults,
                                &mut messages[flit.msg].header,
                                node,
                                blocked,
                            );
                            if rerouted {
                                messages[flit.msg].phase = MessagePhase::Queued;
                                router.reinjection_queue.push_back(ReinjectionEntry {
                                    msg: flit.msg,
                                    ready_at: now + config.reinjection_delay as u64,
                                });
                                collector
                                    .on_reinjection_queue_depth(router.reinjection_queue.len());
                                inject_set.insert(idx);
                            } else {
                                let mut msg = messages.remove(flit.msg);
                                msg.note_dropped();
                                *dropped += 1;
                                *in_flight -= 1;
                            }
                        }
                        RouteTarget::Network { .. } => unreachable!("local sink"),
                    }
                    if router.inputs[port][vc].is_idle() {
                        live_input_vcs[idx] -= 1;
                        if live_input_vcs[idx] == 0 {
                            busy_set.remove(idx);
                        }
                    }
                }
            }

            // ---- network output ports: one flit per physical channel per cycle
            let total_slots = num_inputs * v;
            for out_port in 0..router.num_net_ports() {
                let start = router.sa_pointer[out_port];
                let mut winner: Option<usize> = None;
                for offset in 0..total_slots {
                    let flat = (start + offset) % total_slots;
                    let (in_port, in_vc) = (flat / v, flat % v);
                    let Some(route) = router.inputs[in_port][in_vc].route else {
                        continue;
                    };
                    if route.ready_at > now {
                        continue;
                    }
                    let RouteTarget::Network {
                        out_port: op,
                        out_vc,
                    } = route.target
                    else {
                        continue;
                    };
                    if op != out_port || router.inputs[in_port][in_vc].buffer.is_empty() {
                        continue;
                    }
                    if router.outputs[out_port][out_vc].credits == 0 {
                        continue;
                    }
                    winner = Some(flat);
                    break;
                }
                let Some(flat) = winner else {
                    continue;
                };
                let (in_port, in_vc) = (flat / v, flat % v);
                let route = router.inputs[in_port][in_vc]
                    .route
                    .expect("winner has a route");
                let RouteTarget::Network { out_vc, .. } = route.target else {
                    unreachable!()
                };
                let flit = router.inputs[in_port][in_vc]
                    .buffer
                    .pop_front()
                    .expect("winner has a flit");
                router.inputs[in_port][in_vc].last_progress = now;
                router.outputs[out_port][out_vc].credits -= 1;
                if in_port != injection_port {
                    let (dim, dir) = RouterState::port_dim_dir(in_port);
                    let upstream = net
                        .neighbor(node, dim, dir.opposite())
                        .expect("flits only arrive over existing channels");
                    credit_returns.push((upstream.index(), in_port, in_vc));
                }
                let (dim, dir) = RouterState::port_dim_dir(out_port);
                if flit.kind.is_head() {
                    let header = &mut messages[flit.msg].header;
                    algo.note_hop(net, header, node, dim, dir);
                }
                let dest = net
                    .neighbor(node, dim, dir)
                    .expect("routing only targets existing channels");
                arrivals.push((dest.index(), out_port, out_vc, flit));
                if flit.kind.is_tail() {
                    router.inputs[in_port][in_vc].route = None;
                    router.outputs[out_port][out_vc].draining = true;
                    if router.inputs[in_port][in_vc].is_idle() {
                        live_input_vcs[idx] -= 1;
                        if live_input_vcs[idx] == 0 {
                            busy_set.remove(idx);
                        }
                    }
                }
                router.sa_pointer[out_port] = (flat + 1) % total_slots;
            }
        }
        #[cfg(feature = "sanitizer")]
        {
            self.sanitizer = sanitizer;
        }
    }

    fn apply_arrivals(&mut self, now: u64) {
        let Simulation {
            routers,
            arrivals,
            config,
            busy_set,
            live_input_vcs,
            ..
        } = self;
        for (node_idx, in_port, vc, flit) in arrivals.drain(..) {
            let ivc = &mut routers[node_idx].inputs[in_port][vc];
            debug_assert!(
                ivc.buffer.len() < config.buffer_depth,
                "flit arrived at a full buffer (credit accounting violated)"
            );
            if ivc.is_idle() {
                live_input_vcs[node_idx] += 1;
                busy_set.insert(node_idx);
            }
            if ivc.buffer.is_empty() {
                ivc.last_progress = now;
            }
            ivc.buffer.push_back(flit);
        }
    }

    fn apply_credit_returns(&mut self) {
        let Simulation {
            routers,
            credit_returns,
            config,
            ..
        } = self;
        for (node_idx, out_port, vc) in credit_returns.drain(..) {
            let ovc: &mut OutputVc = &mut routers[node_idx].outputs[out_port][vc];
            ovc.credits += 1;
            debug_assert!(
                ovc.credits <= config.buffer_depth,
                "credit counter exceeded the buffer depth"
            );
        }
    }

    /// Safety valve: a head flit that could not obtain an output VC for an
    /// extremely long time is handed to the software layer exactly as if it
    /// had hit a fault. Never triggers with the deadlock-free algorithms in
    /// this repository (asserted by the integration tests).
    ///
    /// Scans wake exactly at the earliest pending stall deadline
    /// (`last_progress + threshold`), so the configured threshold is honored
    /// to the cycle; the legacy [`WATCHDOG_STRIDE`] caps the interval between
    /// scans as a safety net. Deadlines created after a scan (every progress
    /// event refreshes `last_progress`) are at least `now + threshold`, which
    /// the next scheduled scan always precedes or meets, so no expiry can
    /// slip between scans.
    fn stall_watchdog(&mut self, now: u64) {
        let threshold = self.config.stall_absorb_threshold;
        let v = self.config.virtual_channels;
        let Simulation {
            routers,
            forced_absorptions,
            busy_set,
            stage_scratch,
            watchdog_next,
            ..
        } = self;
        let mut next = now + threshold.min(WATCHDOG_STRIDE);
        busy_set.collect_into(stage_scratch);
        for &idx in stage_scratch.iter() {
            let router = &mut routers[idx];
            let num_inputs = router.injection_port() + 1;
            for port in 0..num_inputs {
                for vc in 0..v {
                    let ivc: &mut InputVc = &mut router.inputs[port][vc];
                    if ivc.route.is_some() || ivc.buffer.is_empty() {
                        continue;
                    }
                    let Some(front) = ivc.buffer.front() else {
                        continue;
                    };
                    if !front.kind.is_head() {
                        continue;
                    }
                    let deadline = ivc.last_progress + threshold;
                    if deadline > now {
                        next = next.min(deadline);
                        continue;
                    }
                    ivc.route = Some(VcRoute {
                        msg: front.msg,
                        target: RouteTarget::Absorb,
                        ready_at: now,
                    });
                    *forced_absorptions += 1;
                }
            }
        }
        *watchdog_next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_faults::{random_node_faults, FaultScenario};
    use torus_routing::SwBasedRouting;
    use torus_topology::Network;
    use torus_workloads::TrafficSpec;

    fn quick_config(radix: u16, dims: u32, v: usize, m: u32, rate: f64) -> SimConfig {
        let mut c = SimConfig::paper(radix, dims, v, m, rate);
        c.warmup_messages = 200;
        c.stop = StopCondition::MeasuredMessages(1_500);
        c.max_cycles = 120_000;
        c
    }

    #[test]
    fn fault_free_deterministic_delivers_everything() {
        let config = quick_config(4, 2, 4, 8, 0.01);
        let mut sim =
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        assert!(
            !out.hit_max_cycles,
            "network should not saturate at this load"
        );
        assert_eq!(out.forced_absorptions, 0);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.report.messages_queued, 0, "no faults, no absorptions");
        assert!(out.report.measured_messages >= 1_500);
        // Latency must be at least message length (serialisation) and below
        // an order-of-magnitude bound for this small, lightly loaded network.
        assert!(out.report.mean_latency >= 8.0);
        assert!(
            out.report.mean_latency < 80.0,
            "{}",
            out.report.mean_latency
        );
        // Mean hops should approximate the analytic average distance.
        let avg = sim.network().average_distance();
        assert!((out.report.mean_hops - avg).abs() < 0.6);
    }

    #[test]
    fn fault_free_adaptive_delivers_everything() {
        let config = quick_config(4, 2, 4, 8, 0.01);
        let mut sim = Simulation::new(config, FaultSet::new(), SwBasedRouting::adaptive()).unwrap();
        let out = sim.run();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.report.messages_queued, 0);
        assert_eq!(out.forced_absorptions, 0);
        assert!(out.report.mean_latency >= 8.0);
        assert!(out.report.mean_latency < 80.0);
    }

    #[test]
    fn faulty_network_still_delivers_with_absorptions() {
        let mut config = quick_config(8, 2, 4, 16, 0.004);
        config.stop = StopCondition::MeasuredMessages(1_000);
        let torus = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let faults = random_node_faults(&torus, 5, &mut rng).unwrap();
        let mut sim = Simulation::new(config, faults, SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.forced_absorptions, 0);
        assert!(
            out.report.messages_queued > 0,
            "with 5 faulty nodes some messages must be absorbed"
        );
        assert!(out.report.measured_messages >= 1_000);
    }

    #[test]
    fn adaptive_absorbs_fewer_messages_than_deterministic() {
        let torus = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let faults = random_node_faults(&torus, 5, &mut rng).unwrap();
        let mut config = quick_config(8, 2, 6, 16, 0.004);
        config.stop = StopCondition::MeasuredMessages(1_000);

        let det = Simulation::new(
            config.clone(),
            faults.clone(),
            SwBasedRouting::deterministic(),
        )
        .unwrap()
        .run();
        let ada = Simulation::new(config, faults, SwBasedRouting::adaptive())
            .unwrap()
            .run();
        assert!(det.report.messages_queued > 0);
        assert!(
            ada.report.messages_queued < det.report.messages_queued,
            "adaptive ({}) should absorb fewer messages than deterministic ({})",
            ada.report.messages_queued,
            det.report.messages_queued
        );
    }

    #[test]
    fn same_seed_reproduces_identical_results() {
        let config = quick_config(4, 2, 4, 8, 0.01);
        let run = |seed: u64| {
            let mut c = config.clone();
            c.seed = seed;
            Simulation::new(c, FaultSet::new(), SwBasedRouting::adaptive())
                .unwrap()
                .run()
                .report
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b);
        let c = run(12);
        assert_ne!(a.mean_latency, c.mean_latency);
    }

    #[test]
    fn message_table_is_reclaimed() {
        // A long fixed-cycle run delivers thousands of messages; with the
        // reclaiming slab the peak table occupancy must track the in-flight
        // population, not the delivered total.
        let mut config = quick_config(4, 2, 4, 8, 0.02);
        config.stop = StopCondition::Cycles(60_000);
        config.max_cycles = 60_000;
        let mut sim =
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        assert!(
            out.report.generated_messages > 5_000,
            "generated {}",
            out.report.generated_messages
        );
        assert!(
            out.message_table_peak < out.report.generated_messages / 10,
            "peak {} should be far below the generated total {}",
            out.message_table_peak,
            out.report.generated_messages
        );
        assert_eq!(out.message_table_peak, sim.message_table_peak() as u64);
        assert!(sim.message_table_capacity() <= sim.message_table_peak());
        assert_eq!(sim.message_table_live() as u64, sim.in_flight());
        assert_eq!(sim.live_messages().count(), sim.message_table_live());
    }

    #[test]
    fn region_fault_scenario_runs() {
        let torus = AnyTopology::torus(8, 2).unwrap();
        let scenario = FaultScenario::centered_region(
            torus.grid().unwrap(),
            torus_faults::RegionShape::paper_u_8(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let faults = scenario.realize(&torus, &mut rng).unwrap();
        let mut config = quick_config(8, 2, 4, 16, 0.003);
        config.stop = StopCondition::MeasuredMessages(600);
        let mut sim = Simulation::new(config, faults, SwBasedRouting::adaptive()).unwrap();
        let out = sim.run();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
        assert!(out.report.mean_latency > 0.0);
    }

    #[test]
    fn saturated_network_hits_cycle_cap_gracefully() {
        // An absurdly high injection rate saturates the network; the run must
        // terminate at max_cycles and still produce a coherent report.
        let mut config = quick_config(4, 2, 4, 8, 0.9);
        config.max_cycles = 3_000;
        config.stop = StopCondition::MeasuredMessages(u64::MAX);
        let mut sim =
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        assert!(out.hit_max_cycles);
        assert!(out.report.delivered_messages > 0);
        assert!(out.report.generated_messages > out.report.delivered_messages);
    }

    #[test]
    fn higher_load_increases_latency() {
        let low = {
            let mut sim = Simulation::new(
                quick_config(4, 2, 4, 8, 0.005),
                FaultSet::new(),
                SwBasedRouting::deterministic(),
            )
            .unwrap();
            sim.run().report.mean_latency
        };
        let high = {
            let mut sim = Simulation::new(
                quick_config(4, 2, 4, 8, 0.06),
                FaultSet::new(),
                SwBasedRouting::deterministic(),
            )
            .unwrap();
            sim.run().report.mean_latency
        };
        assert!(
            high > low,
            "latency at high load ({high}) must exceed latency at low load ({low})"
        );
    }

    #[test]
    fn longer_messages_have_higher_latency() {
        let short = {
            let mut sim = Simulation::new(
                quick_config(4, 2, 4, 8, 0.01),
                FaultSet::new(),
                SwBasedRouting::deterministic(),
            )
            .unwrap();
            sim.run().report.mean_latency
        };
        let long = {
            let mut sim = Simulation::new(
                quick_config(4, 2, 4, 32, 0.01),
                FaultSet::new(),
                SwBasedRouting::deterministic(),
            )
            .unwrap();
            sim.run().report.mean_latency
        };
        assert!(long > short + 15.0, "long={long} short={short}");
    }

    #[test]
    fn router_delay_increases_latency() {
        let run = |td: u32| {
            let mut config = quick_config(4, 2, 4, 8, 0.005);
            config.router_delay = td;
            config.stop = StopCondition::MeasuredMessages(600);
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic())
                .unwrap()
                .run()
                .report
                .mean_latency
        };
        let fast = run(0);
        let slow = run(3);
        // Each hop pays the extra decision time, so the gap should be at least
        // a couple of cycles per average hop.
        assert!(
            slow > fast + 3.0,
            "Td=3 latency ({slow}) should clearly exceed Td=0 latency ({fast})"
        );
    }

    #[test]
    fn reinjection_delay_penalises_absorbed_messages_only() {
        let torus = Network::torus(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let faults = random_node_faults(&torus, 5, &mut rng).unwrap();
        let run = |delta: u32, faults: FaultSet| {
            let mut config = quick_config(8, 2, 4, 16, 0.003);
            config.reinjection_delay = delta;
            config.stop = StopCondition::MeasuredMessages(800);
            Simulation::new(config, faults, SwBasedRouting::deterministic())
                .unwrap()
                .run()
                .report
        };
        // Without faults the knob has no effect at all.
        let clean_zero = run(0, FaultSet::new());
        let clean_big = run(500, FaultSet::new());
        assert_eq!(clean_zero.mean_latency, clean_big.mean_latency);
        // With faults a large delta visibly increases mean latency.
        let faulty_zero = run(0, faults.clone());
        let faulty_big = run(500, faults);
        assert!(faulty_zero.messages_queued > 0);
        assert!(
            faulty_big.mean_latency > faulty_zero.mean_latency,
            "delta=500 latency ({}) should exceed delta=0 latency ({})",
            faulty_big.mean_latency,
            faulty_zero.mean_latency
        );
    }

    #[test]
    fn turn_model_runs_on_meshes_and_is_rejected_on_wrapped_dimensions() {
        use torus_routing::{RoutingTopologyError, TurnModelRouting};
        use torus_topology::TopologySpec;
        // Two VCs (1 escape + 1 adaptive) are enough for the turn model on a
        // mesh — one less than Duato-over-e-cube needs on the torus.
        let mut config = quick_config(8, 2, 2, 16, 0.003);
        config.topology = TopologySpec::mesh(8, 2);
        config.stop = StopCondition::MeasuredMessages(800);
        let mesh = Network::mesh(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let faults = random_node_faults(&mesh, 4, &mut rng).unwrap();
        let mut sim = Simulation::new(config.clone(), faults, TurnModelRouting::adaptive())
            .expect("turn model is valid on meshes");
        let out = sim.run();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
        assert_eq!(out.forced_absorptions, 0);
        assert!(out.report.messages_queued > 0);

        // The same configuration on a torus is rejected with the typed error.
        config.topology = TopologySpec::torus(8, 2);
        let err = Simulation::new(config, FaultSet::new(), TurnModelRouting::adaptive())
            .err()
            .expect("turn model must be rejected on wrapped dimensions");
        assert!(matches!(
            err,
            SimConfigError::UnsupportedRouting {
                error: RoutingTopologyError::WrappedDimension { dim: 0, .. },
                ..
            }
        ));
        // The rendered message names both the topology spec and the routing.
        let msg = format!("{err}");
        assert!(msg.contains("'torus:8x2'"));
        assert!(msg.contains("Negative-First (adaptive)"));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = quick_config(4, 2, 2, 8, 0.01);
        config.virtual_channels = 2;
        assert!(Simulation::new(config, FaultSet::new(), SwBasedRouting::adaptive()).is_err());
    }

    #[test]
    fn zero_length_workload_is_rejected() {
        let config = quick_config(4, 2, 4, 0, 0.01);
        assert_eq!(
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic()).err(),
            Some(SimConfigError::ZeroMessageLength)
        );
    }

    #[test]
    fn three_dimensional_network_runs() {
        let mut config = quick_config(4, 3, 4, 8, 0.004);
        config.stop = StopCondition::MeasuredMessages(800);
        let torus = Network::torus(4, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let faults = random_node_faults(&torus, 3, &mut rng).unwrap();
        let mut sim = Simulation::new(config, faults, SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        assert!(!out.hit_max_cycles);
        assert_eq!(out.dropped_messages, 0);
        assert!(out.report.messages_queued > 0);
    }

    #[test]
    fn traffic_spec_rates_are_respected() {
        let spec = TrafficSpec::paper(0.02, 8);
        assert!((spec.rate - 0.02).abs() < 1e-12);
        let mut config = quick_config(4, 2, 4, 8, 0.02);
        config.stop = StopCondition::Cycles(20_000);
        let mut sim =
            Simulation::new(config, FaultSet::new(), SwBasedRouting::deterministic()).unwrap();
        let out = sim.run();
        let offered_rate =
            out.report.generated_messages as f64 / (20_000.0 * sim.network().num_nodes() as f64);
        assert!(
            (offered_rate - 0.02).abs() < 0.004,
            "offered {offered_rate}"
        );
    }
}
