//! Property-based tests for the mixed-radix network topology (torus, mesh,
//! hypercube and arbitrary mixed shapes).

use proptest::prelude::*;
use torus_topology::{dimension_order_path, Direction, HealthyGraph, Network};

/// An arbitrary uniform-radix torus (every dimension wraps).
fn arb_torus() -> impl Strategy<Value = Network> {
    (2u16..10, 1u32..4).prop_map(|(k, n)| Network::torus(k, n).unwrap())
}

/// An arbitrary network: mixed radices (2..10) and independent per-dimension
/// wrap flags, 1..=3 dimensions — covers tori, meshes, hypercubes and mixed
/// shapes in one strategy.
fn arb_network() -> impl Strategy<Value = Network> {
    (
        1usize..=3,
        (2u16..10, 2u16..10, 2u16..10),
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|(n, (k0, k1, k2), (w0, w1, w2))| {
            let radices = [k0, k1, k2][..n].to_vec();
            let wraps = [w0, w1, w2][..n].to_vec();
            Network::new(radices, wraps).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coord_roundtrip_holds(net in arb_network(), raw in 0u32..10_000) {
        let node = torus_topology::NodeId(raw % net.num_nodes() as u32);
        let c = net.coord(node);
        prop_assert_eq!(net.node(&c).unwrap(), node);
        for (dim, &d) in c.digits().iter().enumerate() {
            prop_assert!(d < net.radix(dim));
        }
    }

    #[test]
    fn neighbor_inverse(net in arb_network(), raw in 0u32..10_000, dim_raw in 0usize..4, plus in any::<bool>()) {
        let node = torus_topology::NodeId(raw % net.num_nodes() as u32);
        let dim = dim_raw % net.dims();
        let dir = if plus { Direction::Plus } else { Direction::Minus };
        match net.neighbor(node, dim, dir) {
            Some(nb) => {
                prop_assert_eq!(net.neighbor(nb, dim, dir.opposite()), Some(node));
                // A hop changes exactly one coordinate (unless k == 2 where +/-
                // coincide but the digit still changes).
                let a = net.coord(node);
                let b = net.coord(nb);
                prop_assert_eq!(a.differing_dims(&b).len(), 1);
                prop_assert!(net.has_channel(node, dim, dir));
            }
            None => {
                // Missing neighbours only happen at the outward edge of an
                // open dimension.
                prop_assert!(!net.wraps(dim));
                prop_assert!(!net.has_channel(node, dim, dir));
                let pos = net.position(node, dim);
                match dir {
                    Direction::Plus => prop_assert_eq!(pos, net.radix(dim) - 1),
                    Direction::Minus => prop_assert_eq!(pos, 0),
                }
            }
        }
    }

    #[test]
    fn distance_is_metric(net in arb_network(), ra in 0u32..10_000, rb in 0u32..10_000, rc in 0u32..10_000) {
        let n = net.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        let c = torus_topology::NodeId(rc % n);
        prop_assert_eq!(net.distance(a, a), 0);
        prop_assert_eq!(net.distance(a, b), net.distance(b, a));
        prop_assert!(net.distance(a, c) <= net.distance(a, b) + net.distance(b, c));
    }

    #[test]
    fn ecube_path_minimal(net in arb_network(), ra in 0u32..10_000, rb in 0u32..10_000) {
        let n = net.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        let p = dimension_order_path(&net, a, b);
        prop_assert!(p.is_well_formed(&net));
        prop_assert_eq!(p.len() as u32, net.distance(a, b));
        // dimension indices along the path never decrease
        let dims: Vec<usize> = p.hops.iter().map(|h| h.dim).collect();
        prop_assert!(dims.windows(2).all(|w| w[0] <= w[1]));
        // no hop of a minimal path crosses an open dimension's edge
        prop_assert!(p.hops.iter().all(|h| net.has_channel(h.from, h.dim, h.dir)));
    }

    #[test]
    fn offsets_bounded_by_half_radix_on_rings(t in arb_torus(), ra in 0u32..10_000, rb in 0u32..10_000) {
        let n = t.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        for (dim, off) in t.offsets(a, b).into_iter().enumerate() {
            prop_assert!(off.unsigned_abs() <= (t.radix(dim) as u32) / 2);
        }
    }

    #[test]
    fn mesh_offsets_are_plain_differences(net in arb_network(), ra in 0u32..10_000, rb in 0u32..10_000) {
        let n = net.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        for dim in 0..net.dims() {
            if !net.wraps(dim) {
                let expected =
                    net.position(b, dim) as i32 - net.position(a, dim) as i32;
                prop_assert_eq!(net.offset(a, b, dim), expected);
            }
        }
    }

    #[test]
    fn channel_id_dense_and_bijective_on_tori(t in arb_torus()) {
        let mut seen = vec![false; t.channel_slots()];
        for ch in t.channels() {
            let id = t.channel_id(ch);
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
            prop_assert_eq!(t.channel_from_id(id), ch);
        }
        // On a torus every slot is a real channel.
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn channel_id_injective_on_any_network(net in arb_network()) {
        let mut seen = vec![false; net.channel_slots()];
        let mut count = 0usize;
        for ch in net.channels() {
            let id = net.channel_id(ch);
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
            prop_assert_eq!(net.channel_from_id(id), ch);
            // Every enumerated channel exists and has a destination.
            prop_assert!(net.channel_dest(ch).is_some());
            count += 1;
        }
        prop_assert_eq!(count, net.num_channels());
    }

    #[test]
    fn fault_free_graph_connected(net in arb_network()) {
        let f = |_n: torus_topology::NodeId| false;
        let g = HealthyGraph::new(&net, &f);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn datelines_only_on_wrapped_dimensions(net in arb_network()) {
        for ch in net.channels() {
            if net.is_wraparound(ch) {
                prop_assert!(net.wraps(ch.dim));
            }
        }
        if !net.any_wrap() {
            prop_assert!(net.channels().all(|ch| !net.is_wraparound(ch)));
        }
    }
}
