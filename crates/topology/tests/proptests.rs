//! Property-based tests for the torus topology.

use proptest::prelude::*;
use torus_topology::{dimension_order_path, Direction, HealthyGraph, Torus};

fn arb_torus() -> impl Strategy<Value = Torus> {
    (2u16..10, 1u32..4).prop_map(|(k, n)| Torus::new(k, n).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coord_roundtrip_holds(t in arb_torus(), raw in 0u32..10_000) {
        let node = torus_topology::NodeId(raw % t.num_nodes() as u32);
        let c = t.coord(node);
        prop_assert_eq!(t.node(&c).unwrap(), node);
        prop_assert!(c.digits().iter().all(|&d| d < t.radix()));
    }

    #[test]
    fn neighbor_inverse(t in arb_torus(), raw in 0u32..10_000, dim_raw in 0usize..4, plus in any::<bool>()) {
        let node = torus_topology::NodeId(raw % t.num_nodes() as u32);
        let dim = dim_raw % t.dims();
        let dir = if plus { Direction::Plus } else { Direction::Minus };
        let nb = t.neighbor(node, dim, dir);
        prop_assert_eq!(t.neighbor(nb, dim, dir.opposite()), node);
        // A hop changes exactly one coordinate (unless k == 2 where +/- coincide but the digit still changes).
        let a = t.coord(node);
        let b = t.coord(nb);
        prop_assert_eq!(a.differing_dims(&b).len(), 1);
    }

    #[test]
    fn distance_is_metric(t in arb_torus(), ra in 0u32..10_000, rb in 0u32..10_000, rc in 0u32..10_000) {
        let n = t.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        let c = torus_topology::NodeId(rc % n);
        prop_assert_eq!(t.distance(a, a), 0);
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    #[test]
    fn ecube_path_minimal(t in arb_torus(), ra in 0u32..10_000, rb in 0u32..10_000) {
        let n = t.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        let p = dimension_order_path(&t, a, b);
        prop_assert!(p.is_well_formed(&t));
        prop_assert_eq!(p.len() as u32, t.distance(a, b));
        // dimension indices along the path never decrease
        let dims: Vec<usize> = p.hops.iter().map(|h| h.dim).collect();
        prop_assert!(dims.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn offsets_bounded_by_half_radix(t in arb_torus(), ra in 0u32..10_000, rb in 0u32..10_000) {
        let n = t.num_nodes() as u32;
        let a = torus_topology::NodeId(ra % n);
        let b = torus_topology::NodeId(rb % n);
        for off in t.offsets(a, b) {
            prop_assert!(off.unsigned_abs() <= (t.radix() as u32) / 2);
        }
    }

    #[test]
    fn channel_id_dense_and_bijective(t in arb_torus()) {
        let mut seen = vec![false; t.num_channels()];
        for ch in t.channels() {
            let id = t.channel_id(ch);
            prop_assert!(!seen[id.index()]);
            seen[id.index()] = true;
            prop_assert_eq!(t.channel_from_id(id), ch);
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn fault_free_graph_connected(t in arb_torus()) {
        let f = |_n: torus_topology::NodeId| false;
        let g = HealthyGraph::new(&t, &f);
        prop_assert!(g.is_connected());
    }
}
