//! Node identifiers and mixed-radix coordinates.
//!
//! Every node of a k-ary n-cube carries an n-digit radix-k address
//! `{a_{n-1}, ..., a_0}`. Internally we number nodes with a dense integer
//! [`NodeId`] in mixed-radix order (digit 0 is the least significant), which
//! makes table lookups in the simulator O(1) array indexing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier, `0 <= id < k^n`.
///
/// `NodeId` is a thin newtype over `u32`; a k-ary n-cube with more than
/// 2^32 nodes is far beyond anything the simulator targets (the paper uses at
/// most 16^2 = 256 and 8^3 = 512 nodes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Mixed-radix coordinate of a node: one digit per dimension, each in `0..k`.
///
/// Digit `i` is the position of the node along dimension `i`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    digits: Vec<u16>,
}

impl Coord {
    /// Creates a coordinate from its digits (dimension 0 first).
    pub fn new(digits: Vec<u16>) -> Self {
        Coord { digits }
    }

    /// Creates the all-zero coordinate with `n` dimensions.
    pub fn zero(n: usize) -> Self {
        Coord { digits: vec![0; n] }
    }

    /// The per-dimension digits (dimension 0 first).
    #[inline]
    pub fn digits(&self) -> &[u16] {
        &self.digits
    }

    /// Mutable access to the digits.
    #[inline]
    pub fn digits_mut(&mut self) -> &mut [u16] {
        &mut self.digits
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.digits.len()
    }

    /// Position along dimension `dim`.
    #[inline]
    pub fn get(&self, dim: usize) -> u16 {
        self.digits[dim]
    }

    /// Sets the position along dimension `dim`.
    #[inline]
    pub fn set(&mut self, dim: usize, value: u16) {
        self.digits[dim] = value;
    }

    /// Returns a copy with dimension `dim` replaced by `value`.
    pub fn with(&self, dim: usize, value: u16) -> Self {
        let mut c = self.clone();
        c.set(dim, value);
        c
    }

    /// True if `self` and `other` differ only in dimension `dim` (or not at all).
    pub fn differs_only_in(&self, other: &Coord, dim: usize) -> bool {
        self.digits
            .iter()
            .zip(other.digits.iter())
            .enumerate()
            .all(|(d, (a, b))| d == dim || a == b)
    }

    /// Set of dimensions in which the two coordinates differ.
    pub fn differing_dims(&self, other: &Coord) -> Vec<usize> {
        self.digits
            .iter()
            .zip(other.digits.iter())
            .enumerate()
            .filter_map(|(d, (a, b))| (a != b).then_some(d))
            .collect()
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<u16>> for Coord {
    fn from(digits: Vec<u16>) -> Self {
        Coord::new(digits)
    }
}

impl From<&[u16]> for Coord {
    fn from(digits: &[u16]) -> Self {
        Coord::new(digits.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn coord_basics() {
        let mut c = Coord::zero(3);
        assert_eq!(c.dims(), 3);
        assert_eq!(c.digits(), &[0, 0, 0]);
        c.set(1, 5);
        assert_eq!(c.get(1), 5);
        let d = c.with(2, 7);
        assert_eq!(d.digits(), &[0, 5, 7]);
        assert_eq!(c.digits(), &[0, 5, 0]);
    }

    #[test]
    fn coord_differs_only_in() {
        let a = Coord::new(vec![1, 2, 3]);
        let b = Coord::new(vec![1, 9, 3]);
        assert!(a.differs_only_in(&b, 1));
        assert!(!a.differs_only_in(&b, 0));
        assert!(a.differs_only_in(&a, 0));
        assert_eq!(a.differing_dims(&b), vec![1]);
        assert!(a.differing_dims(&a).is_empty());
    }

    #[test]
    fn coord_display() {
        let a = Coord::new(vec![3, 4]);
        assert_eq!(format!("{a}"), "(3,4)");
    }
}
