//! The mixed-radix multidimensional network topology.
//!
//! A [`Network`] is an n-dimensional grid with a per-dimension radix vector
//! and a per-dimension *wrap* flag: dimension `d` has `k_d` nodes along it and
//! is either a ring (wrap-around link between positions `k_d - 1` and `0`) or
//! an open line. This one type covers every topology family the study uses:
//!
//! * [`Network::torus`] — the classical k-ary n-cube (all dimensions wrap);
//! * [`Network::mesh`] — the k-ary n-mesh (no dimension wraps; edge nodes have
//!   fewer neighbours);
//! * [`Network::hypercube`] — the binary n-cube (radix-2 mesh);
//! * [`Network::new`] — arbitrary mixed-radix shapes such as an `8x8x4`
//!   network with a wrapped plane and an open third dimension.

use crate::channel::{ChannelId, DirectedChannel, Direction};
use crate::coords::{Coord, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or querying a [`Network`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum NetworkError {
    /// A per-dimension radix must be at least 2 (k = 1 is a degenerate
    /// single-node line; the wormhole channel model additionally prefers
    /// k >= 3 for distinct plus/minus neighbours, but k = 2 is accepted and
    /// handled).
    RadixTooSmall { dim: usize, radix: u16 },
    /// Dimensionality must be at least 1.
    DimensionTooSmall(u32),
    /// The network's node count would overflow the node-id space.
    TooManyNodes,
    /// The radix and wrap vectors have different lengths.
    MismatchedWraps { radices: usize, wraps: usize },
    /// A supplied coordinate digit lies outside `0..k_dim`.
    DigitOutOfRange { dim: usize, digit: u16, radix: u16 },
    /// A coordinate has the wrong number of dimensions.
    WrongDimensionality { expected: usize, got: usize },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::RadixTooSmall { dim, radix } => {
                write!(
                    f,
                    "radix k={radix} in dimension {dim} is too small (need k >= 2)"
                )
            }
            NetworkError::DimensionTooSmall(n) => {
                write!(f, "dimensionality n={n} is too small (need n >= 1)")
            }
            NetworkError::TooManyNodes => {
                write!(f, "node count exceeds the supported node-id space")
            }
            NetworkError::MismatchedWraps { radices, wraps } => write!(
                f,
                "{radices} radices but {wraps} wrap flags (one flag per dimension)"
            ),
            NetworkError::DigitOutOfRange { dim, digit, radix } => {
                write!(
                    f,
                    "digit {digit} in dimension {dim} out of range 0..{radix}"
                )
            }
            NetworkError::WrongDimensionality { expected, got } => {
                write!(f, "coordinate has {got} dimensions, expected {expected}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A mixed-radix multidimensional direct network.
///
/// The topology owns no per-node state; it is a pure description of the
/// address space and channel structure, cheap to clone around. Dimension `d`
/// has `radices[d]` positions and wraps around iff `wraps[d]` is true.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    radices: Vec<u16>,
    wraps: Vec<bool>,
    num_nodes: u32,
    /// `strides[d] = k_0 * ... * k_{d-1}`, used for mixed-radix conversion.
    strides: Vec<u32>,
}

impl Network {
    /// Creates a network from per-dimension radices and wrap flags.
    ///
    /// # Errors
    /// Returns an error if any radix is below 2, the two vectors differ in
    /// length, the dimensionality is 0 or the node count overflows the
    /// node-id space.
    pub fn new(radices: Vec<u16>, wraps: Vec<bool>) -> Result<Self, NetworkError> {
        if radices.len() != wraps.len() {
            return Err(NetworkError::MismatchedWraps {
                radices: radices.len(),
                wraps: wraps.len(),
            });
        }
        if radices.is_empty() {
            return Err(NetworkError::DimensionTooSmall(0));
        }
        for (dim, &k) in radices.iter().enumerate() {
            if k < 2 {
                return Err(NetworkError::RadixTooSmall { dim, radix: k });
            }
        }
        let mut strides = Vec::with_capacity(radices.len());
        let mut acc: u64 = 1;
        for &k in &radices {
            strides.push(acc as u32);
            acc = acc
                .checked_mul(k as u64)
                .ok_or(NetworkError::TooManyNodes)?;
            if acc > u32::MAX as u64 {
                return Err(NetworkError::TooManyNodes);
            }
        }
        Ok(Network {
            radices,
            wraps,
            num_nodes: acc as u32,
            strides,
        })
    }

    /// Creates a k-ary n-cube (uniform radix, every dimension wraps).
    pub fn torus(k: u16, n: u32) -> Result<Self, NetworkError> {
        if n < 1 {
            return Err(NetworkError::DimensionTooSmall(n));
        }
        Network::new(vec![k; n as usize], vec![true; n as usize])
    }

    /// Creates a k-ary n-mesh (uniform radix, no dimension wraps).
    pub fn mesh(k: u16, n: u32) -> Result<Self, NetworkError> {
        if n < 1 {
            return Err(NetworkError::DimensionTooSmall(n));
        }
        Network::new(vec![k; n as usize], vec![false; n as usize])
    }

    /// Creates a binary n-cube (hypercube): radix 2 in every dimension,
    /// no wrap-around (each node has exactly one neighbour per dimension).
    pub fn hypercube(n: u32) -> Result<Self, NetworkError> {
        Network::mesh(2, n)
    }

    /// Radix (number of nodes) along dimension `dim`.
    #[inline]
    pub fn radix(&self, dim: usize) -> u16 {
        self.radices[dim]
    }

    /// The per-dimension radix vector.
    #[inline]
    pub fn radices(&self) -> &[u16] {
        &self.radices
    }

    /// True if dimension `dim` wraps around (is a ring rather than a line).
    #[inline]
    pub fn wraps(&self, dim: usize) -> bool {
        self.wraps[dim]
    }

    /// The per-dimension wrap flags.
    #[inline]
    pub fn wrap_flags(&self) -> &[bool] {
        &self.wraps
    }

    /// True if at least one dimension wraps (the network embeds a ring and
    /// therefore needs dateline virtual-channel classes for deadlock-free
    /// deterministic routing).
    pub fn any_wrap(&self) -> bool {
        self.wraps.iter().any(|&w| w)
    }

    /// Dimensionality of the network.
    #[inline]
    pub fn dims(&self) -> usize {
        self.radices.len()
    }

    /// Total number of nodes, `k_0 * ... * k_{n-1}`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of unidirectional network channels that physically exist.
    ///
    /// A wrapped dimension contributes `2 * N` channels; an open dimension
    /// contributes `2 * N * (k - 1) / k` (edge nodes are missing the outward
    /// channel).
    pub fn num_channels(&self) -> usize {
        let n = self.num_nodes();
        (0..self.dims())
            .map(|d| {
                if self.wraps[d] {
                    2 * n
                } else {
                    2 * (n / self.radices[d] as usize) * (self.radices[d] as usize - 1)
                }
            })
            .sum()
    }

    /// Size of the dense channel-id space, `N * 2n`.
    ///
    /// [`Network::channel_id`] stays a dense per-node encoding even when some
    /// channels do not exist (mesh edges): simulator tables index by slot, and
    /// the slots of missing channels are simply never used. On a torus every
    /// slot is a real channel, so `channel_slots() == num_channels()`.
    #[inline]
    pub fn channel_slots(&self) -> usize {
        self.num_nodes() * 2 * self.dims()
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Iterator over all *existing* unidirectional channels (skips the
    /// missing outward channels of mesh edge nodes).
    pub fn channels(&self) -> impl Iterator<Item = DirectedChannel> + '_ {
        self.nodes().flat_map(move |node| {
            (0..self.dims()).flat_map(move |dim| {
                Direction::BOTH
                    .into_iter()
                    .filter(move |&dir| self.has_channel(node, dim, dir))
                    .map(move |dir| DirectedChannel::new(node, dim, dir))
            })
        })
    }

    /// Converts a node identifier to its mixed-radix coordinate.
    pub fn coord(&self, node: NodeId) -> Coord {
        debug_assert!(node.0 < self.num_nodes, "node id out of range");
        let mut digits = Vec::with_capacity(self.dims());
        let mut rest = node.0;
        for &k in &self.radices {
            digits.push((rest % k as u32) as u16);
            rest /= k as u32;
        }
        Coord::new(digits)
    }

    /// Converts a coordinate to its node identifier.
    ///
    /// # Errors
    /// Returns an error if the coordinate has the wrong dimensionality or a
    /// digit out of range.
    pub fn node(&self, coord: &Coord) -> Result<NodeId, NetworkError> {
        if coord.dims() != self.dims() {
            return Err(NetworkError::WrongDimensionality {
                expected: self.dims(),
                got: coord.dims(),
            });
        }
        let mut id = 0u32;
        for (dim, &digit) in coord.digits().iter().enumerate() {
            if digit >= self.radices[dim] {
                return Err(NetworkError::DigitOutOfRange {
                    dim,
                    digit,
                    radix: self.radices[dim],
                });
            }
            id += digit as u32 * self.strides[dim];
        }
        Ok(NodeId(id))
    }

    /// Convenience constructor of a node id from raw digits.
    pub fn node_from_digits(&self, digits: &[u16]) -> Result<NodeId, NetworkError> {
        self.node(&Coord::new(digits.to_vec()))
    }

    /// Position of `node` along `dim`.
    #[inline]
    pub fn position(&self, node: NodeId, dim: usize) -> u16 {
        ((node.0 / self.strides[dim]) % self.radices[dim] as u32) as u16
    }

    /// True if the outgoing channel of `node` along `dim`/`dir` physically
    /// exists (always true on wrapped dimensions; false at the outward edge of
    /// an open dimension).
    #[inline]
    pub fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        if self.wraps[dim] {
            return true;
        }
        let pos = self.position(node, dim);
        match dir {
            Direction::Plus => pos + 1 < self.radices[dim],
            Direction::Minus => pos > 0,
        }
    }

    /// The neighbour of `node` one hop away along `dim` in direction `dir`,
    /// or `None` when the hop would step off the edge of an open dimension.
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        let pos = self.position(node, dim) as i32;
        let k = self.radices[dim] as i32;
        let stepped = pos + dir.sign();
        let next = if self.wraps[dim] {
            stepped.rem_euclid(k)
        } else if (0..k).contains(&stepped) {
            stepped
        } else {
            return None;
        } as u32;
        let base = node.0 - (pos as u32) * self.strides[dim];
        Some(NodeId(base + next * self.strides[dim]))
    }

    /// All existing neighbours of a node together with the channel used to
    /// reach them (`2n` on a torus, fewer at mesh edges).
    pub fn neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.dims());
        for dim in 0..self.dims() {
            for dir in Direction::BOTH {
                if let Some(next) = self.neighbor(node, dim, dir) {
                    out.push((DirectedChannel::new(node, dim, dir), next));
                }
            }
        }
        out
    }

    /// The node a channel leads to (`None` if the channel does not exist).
    #[inline]
    pub fn channel_dest(&self, ch: DirectedChannel) -> Option<NodeId> {
        self.neighbor(ch.from, ch.dim, ch.dir)
    }

    /// Dense identifier of a channel slot: `node * 2n + dim * 2 + dir`.
    #[inline]
    pub fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        let per_node = 2 * self.dims() as u32;
        ChannelId(ch.from.0 * per_node + (ch.dim as u32) * 2 + ch.dir.index() as u32)
    }

    /// Inverse of [`Network::channel_id`].
    pub fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        let per_node = 2 * self.dims() as u32;
        let node = NodeId(id.0 / per_node);
        let rest = id.0 % per_node;
        let dim = (rest / 2) as usize;
        let dir = Direction::from_index((rest % 2) as usize);
        DirectedChannel::new(node, dim, dir)
    }

    /// Minimal signed offset from `src` to `dest` along dimension `dim`.
    ///
    /// On a wrapped dimension the returned value lies in `[-(k/2), k/2]`; when
    /// the two directions are equidistant (even `k`, offset exactly `k/2`) the
    /// positive direction is chosen, matching the deterministic tie-break used
    /// by e-cube routing. On an open dimension the offset is simply the signed
    /// position difference (there is no wrap-around shortcut).
    pub fn offset(&self, src: NodeId, dest: NodeId, dim: usize) -> i32 {
        let a = self.position(src, dim) as i32;
        let b = self.position(dest, dim) as i32;
        if !self.wraps[dim] {
            return b - a;
        }
        let k = self.radices[dim] as i32;
        let mut d = (b - a).rem_euclid(k); // 0..k, going Plus
        if d > k / 2 {
            // going Minus is strictly shorter (on a tie d == k/2 with even k we
            // keep the positive direction, the deterministic e-cube tie-break)
            d -= k;
        }
        d
    }

    /// Per-dimension minimal offsets from `src` to `dest`.
    pub fn offsets(&self, src: NodeId, dest: NodeId) -> Vec<i32> {
        (0..self.dims())
            .map(|d| self.offset(src, dest, d))
            .collect()
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        self.offsets(src, dest)
            .iter()
            .map(|o| o.unsigned_abs())
            .sum()
    }

    /// Distance along dimension `dim` when travelling in a fixed direction,
    /// or `None` when `to` is unreachable that way (open dimension, wrong
    /// side). On rings the result is always `Some` and lies in `0..k`.
    pub fn directed_line_distance(
        &self,
        dim: usize,
        from: u16,
        to: u16,
        dir: Direction,
    ) -> Option<u16> {
        let k = self.radices[dim] as i32;
        let d = match dir {
            Direction::Plus => to as i32 - from as i32,
            Direction::Minus => from as i32 - to as i32,
        };
        if self.wraps[dim] {
            Some(d.rem_euclid(k) as u16)
        } else if d >= 0 {
            Some(d as u16)
        } else {
            None
        }
    }

    /// Whether travelling one hop from position `from` in direction `dir`
    /// crosses the dateline of the ring in dimension `dim`.
    ///
    /// The dateline is placed on the wrap-around link: Plus crosses it when
    /// moving from `k-1` to `0`, Minus when moving from `0` to `k-1`. Open
    /// dimensions have no wrap-around link and therefore no dateline.
    #[inline]
    pub fn crosses_dateline(&self, dim: usize, from: u16, dir: Direction) -> bool {
        if !self.wraps[dim] {
            return false;
        }
        match dir {
            Direction::Plus => from == self.radices[dim] - 1,
            Direction::Minus => from == 0,
        }
    }

    /// Whether a hop over `ch` is the wrap-around link of its ring (always
    /// false on open dimensions).
    pub fn is_wraparound(&self, ch: DirectedChannel) -> bool {
        self.crosses_dateline(ch.dim, self.position(ch.from, ch.dim), ch.dir)
    }

    /// Average minimal hop distance over all ordered pairs of distinct nodes.
    ///
    /// Computed exactly per dimension: a wrapped dimension contributes the
    /// mean ring distance, an open one the mean line distance.
    pub fn average_distance(&self) -> f64 {
        let mut total = 0.0f64;
        for d in 0..self.dims() {
            let k = self.radices[d] as i64;
            let per_dim_mean = if self.wraps[d] {
                // Mean over a uniformly random position difference delta.
                let mut per_dim_total = 0i64;
                for delta in 0..k {
                    per_dim_total += delta.min(k - delta);
                }
                per_dim_total as f64 / k as f64
            } else {
                // Mean |i - j| over all ordered position pairs.
                let mut pair_total = 0i64;
                for i in 0..k {
                    for j in 0..k {
                        pair_total += (i - j).abs();
                    }
                }
                pair_total as f64 / (k * k) as f64
            };
            total += per_dim_mean;
        }
        total * self.num_nodes() as f64 / (self.num_nodes() as f64 - 1.0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (d, (&k, &w)) in self.radices.iter().zip(self.wraps.iter()).enumerate() {
            if d > 0 {
                write!(f, "x")?;
            }
            write!(f, "{k}{}", if w { "" } else { "o" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_sizes() {
        let t = Network::torus(8, 2).unwrap();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.num_channels(), 64 * 4);
        assert_eq!(t.channel_slots(), 64 * 4);
        let t = Network::torus(8, 3).unwrap();
        assert_eq!(t.num_nodes(), 512);
        assert_eq!(t.num_channels(), 512 * 6);
        let t = Network::torus(16, 2).unwrap();
        assert_eq!(t.num_nodes(), 256);
    }

    #[test]
    fn mesh_sizes_and_channels() {
        let m = Network::mesh(4, 2).unwrap();
        assert_eq!(m.num_nodes(), 16);
        // each dimension: 2 * 4 lines * 3 links = 24 channels
        assert_eq!(m.num_channels(), 48);
        assert_eq!(m.channel_slots(), 64);
        assert_eq!(m.channels().count(), m.num_channels());
        assert!(!m.any_wrap());
    }

    #[test]
    fn hypercube_is_a_radix2_mesh() {
        let h = Network::hypercube(4).unwrap();
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.dims(), 4);
        // every node has exactly n neighbours
        for node in h.nodes() {
            assert_eq!(h.neighbors(node).len(), 4);
        }
        assert_eq!(h.num_channels(), 16 * 4);
    }

    #[test]
    fn mixed_radix_construction() {
        let n = Network::new(vec![8, 8, 4], vec![true, true, false]).unwrap();
        assert_eq!(n.num_nodes(), 256);
        assert_eq!(n.radix(2), 4);
        assert!(n.wraps(0) && !n.wraps(2));
        assert!(n.any_wrap());
        assert_eq!(format!("{n}"), "8x8x4o");
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Network::torus(1, 2).unwrap_err(),
            NetworkError::RadixTooSmall { dim: 0, radix: 1 }
        );
        assert_eq!(
            Network::torus(4, 0).unwrap_err(),
            NetworkError::DimensionTooSmall(0)
        );
        assert_eq!(
            Network::torus(u16::MAX, 4).unwrap_err(),
            NetworkError::TooManyNodes
        );
        assert_eq!(
            Network::new(vec![4, 4], vec![true]).unwrap_err(),
            NetworkError::MismatchedWraps {
                radices: 2,
                wraps: 1
            }
        );
        assert_eq!(
            Network::new(vec![], vec![]).unwrap_err(),
            NetworkError::DimensionTooSmall(0)
        );
    }

    #[test]
    fn coord_roundtrip() {
        for net in [
            Network::torus(5, 3).unwrap(),
            Network::mesh(5, 3).unwrap(),
            Network::new(vec![3, 5, 2], vec![true, false, true]).unwrap(),
        ] {
            for node in net.nodes() {
                let c = net.coord(node);
                assert_eq!(net.node(&c).unwrap(), node);
            }
        }
    }

    #[test]
    fn coord_errors() {
        let t = Network::torus(4, 2).unwrap();
        assert!(matches!(
            t.node(&Coord::new(vec![1, 2, 3])),
            Err(NetworkError::WrongDimensionality { .. })
        ));
        assert!(matches!(
            t.node(&Coord::new(vec![4, 0])),
            Err(NetworkError::DigitOutOfRange { .. })
        ));
    }

    #[test]
    fn neighbors_wrap_correctly() {
        let t = Network::torus(8, 2).unwrap();
        let origin = t.node_from_digits(&[0, 0]).unwrap();
        assert_eq!(
            t.coord(t.neighbor(origin, 0, Direction::Plus).unwrap())
                .digits(),
            &[1, 0]
        );
        assert_eq!(
            t.coord(t.neighbor(origin, 0, Direction::Minus).unwrap())
                .digits(),
            &[7, 0]
        );
        assert_eq!(
            t.coord(t.neighbor(origin, 1, Direction::Minus).unwrap())
                .digits(),
            &[0, 7]
        );
        let corner = t.node_from_digits(&[7, 7]).unwrap();
        assert_eq!(
            t.coord(t.neighbor(corner, 1, Direction::Plus).unwrap())
                .digits(),
            &[7, 0]
        );
    }

    #[test]
    fn mesh_edges_have_no_outward_neighbor() {
        let m = Network::mesh(4, 2).unwrap();
        let corner = m.node_from_digits(&[0, 0]).unwrap();
        assert_eq!(m.neighbor(corner, 0, Direction::Minus), None);
        assert_eq!(m.neighbor(corner, 1, Direction::Minus), None);
        assert!(!m.has_channel(corner, 0, Direction::Minus));
        assert!(m.has_channel(corner, 0, Direction::Plus));
        assert_eq!(m.neighbors(corner).len(), 2);
        let far = m.node_from_digits(&[3, 3]).unwrap();
        assert_eq!(
            far,
            m.neighbor(m.node_from_digits(&[3, 2]).unwrap(), 1, Direction::Plus)
                .unwrap()
        );
        assert_eq!(m.neighbor(far, 0, Direction::Plus), None);
        let inner = m.node_from_digits(&[1, 2]).unwrap();
        assert_eq!(m.neighbors(inner).len(), 4);
    }

    #[test]
    fn neighbor_is_involutive() {
        for net in [
            Network::torus(6, 3).unwrap(),
            Network::mesh(4, 3).unwrap(),
            Network::new(vec![6, 3], vec![true, false]).unwrap(),
        ] {
            for node in net.nodes() {
                for dim in 0..net.dims() {
                    for dir in Direction::BOTH {
                        if let Some(nb) = net.neighbor(node, dim, dir) {
                            assert_eq!(net.neighbor(nb, dim, dir.opposite()), Some(node));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degree_is_2n_on_tori() {
        let t = Network::torus(4, 3).unwrap();
        for node in t.nodes().take(16) {
            assert_eq!(t.neighbors(node).len(), 6);
        }
    }

    #[test]
    fn channel_id_roundtrip() {
        for net in [Network::torus(8, 3).unwrap(), Network::mesh(4, 2).unwrap()] {
            for ch in net.channels() {
                let id = net.channel_id(ch);
                assert_eq!(net.channel_from_id(id), ch);
                assert!(id.index() < net.channel_slots());
            }
        }
    }

    #[test]
    fn offsets_and_distance() {
        let t = Network::torus(8, 2).unwrap();
        let a = t.node_from_digits(&[1, 1]).unwrap();
        let b = t.node_from_digits(&[6, 2]).unwrap();
        // 1 -> 6 going minus is 3 hops (1 -> 0 -> 7 -> 6), going plus is 5.
        assert_eq!(t.offset(a, b, 0), -3);
        assert_eq!(t.offset(a, b, 1), 1);
        assert_eq!(t.distance(a, b), 4);
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn mesh_offsets_have_no_wrap_shortcut() {
        let m = Network::mesh(8, 2).unwrap();
        let a = m.node_from_digits(&[1, 1]).unwrap();
        let b = m.node_from_digits(&[6, 2]).unwrap();
        assert_eq!(m.offset(a, b, 0), 5);
        assert_eq!(m.offset(b, a, 0), -5);
        assert_eq!(m.distance(a, b), 6);
    }

    #[test]
    fn offset_tie_break_is_positive() {
        let t = Network::torus(8, 1).unwrap();
        let a = t.node_from_digits(&[0]).unwrap();
        let b = t.node_from_digits(&[4]).unwrap();
        assert_eq!(t.offset(a, b, 0), 4);
        assert_eq!(t.offset(b, a, 0), 4);
    }

    #[test]
    fn directed_line_distance_matches_direction() {
        let t = Network::torus(8, 1).unwrap();
        assert_eq!(t.directed_line_distance(0, 1, 6, Direction::Plus), Some(5));
        assert_eq!(t.directed_line_distance(0, 1, 6, Direction::Minus), Some(3));
        assert_eq!(t.directed_line_distance(0, 3, 3, Direction::Plus), Some(0));
        let m = Network::mesh(8, 1).unwrap();
        assert_eq!(m.directed_line_distance(0, 1, 6, Direction::Plus), Some(5));
        assert_eq!(m.directed_line_distance(0, 1, 6, Direction::Minus), None);
        assert_eq!(m.directed_line_distance(0, 6, 1, Direction::Minus), Some(5));
    }

    #[test]
    fn dateline_crossings() {
        let t = Network::torus(8, 2).unwrap();
        assert!(t.crosses_dateline(0, 7, Direction::Plus));
        assert!(!t.crosses_dateline(0, 6, Direction::Plus));
        assert!(t.crosses_dateline(1, 0, Direction::Minus));
        assert!(!t.crosses_dateline(1, 1, Direction::Minus));
        let wrap = DirectedChannel::new(t.node_from_digits(&[7, 3]).unwrap(), 0, Direction::Plus);
        assert!(t.is_wraparound(wrap));
        let normal = DirectedChannel::new(t.node_from_digits(&[3, 3]).unwrap(), 0, Direction::Plus);
        assert!(!t.is_wraparound(normal));
        // Meshes have no datelines at all.
        let m = Network::mesh(8, 2).unwrap();
        assert!(!m.crosses_dateline(0, 7, Direction::Plus));
        assert!(!m.crosses_dateline(0, 0, Direction::Minus));
    }

    #[test]
    fn average_distance_matches_formula_even_k() {
        let t = Network::torus(8, 2).unwrap();
        // n*k/4 = 4, corrected for excluding self-pairs by factor N/(N-1)
        let expected = 4.0 * 64.0 / 63.0;
        assert!((t.average_distance() - expected).abs() < 1e-9);
        // Mesh: per-dim mean |i-j| = (k^2-1)/(3k) = 63/24 = 2.625
        let m = Network::mesh(8, 2).unwrap();
        let expected = 2.0 * 2.625 * 64.0 / 63.0;
        assert!((m.average_distance() - expected).abs() < 1e-9);
        // The mesh mean distance exceeds the torus mean distance.
        assert!(m.average_distance() > t.average_distance());
    }
}
