//! Path construction helpers.
//!
//! The deterministic baseline of the paper is dimension-order (e-cube)
//! routing: a message nullifies its offset in dimension 0, then dimension 1,
//! and so on. [`dimension_order_path`] materialises that path as a list of
//! channels, which is used by the topology tests, the channel-dependency-graph
//! analysis and the software re-routing layer when it pre-computes detours.

use crate::channel::{DirectedChannel, Direction};
use crate::coords::NodeId;
use crate::torus::Torus;

/// A hop-by-hop path through the torus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Node the path starts at.
    pub src: NodeId,
    /// Node the path ends at.
    pub dest: NodeId,
    /// Channels traversed, in order.
    pub hops: Vec<DirectedChannel>,
}

impl Path {
    /// Number of hops in the path.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the trivial path from a node to itself.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The sequence of nodes visited, including `src` and `dest`.
    pub fn nodes(&self, torus: &Torus) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.hops.len() + 1);
        nodes.push(self.src);
        for hop in &self.hops {
            nodes.push(torus.channel_dest(*hop));
        }
        nodes
    }

    /// Verifies that consecutive hops are adjacent and end at `dest`.
    pub fn is_well_formed(&self, torus: &Torus) -> bool {
        let mut cur = self.src;
        for hop in &self.hops {
            if hop.from != cur {
                return false;
            }
            cur = torus.channel_dest(*hop);
        }
        cur == self.dest
    }
}

/// Builds the dimension-order (e-cube) minimal path from `src` to `dest`,
/// resolving each dimension in increasing order.
pub fn dimension_order_path(torus: &Torus, src: NodeId, dest: NodeId) -> Path {
    let mut hops = Vec::new();
    let mut cur = src;
    for dim in 0..torus.dims() {
        loop {
            let off = torus.offset(cur, dest, dim);
            let Some(dir) = Direction::from_offset(off) else {
                break;
            };
            let ch = DirectedChannel::new(cur, dim, dir);
            cur = torus.channel_dest(ch);
            hops.push(ch);
        }
    }
    Path { src, dest, hops }
}

/// Number of hops of a minimal path between two nodes (equals
/// [`Torus::distance`]; provided for readability at call sites that think in
/// terms of paths).
pub fn hop_count(torus: &Torus, src: NodeId, dest: NodeId) -> u32 {
    torus.distance(src, dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecube_path_is_minimal_and_well_formed() {
        let t = Torus::new(8, 2).unwrap();
        let src = t.node_from_digits(&[1, 1]).unwrap();
        let dest = t.node_from_digits(&[6, 3]).unwrap();
        let p = dimension_order_path(&t, src, dest);
        assert!(p.is_well_formed(&t));
        assert_eq!(p.len() as u32, t.distance(src, dest));
        assert_eq!(p.len(), 5);
        // dimension order: all dim-0 hops precede dim-1 hops
        let first_dim1 = p.hops.iter().position(|h| h.dim == 1).unwrap();
        assert!(p.hops[..first_dim1].iter().all(|h| h.dim == 0));
        assert!(p.hops[first_dim1..].iter().all(|h| h.dim == 1));
    }

    #[test]
    fn trivial_path() {
        let t = Torus::new(4, 3).unwrap();
        let a = t.node_from_digits(&[2, 1, 3]).unwrap();
        let p = dimension_order_path(&t, a, a);
        assert!(p.is_empty());
        assert!(p.is_well_formed(&t));
        assert_eq!(p.nodes(&t), vec![a]);
    }

    #[test]
    fn path_uses_wraparound_when_shorter() {
        let t = Torus::new(8, 1).unwrap();
        let a = t.node_from_digits(&[1]).unwrap();
        let b = t.node_from_digits(&[6]).unwrap();
        let p = dimension_order_path(&t, a, b);
        assert_eq!(p.len(), 3);
        assert!(p.hops.iter().all(|h| h.dir == Direction::Minus));
        assert!(p.hops.iter().any(|h| t.is_wraparound(*h)));
    }

    #[test]
    fn all_pairs_paths_are_minimal_small_torus() {
        let t = Torus::new(4, 3).unwrap();
        for src in t.nodes() {
            for dest in t.nodes() {
                let p = dimension_order_path(&t, src, dest);
                assert!(p.is_well_formed(&t));
                assert_eq!(p.len() as u32, hop_count(&t, src, dest));
            }
        }
    }
}
