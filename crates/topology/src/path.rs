//! Path construction helpers.
//!
//! The deterministic baseline of the paper is dimension-order (e-cube)
//! routing: a message nullifies its offset in dimension 0, then dimension 1,
//! and so on. [`dimension_order_path`] materialises that path as a list of
//! channels, which is used by the topology tests, the channel-dependency-graph
//! analysis and the software re-routing layer when it pre-computes detours.

use crate::channel::{DirectedChannel, Direction};
use crate::coords::NodeId;
use crate::network::Network;
use crate::topo::Topology;

/// A hop-by-hop path through the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Node the path starts at.
    pub src: NodeId,
    /// Node the path ends at.
    pub dest: NodeId,
    /// Channels traversed, in order.
    pub hops: Vec<DirectedChannel>,
}

impl Path {
    /// Number of hops in the path.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the trivial path from a node to itself.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The sequence of nodes visited, including `src` and `dest`.
    ///
    /// # Panics
    /// Panics if the path contains a channel that does not exist in `net`
    /// (use [`Path::is_well_formed`] to check first).
    pub fn nodes<T: Topology + ?Sized>(&self, net: &T) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.hops.len() + 1);
        nodes.push(self.src);
        for hop in &self.hops {
            nodes.push(
                net.channel_dest(*hop)
                    .expect("path hop over a non-existent channel"),
            );
        }
        nodes
    }

    /// Verifies that every hop exists, consecutive hops are adjacent and the
    /// path ends at `dest`.
    pub fn is_well_formed<T: Topology + ?Sized>(&self, net: &T) -> bool {
        let mut cur = self.src;
        for hop in &self.hops {
            if hop.from != cur {
                return false;
            }
            match net.channel_dest(*hop) {
                Some(next) => cur = next,
                None => return false,
            }
        }
        cur == self.dest
    }
}

/// Builds the dimension-order (e-cube) minimal path from `src` to `dest`,
/// resolving each dimension in increasing order.
pub fn dimension_order_path(net: &Network, src: NodeId, dest: NodeId) -> Path {
    let mut hops = Vec::new();
    let mut cur = src;
    for dim in 0..net.dims() {
        loop {
            let off = net.offset(cur, dest, dim);
            let Some(dir) = Direction::from_offset(off) else {
                break;
            };
            let ch = DirectedChannel::new(cur, dim, dir);
            cur = net
                .channel_dest(ch)
                .expect("minimal hop always stays inside the network");
            hops.push(ch);
        }
    }
    Path { src, dest, hops }
}

/// Number of hops of a minimal path between two nodes (equals
/// [`Network::distance`]; provided for readability at call sites that think
/// in terms of paths).
pub fn hop_count(net: &Network, src: NodeId, dest: NodeId) -> u32 {
    net.distance(src, dest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecube_path_is_minimal_and_well_formed() {
        let t = Network::torus(8, 2).unwrap();
        let src = t.node_from_digits(&[1, 1]).unwrap();
        let dest = t.node_from_digits(&[6, 3]).unwrap();
        let p = dimension_order_path(&t, src, dest);
        assert!(p.is_well_formed(&t));
        assert_eq!(p.len() as u32, t.distance(src, dest));
        assert_eq!(p.len(), 5);
        // dimension order: all dim-0 hops precede dim-1 hops
        let first_dim1 = p.hops.iter().position(|h| h.dim == 1).unwrap();
        assert!(p.hops[..first_dim1].iter().all(|h| h.dim == 0));
        assert!(p.hops[first_dim1..].iter().all(|h| h.dim == 1));
    }

    #[test]
    fn trivial_path() {
        let t = Network::torus(4, 3).unwrap();
        let a = t.node_from_digits(&[2, 1, 3]).unwrap();
        let p = dimension_order_path(&t, a, a);
        assert!(p.is_empty());
        assert!(p.is_well_formed(&t));
        assert_eq!(p.nodes(&t), vec![a]);
    }

    #[test]
    fn path_uses_wraparound_when_shorter() {
        let t = Network::torus(8, 1).unwrap();
        let a = t.node_from_digits(&[1]).unwrap();
        let b = t.node_from_digits(&[6]).unwrap();
        let p = dimension_order_path(&t, a, b);
        assert_eq!(p.len(), 3);
        assert!(p.hops.iter().all(|h| h.dir == Direction::Minus));
        assert!(p.hops.iter().any(|h| t.is_wraparound(*h)));
    }

    #[test]
    fn mesh_path_never_leaves_the_grid() {
        let m = Network::mesh(8, 1).unwrap();
        let a = m.node_from_digits(&[1]).unwrap();
        let b = m.node_from_digits(&[6]).unwrap();
        let p = dimension_order_path(&m, a, b);
        // No wrap shortcut: 5 Plus hops instead of the torus's 3 Minus hops.
        assert_eq!(p.len(), 5);
        assert!(p.hops.iter().all(|h| h.dir == Direction::Plus));
        assert!(p.is_well_formed(&m));
    }

    #[test]
    fn all_pairs_paths_are_minimal_small_networks() {
        for net in [
            Network::torus(4, 3).unwrap(),
            Network::mesh(4, 2).unwrap(),
            Network::hypercube(4).unwrap(),
            Network::new(vec![4, 3], vec![true, false]).unwrap(),
        ] {
            for src in net.nodes() {
                for dest in net.nodes() {
                    let p = dimension_order_path(&net, src, dest);
                    assert!(p.is_well_formed(&net));
                    assert_eq!(p.len() as u32, hop_count(&net, src, dest));
                }
            }
        }
    }

    #[test]
    fn ill_formed_paths_are_rejected() {
        let m = Network::mesh(4, 1).unwrap();
        let edge = m.node_from_digits(&[0]).unwrap();
        // A hop off the open edge is not well-formed.
        let p = Path {
            src: edge,
            dest: m.node_from_digits(&[3]).unwrap(),
            hops: vec![DirectedChannel::new(edge, 0, Direction::Minus)],
        };
        assert!(!p.is_well_formed(&m));
    }
}
