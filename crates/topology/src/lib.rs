//! # torus-topology
//!
//! k-ary n-cube (torus) topology support for the software-based fault-tolerant
//! routing study (Safaei et al., IPDPS 2006).
//!
//! A k-ary n-cube consists of `N = k^n` nodes arranged in an n-dimensional cube
//! with `k` nodes along each dimension. Every node is connected by a pair of
//! unidirectional channels (one in each direction) to its two neighbours in each
//! dimension, so the network is a direct, regular, edge-symmetric torus.
//!
//! This crate provides:
//!
//! * [`Torus`] — the topology itself: node addressing, neighbour arithmetic,
//!   minimal offsets, distances and channel enumeration.
//! * [`Coord`] / [`NodeId`] — mixed-radix node addresses and their conversions.
//! * [`Direction`], [`DirectedChannel`] — identification of unidirectional
//!   physical channels.
//! * [`path`] — dimension-order path construction and hop counting.
//! * [`graph`] — connectivity / shortest-path queries over the healthy subgraph
//!   (used by the fault model and by the software re-routing layer).
//! * [`rings`] — dateline bookkeeping used for deadlock-free virtual-channel
//!   class assignment on torus rings.
//!
//! # Example
//!
//! ```
//! use torus_topology::{Torus, Direction};
//!
//! let t = Torus::new(8, 2).unwrap();          // 8-ary 2-cube: 64 nodes
//! assert_eq!(t.num_nodes(), 64);
//! let origin = t.node_from_digits(&[0, 0]).unwrap();
//! let east = t.neighbor(origin, 0, Direction::Plus);
//! assert_eq!(t.coord(east).digits(), &[1, 0]);
//! // wrap-around
//! let west = t.neighbor(origin, 0, Direction::Minus);
//! assert_eq!(t.coord(west).digits(), &[7, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod coords;
pub mod graph;
pub mod path;
pub mod rings;
pub mod torus;

pub use channel::{ChannelId, DirectedChannel, Direction};
pub use coords::{Coord, NodeId};
pub use graph::{HealthyGraph, NodeFilter};
pub use path::{dimension_order_path, hop_count, Path};
pub use rings::{DatelinePolicy, VcClass};
pub use torus::{Torus, TorusError};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::channel::{ChannelId, DirectedChannel, Direction};
    pub use crate::coords::{Coord, NodeId};
    pub use crate::graph::HealthyGraph;
    pub use crate::path::{dimension_order_path, hop_count};
    pub use crate::rings::{DatelinePolicy, VcClass};
    pub use crate::torus::Torus;
}
