//! # torus-topology
//!
//! Mixed-radix multidimensional network topology support for the
//! software-based fault-tolerant routing study (Safaei et al., IPDPS 2006).
//!
//! The topology contract is the [`Topology`] trait: node ids, endpoint vs
//! switch roles, a dense channel-id space, neighbour arithmetic and distances.
//! Two concrete implementations exist, unified behind the [`AnyTopology`]
//! enum:
//!
//! * [`Network`]: an n-dimensional grid with a per-dimension radix vector and
//!   a per-dimension wrap flag. A k-ary n-cube (torus), a k-ary n-mesh, a
//!   binary hypercube and arbitrary mixed-radix shapes like `8x8x4` are all
//!   instances of the same type, constructible from one code path
//!   ([`Network::torus`] / [`Network::mesh`] / [`Network::hypercube`] /
//!   [`Network::new`]). Every node is connected by a pair of unidirectional
//!   channels (one per direction) to its neighbour in each dimension; on open
//!   (non-wrapping) dimensions the edge nodes simply lack the outward channel.
//!   Every grid node is an endpoint.
//! * [`FatTree`]: a k-ary l-level fat-tree in which compute endpoints sit
//!   below leaf switches and only endpoints inject or absorb traffic; the
//!   switch levels above provide path diversity for up*/down* routing.
//!
//! This crate provides:
//!
//! * [`Topology`] / [`AnyTopology`] — the topology contract and the concrete
//!   dispatch enum used across routing, faults, simulation and verification.
//! * [`Network`] — the grid topology: node addressing, neighbour arithmetic,
//!   minimal offsets, distances and channel enumeration.
//! * [`FatTree`] — the indirect k-ary l-level fat-tree topology.
//! * [`TopologySpec`] — a declarative, serialisable topology description with
//!   a compact string form, used by configurations and CLIs.
//! * [`Coord`] / [`NodeId`] — mixed-radix node addresses and their conversions.
//! * [`Direction`], [`DirectedChannel`] — identification of unidirectional
//!   physical channels.
//! * [`path`] — dimension-order path construction and hop counting.
//! * [`graph`] — connectivity / shortest-path queries over the healthy subgraph
//!   (used by the fault model and by the software re-routing layer).
//! * [`rings`] — dateline bookkeeping used for deadlock-free virtual-channel
//!   class assignment on wrapped dimensions (open dimensions need no dateline
//!   split, which [`DatelinePolicy`] encodes).
//!
//! # Example
//!
//! ```
//! use torus_topology::{Network, Direction};
//!
//! let t = Network::torus(8, 2).unwrap();      // 8-ary 2-cube: 64 nodes
//! assert_eq!(t.num_nodes(), 64);
//! let origin = t.node_from_digits(&[0, 0]).unwrap();
//! let east = t.neighbor(origin, 0, Direction::Plus).unwrap();
//! assert_eq!(t.coord(east).digits(), &[1, 0]);
//! // wrap-around
//! let west = t.neighbor(origin, 0, Direction::Minus).unwrap();
//! assert_eq!(t.coord(west).digits(), &[7, 0]);
//!
//! // the same origin on a mesh has no west neighbour at all
//! let m = Network::mesh(8, 2).unwrap();
//! assert_eq!(m.neighbor(origin, 0, Direction::Minus), None);
//! ```

pub mod channel;
pub mod coords;
pub mod fattree;
pub mod graph;
pub mod network;
pub mod path;
pub mod rings;
pub mod spec;
pub mod topo;

pub use channel::{ChannelId, DirectedChannel, Direction};
pub use coords::{Coord, NodeId};
pub use fattree::{FatTree, FatTreeNode};
pub use graph::{HealthyGraph, NodeFilter};
pub use network::{Network, NetworkError};
pub use path::{dimension_order_path, hop_count, Path};
pub use rings::{DatelinePolicy, VcClass};
pub use spec::TopologySpec;
pub use topo::{AnyTopology, Topology};

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::channel::{ChannelId, DirectedChannel, Direction};
    pub use crate::coords::{Coord, NodeId};
    pub use crate::fattree::{FatTree, FatTreeNode};
    pub use crate::graph::HealthyGraph;
    pub use crate::network::{Network, NetworkError};
    pub use crate::path::{dimension_order_path, hop_count};
    pub use crate::rings::{DatelinePolicy, VcClass};
    pub use crate::spec::TopologySpec;
    pub use crate::topo::{AnyTopology, Topology};
}
