//! Dateline bookkeeping for deadlock-free virtual-channel class assignment.
//!
//! Rings (wrapped dimensions) contain an inherent cyclic channel dependency.
//! The classical remedy (Dally & Seitz) splits the virtual channels of every
//! ring into two classes and places a *dateline* on each ring: a message
//! starts on class 0 (the "high" channels) and switches permanently to class 1
//! (the "low" channels) for the remainder of its travel in that dimension once
//! it crosses the dateline. Because a message can cross the dateline of a
//! ring at most once on a minimal route, the resulting extended
//! channel-dependency graph is acyclic.
//!
//! Open (non-wrapping) dimensions have no wrap-around link, hence no cyclic
//! dependency and no dateline: deterministic routing may use the **whole** VC
//! pool on such a dimension, and a pure mesh needs no dateline split at all
//! (verified explicitly by the CDG acyclicity tests in `torus-routing`).
//!
//! [`DatelinePolicy`] computes which class a message must use on each hop and
//! how a pool of `V` virtual channels is partitioned between the classes (and,
//! for Duato's protocol, how many channels remain available as fully adaptive
//! channels). All partition queries are wrap-aware: they take the dimension of
//! the hop and collapse to a single class on open dimensions.

use crate::channel::Direction;
use crate::network::Network;

use serde::{Deserialize, Serialize};

/// Virtual-channel class required by the dateline scheme on a given hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcClass {
    /// Before crossing the ring's dateline.
    BeforeDateline,
    /// After crossing the ring's dateline.
    AfterDateline,
}

impl VcClass {
    /// Encodes the class as 0 / 1.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VcClass::BeforeDateline => 0,
            VcClass::AfterDateline => 1,
        }
    }
}

/// Assignment of dateline classes and partitioning of virtual channels.
///
/// The policy needs only the topology; datelines are placed uniformly on the
/// wrap-around link of every ring (the hop from position `k-1` to `0` in the
/// Plus direction and from `0` to `k-1` in the Minus direction). Open
/// dimensions carry no dateline.
///
/// The policy borrows the network (it is built on every routing decision in
/// the simulator's hot path, so it must stay allocation-free).
#[derive(Clone, Copy, Debug)]
pub struct DatelinePolicy<'a> {
    net: &'a Network,
}

impl<'a> DatelinePolicy<'a> {
    /// Creates the dateline policy for a network.
    pub fn new(net: &'a Network) -> Self {
        DatelinePolicy { net }
    }

    /// True if at least one dimension wraps (the network needs two dateline
    /// classes somewhere).
    pub fn any_wrap(&self) -> bool {
        self.net.any_wrap()
    }

    /// Class a message must use when routing in a ring it has (`crossed`) or
    /// has not crossed the dateline of.
    #[inline]
    pub fn class_for(&self, crossed: bool) -> VcClass {
        if crossed {
            VcClass::AfterDateline
        } else {
            VcClass::BeforeDateline
        }
    }

    /// Whether a hop in dimension `dim` departing from position `from_pos` in
    /// direction `dir` crosses the dateline. Always false on open dimensions.
    #[inline]
    pub fn hop_crosses(&self, dim: usize, from_pos: u16, dir: Direction) -> bool {
        self.net.crosses_dateline(dim, from_pos, dir)
    }

    /// Number of dateline classes the deterministic / escape layer needs:
    /// 2 when any dimension wraps, 1 on a pure mesh (the dateline VC is
    /// provably unnecessary when no dimension wraps).
    pub fn num_classes(&self) -> usize {
        if self.any_wrap() {
            2
        } else {
            1
        }
    }

    /// Minimum virtual channels per physical channel required for
    /// deterministic (e-cube) routing on this topology.
    pub fn min_deterministic_vcs(&self) -> usize {
        self.num_classes()
    }

    /// Minimum virtual channels per physical channel required for Duato's
    /// protocol on this topology (the escape classes plus at least one
    /// adaptive channel).
    pub fn min_adaptive_vcs(&self) -> usize {
        self.num_classes() + 1
    }

    /// Partitions `v` virtual channels of a physical channel into the two
    /// dateline classes for purely deterministic routing on a *wrapped*
    /// dimension: channels `0 .. v/2` belong to class 0 and `v/2 .. v` to
    /// class 1 (when `v` is odd the extra channel goes to class 0).
    ///
    /// Returns the half-open index ranges `(class0, class1)`.
    pub fn deterministic_partition(
        &self,
        v: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        assert!(
            v >= 2,
            "deterministic routing on a wrapped dimension needs at least 2 virtual channels"
        );
        let split = v.div_ceil(2);
        (0..split, split..v)
    }

    /// Index range of the permitted deterministic VCs for a hop in `dim` with
    /// the given dateline class.
    ///
    /// Wrapped dimensions use the dateline split of
    /// [`DatelinePolicy::deterministic_partition`]; open dimensions have no
    /// dateline and may use the whole VC pool.
    pub fn deterministic_range(
        &self,
        v: usize,
        dim: usize,
        class: VcClass,
    ) -> std::ops::Range<usize> {
        if !self.net.wraps(dim) {
            assert!(
                v >= 1,
                "deterministic routing needs at least 1 virtual channel"
            );
            return 0..v;
        }
        let (c0, c1) = self.deterministic_partition(v);
        match class {
            VcClass::BeforeDateline => c0,
            VcClass::AfterDateline => c1,
        }
    }

    /// Partitions `v` virtual channels for Duato's protocol: the first
    /// [`DatelinePolicy::num_classes`] channels are the escape channels
    /// (dateline classes of the embedded e-cube network) and the rest are
    /// fully adaptive.
    ///
    /// Returns `(escape, adaptive)` index ranges.
    pub fn adaptive_partition(&self, v: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let escapes = self.num_classes();
        assert!(
            v > escapes,
            "Duato's protocol needs at least {} virtual channels ({} escape + 1 adaptive)",
            escapes + 1,
            escapes
        );
        (0..escapes, escapes..v)
    }

    /// Index of the single escape VC for a hop in `dim` with the given class
    /// under Duato's protocol. On open dimensions there is only one escape
    /// class, so the escape VC is always channel 0.
    pub fn escape_vc(&self, dim: usize, class: VcClass) -> usize {
        if self.net.wraps(dim) {
            class.index()
        } else {
            0
        }
    }

    /// Index range of the adaptive VCs under Duato's protocol.
    pub fn adaptive_range(&self, v: usize) -> std::ops::Range<usize> {
        self.adaptive_partition(v).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus(k: u16) -> Network {
        Network::torus(k, 2).unwrap()
    }

    fn mesh(k: u16) -> Network {
        Network::mesh(k, 2).unwrap()
    }

    #[test]
    fn class_tracking() {
        let net = torus(8);
        let p = DatelinePolicy::new(&net);
        assert_eq!(p.class_for(false), VcClass::BeforeDateline);
        assert_eq!(p.class_for(true), VcClass::AfterDateline);
    }

    #[test]
    fn hop_crossing_matches_wraparound() {
        let net = torus(8);
        let p = DatelinePolicy::new(&net);
        assert!(p.hop_crosses(0, 7, Direction::Plus));
        assert!(!p.hop_crosses(0, 3, Direction::Plus));
        assert!(p.hop_crosses(1, 0, Direction::Minus));
        assert!(!p.hop_crosses(1, 5, Direction::Minus));
        // Open dimensions never cross a dateline.
        let net_m = mesh(8);
        let m = DatelinePolicy::new(&net_m);
        assert!(!m.hop_crosses(0, 7, Direction::Plus));
        assert!(!m.hop_crosses(0, 0, Direction::Minus));
    }

    #[test]
    fn deterministic_partition_splits_evenly() {
        let net = torus(8);
        let p = DatelinePolicy::new(&net);
        assert_eq!(p.deterministic_partition(4), (0..2, 2..4));
        assert_eq!(p.deterministic_partition(6), (0..3, 3..6));
        assert_eq!(p.deterministic_partition(10), (0..5, 5..10));
        assert_eq!(p.deterministic_partition(5), (0..3, 3..5));
        assert_eq!(p.deterministic_range(6, 0, VcClass::AfterDateline), 3..6);
    }

    #[test]
    fn mesh_dimensions_use_the_whole_pool() {
        let net_m = mesh(8);
        let m = DatelinePolicy::new(&net_m);
        assert_eq!(m.deterministic_range(4, 0, VcClass::BeforeDateline), 0..4);
        assert_eq!(m.deterministic_range(1, 1, VcClass::BeforeDateline), 0..1);
        assert_eq!(m.num_classes(), 1);
        assert_eq!(m.min_deterministic_vcs(), 1);
        assert_eq!(m.min_adaptive_vcs(), 2);
        // Mixed shape: the open dimension sees the whole pool, the wrapped one
        // the dateline split.
        let mixed_net = Network::new(vec![8, 4], vec![true, false]).unwrap();
        let mixed = DatelinePolicy::new(&mixed_net);
        assert_eq!(mixed.num_classes(), 2);
        assert_eq!(
            mixed.deterministic_range(4, 0, VcClass::AfterDateline),
            2..4
        );
        assert_eq!(
            mixed.deterministic_range(4, 1, VcClass::BeforeDateline),
            0..4
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 virtual channels")]
    fn deterministic_partition_requires_two_vcs() {
        let net = torus(8);
        DatelinePolicy::new(&net).deterministic_partition(1);
    }

    #[test]
    fn adaptive_partition_reserves_escape_channels() {
        let net = torus(8);
        let p = DatelinePolicy::new(&net);
        let (e, a) = p.adaptive_partition(10);
        assert_eq!(e, 0..2);
        assert_eq!(a, 2..10);
        assert_eq!(p.escape_vc(0, VcClass::BeforeDateline), 0);
        assert_eq!(p.escape_vc(0, VcClass::AfterDateline), 1);
        assert_eq!(p.adaptive_range(4), 2..4);
        // Pure mesh: one escape class, larger adaptive pool, escape VC 0.
        let net_m = mesh(8);
        let m = DatelinePolicy::new(&net_m);
        let (e, a) = m.adaptive_partition(4);
        assert_eq!(e, 0..1);
        assert_eq!(a, 1..4);
        assert_eq!(m.escape_vc(1, VcClass::AfterDateline), 0);
        assert_eq!(m.adaptive_range(2), 1..2);
    }

    #[test]
    #[should_panic(expected = "at least 3 virtual channels")]
    fn adaptive_partition_requires_three_vcs_with_wrap() {
        let net = torus(8);
        DatelinePolicy::new(&net).adaptive_partition(2);
    }

    #[test]
    #[should_panic(expected = "at least 2 virtual channels")]
    fn adaptive_partition_requires_two_vcs_on_mesh() {
        let net = mesh(8);
        DatelinePolicy::new(&net).adaptive_partition(1);
    }

    #[test]
    fn classes_are_disjoint_and_cover_all_vcs() {
        let net = torus(16);
        let p = DatelinePolicy::new(&net);
        for v in 2..=12 {
            let (c0, c1) = p.deterministic_partition(v);
            assert_eq!(c0.end, c1.start);
            assert_eq!(c1.end, v);
            assert!(!c0.is_empty());
            assert!(!c1.is_empty() || v < 2);
        }
    }
}
