//! Dateline bookkeeping for deadlock-free virtual-channel class assignment.
//!
//! Torus rings contain an inherent cyclic channel dependency. The classical
//! remedy (Dally & Seitz) splits the virtual channels of every ring into two
//! classes and places a *dateline* on each ring: a message starts on class 0
//! (the "high" channels) and switches permanently to class 1 (the "low"
//! channels) for the remainder of its travel in that dimension once it crosses
//! the dateline. Because a message can cross the dateline of a ring at most
//! once on a minimal route, the resulting extended channel-dependency graph is
//! acyclic.
//!
//! [`DatelinePolicy`] computes which class a message must use on each hop and
//! how a pool of `V` virtual channels is partitioned between the classes (and,
//! for Duato's protocol, how many channels remain available as fully adaptive
//! channels).

use crate::channel::Direction;
use crate::torus::Torus;
use serde::{Deserialize, Serialize};

/// Virtual-channel class required by the dateline scheme on a given hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcClass {
    /// Before crossing the ring's dateline.
    BeforeDateline,
    /// After crossing the ring's dateline.
    AfterDateline,
}

impl VcClass {
    /// Encodes the class as 0 / 1.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VcClass::BeforeDateline => 0,
            VcClass::AfterDateline => 1,
        }
    }
}

/// Assignment of dateline classes and partitioning of virtual channels.
///
/// The policy needs only the topology; datelines are placed uniformly on the
/// wrap-around link of every ring (the hop from position `k-1` to `0` in the
/// Plus direction and from `0` to `k-1` in the Minus direction).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatelinePolicy {
    k: u16,
}

impl DatelinePolicy {
    /// Creates the dateline policy for a torus.
    pub fn new(torus: &Torus) -> Self {
        DatelinePolicy { k: torus.radix() }
    }

    /// Class a message must use when *entering* a ring of this dimension at
    /// position `entry_pos` and travelling in `dir` towards `dest_pos`.
    ///
    /// A message that will not cross the dateline on its remaining journey in
    /// this ring may stay on [`VcClass::BeforeDateline`]; one that has already
    /// crossed it must use [`VcClass::AfterDateline`].
    ///
    /// `crossed` records whether the message has already crossed the dateline
    /// of this ring.
    #[inline]
    pub fn class_for(&self, crossed: bool) -> VcClass {
        if crossed {
            VcClass::AfterDateline
        } else {
            VcClass::BeforeDateline
        }
    }

    /// Whether a hop departing from ring position `from_pos` in direction
    /// `dir` crosses the dateline.
    #[inline]
    pub fn hop_crosses(&self, from_pos: u16, dir: Direction) -> bool {
        match dir {
            Direction::Plus => from_pos == self.k - 1,
            Direction::Minus => from_pos == 0,
        }
    }

    /// Partitions `v` virtual channels of a physical channel into the two
    /// dateline classes for purely deterministic routing: channels
    /// `0 .. v/2` belong to class 0 and `v/2 .. v` to class 1 (when `v` is odd
    /// the extra channel goes to class 0).
    ///
    /// Returns the half-open index ranges `(class0, class1)`.
    pub fn deterministic_partition(
        &self,
        v: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        assert!(
            v >= 2,
            "deterministic torus routing needs at least 2 virtual channels"
        );
        let split = v.div_ceil(2);
        (0..split, split..v)
    }

    /// Partitions `v` virtual channels for Duato's protocol: the first two
    /// channels are the escape channels (dateline classes 0 and 1 of the
    /// embedded e-cube network) and the remaining `v - 2` are fully adaptive.
    ///
    /// Returns `(escape_class0, escape_class1, adaptive)` index ranges.
    pub fn adaptive_partition(
        &self,
        v: usize,
    ) -> (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) {
        assert!(
            v >= 3,
            "Duato's protocol needs at least 3 virtual channels (2 escape + 1 adaptive)"
        );
        (0..1, 1..2, 2..v)
    }

    /// Index range of the permitted deterministic VCs for a given class.
    pub fn deterministic_range(&self, v: usize, class: VcClass) -> std::ops::Range<usize> {
        let (c0, c1) = self.deterministic_partition(v);
        match class {
            VcClass::BeforeDateline => c0,
            VcClass::AfterDateline => c1,
        }
    }

    /// Index of the single escape VC for a given class under Duato's protocol.
    pub fn escape_vc(&self, class: VcClass) -> usize {
        class.index()
    }

    /// Index range of the adaptive VCs under Duato's protocol.
    pub fn adaptive_range(&self, v: usize) -> std::ops::Range<usize> {
        self.adaptive_partition(v).2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(k: u16) -> DatelinePolicy {
        DatelinePolicy::new(&Torus::new(k, 2).unwrap())
    }

    #[test]
    fn class_tracking() {
        let p = policy(8);
        assert_eq!(p.class_for(false), VcClass::BeforeDateline);
        assert_eq!(p.class_for(true), VcClass::AfterDateline);
    }

    #[test]
    fn hop_crossing_matches_wraparound() {
        let p = policy(8);
        assert!(p.hop_crosses(7, Direction::Plus));
        assert!(!p.hop_crosses(3, Direction::Plus));
        assert!(p.hop_crosses(0, Direction::Minus));
        assert!(!p.hop_crosses(5, Direction::Minus));
    }

    #[test]
    fn deterministic_partition_splits_evenly() {
        let p = policy(8);
        assert_eq!(p.deterministic_partition(4), (0..2, 2..4));
        assert_eq!(p.deterministic_partition(6), (0..3, 3..6));
        assert_eq!(p.deterministic_partition(10), (0..5, 5..10));
        assert_eq!(p.deterministic_partition(5), (0..3, 3..5));
        assert_eq!(p.deterministic_range(6, VcClass::AfterDateline), 3..6);
    }

    #[test]
    #[should_panic(expected = "at least 2 virtual channels")]
    fn deterministic_partition_requires_two_vcs() {
        policy(8).deterministic_partition(1);
    }

    #[test]
    fn adaptive_partition_reserves_escape_channels() {
        let p = policy(8);
        let (e0, e1, a) = p.adaptive_partition(10);
        assert_eq!(e0, 0..1);
        assert_eq!(e1, 1..2);
        assert_eq!(a, 2..10);
        assert_eq!(p.escape_vc(VcClass::BeforeDateline), 0);
        assert_eq!(p.escape_vc(VcClass::AfterDateline), 1);
        assert_eq!(p.adaptive_range(4), 2..4);
    }

    #[test]
    #[should_panic(expected = "at least 3 virtual channels")]
    fn adaptive_partition_requires_three_vcs() {
        policy(8).adaptive_partition(2);
    }

    #[test]
    fn classes_are_disjoint_and_cover_all_vcs() {
        let p = policy(16);
        for v in 2..=12 {
            let (c0, c1) = p.deterministic_partition(v);
            assert_eq!(c0.end, c1.start);
            assert_eq!(c1.end, v);
            assert!(!c0.is_empty());
            assert!(!c1.is_empty() || v < 2);
        }
    }
}
