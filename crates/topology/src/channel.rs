//! Identification of unidirectional physical channels.
//!
//! A k-ary n-cube node owns `2n` outgoing network channels: one per dimension
//! and direction. A channel is identified either *locally* (source node,
//! dimension, direction) via [`DirectedChannel`], or *globally* with a dense
//! integer [`ChannelId`] suitable for indexing simulator state tables.

use crate::coords::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of travel along a dimension of the torus.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Increasing coordinate (wrapping from k-1 back to 0).
    Plus,
    /// Decreasing coordinate (wrapping from 0 back to k-1).
    Minus,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Plus => Direction::Minus,
            Direction::Minus => Direction::Plus,
        }
    }

    /// Encodes the direction as 0 (Plus) or 1 (Minus).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::Plus => 0,
            Direction::Minus => 1,
        }
    }

    /// Decodes a direction from its index.
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        if i == 0 {
            Direction::Plus
        } else {
            Direction::Minus
        }
    }

    /// Signed unit step (+1 / -1) represented by this direction.
    #[inline]
    pub fn sign(self) -> i32 {
        match self {
            Direction::Plus => 1,
            Direction::Minus => -1,
        }
    }

    /// The direction whose sign matches `offset` (> 0 ⇒ Plus, < 0 ⇒ Minus).
    ///
    /// Returns `None` for a zero offset.
    #[inline]
    pub fn from_offset(offset: i32) -> Option<Direction> {
        match offset.signum() {
            1 => Some(Direction::Plus),
            -1 => Some(Direction::Minus),
            _ => None,
        }
    }

    /// Both directions, Plus first.
    pub const BOTH: [Direction; 2] = [Direction::Plus, Direction::Minus];
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Plus => write!(f, "+"),
            Direction::Minus => write!(f, "-"),
        }
    }
}

/// A unidirectional physical channel identified by its source node, the
/// dimension it traverses and the direction of travel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DirectedChannel {
    /// Node the channel leaves from.
    pub from: NodeId,
    /// Dimension the channel traverses.
    pub dim: usize,
    /// Direction of travel along `dim`.
    pub dir: Direction,
}

impl DirectedChannel {
    /// Creates a new directed channel descriptor.
    pub fn new(from: NodeId, dim: usize, dir: Direction) -> Self {
        DirectedChannel { from, dim, dir }
    }
}

impl fmt::Display for DirectedChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[d{}{}]", self.from, self.dim, self.dir)
    }
}

/// Dense identifier of a unidirectional physical channel.
///
/// The encoding is `node * 2n + dim * 2 + dir`, so all channels leaving one
/// node are contiguous. Use [`crate::Network::channel_id`] /
/// [`crate::Network::channel_from_id`] for conversions. On open (mesh)
/// dimensions some slots of the dense id space correspond to channels that do
/// not physically exist; they are never enumerated by
/// [`crate::Network::channels`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Returns the identifier as a `usize` suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `ChannelId` from a raw index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ChannelId(i as u32)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposite_and_sign() {
        assert_eq!(Direction::Plus.opposite(), Direction::Minus);
        assert_eq!(Direction::Minus.opposite(), Direction::Plus);
        assert_eq!(Direction::Plus.sign(), 1);
        assert_eq!(Direction::Minus.sign(), -1);
    }

    #[test]
    fn direction_index_roundtrip() {
        for d in Direction::BOTH {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn direction_from_offset() {
        assert_eq!(Direction::from_offset(3), Some(Direction::Plus));
        assert_eq!(Direction::from_offset(-2), Some(Direction::Minus));
        assert_eq!(Direction::from_offset(0), None);
    }

    #[test]
    fn display_forms() {
        let ch = DirectedChannel::new(NodeId(5), 1, Direction::Minus);
        assert_eq!(format!("{ch}"), "5[d1-]");
        assert_eq!(format!("{}", ChannelId(9)), "c9");
    }
}
