//! Declarative, serialisable topology specifications.
//!
//! A [`TopologySpec`] names a network shape without constructing it: the
//! experiment harness and the simulator configuration carry a spec (it is
//! `Clone + Eq + Serialize` and cheap to compare/log) and call
//! [`TopologySpec::build`] when they need the concrete [`Network`].
//!
//! Every spec also round-trips through a compact human-readable string form
//! ([`TopologySpec::to_spec_string`] / [`TopologySpec::parse`]), used by CLI
//! arguments and result tables:
//!
//! | spec                              | string       |
//! |-----------------------------------|--------------|
//! | `TopologySpec::torus(8, 2)`       | `torus:8x2`  |
//! | `TopologySpec::mesh(4, 3)`        | `mesh:4x3`   |
//! | `TopologySpec::hypercube(6)`      | `hypercube:6`|
//! | mixed `8x8 wrapped, 4 open`       | `mixed:8,8,4o` |
//! | `TopologySpec::fat_tree(4, 3)`    | `ft:4,3`     |

use crate::fattree::FatTree;
use crate::network::{Network, NetworkError};
use crate::topo::AnyTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A declarative description of a network topology.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologySpec {
    /// k-ary n-cube: uniform radix, every dimension wraps.
    Torus {
        /// Radix `k` of every dimension.
        radix: u16,
        /// Dimensionality `n`.
        dims: u32,
    },
    /// k-ary n-mesh: uniform radix, no dimension wraps.
    Mesh {
        /// Radix `k` of every dimension.
        radix: u16,
        /// Dimensionality `n`.
        dims: u32,
    },
    /// Binary n-cube (radix-2 mesh).
    Hypercube {
        /// Dimensionality `n`.
        dims: u32,
    },
    /// Arbitrary mixed-radix shape with per-dimension wrap flags.
    Mixed {
        /// Per-dimension radices.
        radices: Vec<u16>,
        /// Per-dimension wrap flags (same length as `radices`).
        wraps: Vec<bool>,
    },
    /// k-ary l-level fat-tree (indirect network).
    FatTree {
        /// Arity `k` (children per switch).
        arity: u16,
        /// Number of switch levels `l`.
        levels: u32,
    },
}

impl TopologySpec {
    /// Spec of a k-ary n-cube.
    pub fn torus(radix: u16, dims: u32) -> Self {
        TopologySpec::Torus { radix, dims }
    }

    /// Spec of a k-ary n-mesh.
    pub fn mesh(radix: u16, dims: u32) -> Self {
        TopologySpec::Mesh { radix, dims }
    }

    /// Spec of a binary n-cube.
    pub fn hypercube(dims: u32) -> Self {
        TopologySpec::Hypercube { dims }
    }

    /// Spec of an arbitrary mixed-radix shape.
    pub fn mixed(radices: Vec<u16>, wraps: Vec<bool>) -> Self {
        TopologySpec::Mixed { radices, wraps }
    }

    /// Spec of a k-ary l-level fat-tree.
    pub fn fat_tree(arity: u16, levels: u32) -> Self {
        TopologySpec::FatTree { arity, levels }
    }

    /// Constructs the concrete topology this spec describes.
    pub fn build(&self) -> Result<AnyTopology, NetworkError> {
        match self {
            TopologySpec::Torus { radix, dims } => {
                Network::torus(*radix, *dims).map(AnyTopology::Grid)
            }
            TopologySpec::Mesh { radix, dims } => {
                Network::mesh(*radix, *dims).map(AnyTopology::Grid)
            }
            TopologySpec::Hypercube { dims } => Network::hypercube(*dims).map(AnyTopology::Grid),
            TopologySpec::Mixed { radices, wraps } => {
                Network::new(radices.clone(), wraps.clone()).map(AnyTopology::Grid)
            }
            TopologySpec::FatTree { arity, levels } => {
                FatTree::new(*arity, *levels).map(AnyTopology::FatTree)
            }
        }
    }

    /// Dimensionality of the described network (for a fat-tree: the arity,
    /// i.e. the per-node port-pair count, matching [`AnyTopology::dims`]).
    pub fn dims(&self) -> usize {
        match self {
            TopologySpec::Torus { dims, .. } | TopologySpec::Mesh { dims, .. } => *dims as usize,
            TopologySpec::Hypercube { dims } => *dims as usize,
            TopologySpec::Mixed { radices, .. } => radices.len(),
            TopologySpec::FatTree { arity, .. } => *arity as usize,
        }
    }

    /// Total number of nodes of the described network (saturating; a valid
    /// spec never saturates because [`TopologySpec::build`] would reject it).
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Torus { radix, dims } | TopologySpec::Mesh { radix, dims } => {
                (*radix as usize).saturating_pow(*dims)
            }
            TopologySpec::Hypercube { dims } => 2usize.saturating_pow(*dims),
            TopologySpec::Mixed { radices, .. } => radices
                .iter()
                .fold(1usize, |acc, &k| acc.saturating_mul(k as usize)),
            TopologySpec::FatTree { arity, levels } => {
                let endpoints = (*arity as usize).saturating_pow(*levels);
                let per_level = endpoints / (*arity).max(1) as usize;
                endpoints.saturating_add((*levels as usize).saturating_mul(per_level))
            }
        }
    }

    /// Number of compute endpoints of the described network (equals
    /// [`TopologySpec::num_nodes`] on direct topologies).
    pub fn num_endpoints(&self) -> usize {
        match self {
            TopologySpec::FatTree { arity, levels } => (*arity as usize).saturating_pow(*levels),
            _ => self.num_nodes(),
        }
    }

    /// Short label used in result tables ("8-ary 2-torus", "4-ary 3-mesh",
    /// "6-hypercube", "mixed 8x8x4o").
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Torus { radix, dims } => format!("{radix}-ary {dims}-torus"),
            TopologySpec::Mesh { radix, dims } => format!("{radix}-ary {dims}-mesh"),
            TopologySpec::Hypercube { dims } => format!("{dims}-hypercube"),
            TopologySpec::Mixed { radices, wraps } => {
                let shape: Vec<String> = radices
                    .iter()
                    .zip(wraps.iter())
                    .map(|(&k, &w)| format!("{k}{}", if w { "" } else { "o" }))
                    .collect();
                format!("mixed {}", shape.join("x"))
            }
            TopologySpec::FatTree { arity, levels } => {
                format!("{arity}-ary {levels}-level fat-tree")
            }
        }
    }

    /// Family name of the topology ("torus" / "mesh" / "hypercube" / "mixed"
    /// / "fat-tree").
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Mesh { .. } => "mesh",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Mixed { .. } => "mixed",
            TopologySpec::FatTree { .. } => "fat-tree",
        }
    }

    /// Renders the spec in its compact machine-readable string form (the
    /// inverse of [`TopologySpec::parse`]).
    pub fn to_spec_string(&self) -> String {
        match self {
            TopologySpec::Torus { radix, dims } => format!("torus:{radix}x{dims}"),
            TopologySpec::Mesh { radix, dims } => format!("mesh:{radix}x{dims}"),
            TopologySpec::Hypercube { dims } => format!("hypercube:{dims}"),
            TopologySpec::Mixed { radices, wraps } => {
                let parts: Vec<String> = radices
                    .iter()
                    .zip(wraps.iter())
                    .map(|(&k, &w)| format!("{k}{}", if w { "" } else { "o" }))
                    .collect();
                format!("mixed:{}", parts.join(","))
            }
            TopologySpec::FatTree { arity, levels } => format!("ft:{arity},{levels}"),
        }
    }

    /// Parses the compact string form produced by
    /// [`TopologySpec::to_spec_string`], plus the CLI-friendly shorthands:
    /// `hc:<dims>` for `hypercube:<dims>`, `ft:<k>,<l>` for a k-ary l-level
    /// fat-tree, and a prefix-less mixed form `8x8x4o` (x-separated
    /// per-dimension radices, `o` marking an open dimension) equivalent to
    /// `mixed:8,8,4o`.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let Some((kind, rest)) = s.split_once(':') else {
            // Prefix-less mixed shorthand: "8x8x4o".
            return Self::parse_mixed_parts(s.split('x'))
                .map_err(|e| format!("topology spec '{s}': {e}"));
        };
        match kind {
            "ft" | "fattree" => {
                let (k, l) = rest
                    .split_once(',')
                    .ok_or_else(|| format!("'{rest}' should look like '<arity>,<levels>'"))?;
                let arity: u16 = k.parse().map_err(|_| format!("bad arity '{k}'"))?;
                let levels: u32 = l.parse().map_err(|_| format!("bad levels '{l}'"))?;
                Ok(TopologySpec::fat_tree(arity, levels))
            }
            "torus" | "mesh" => {
                let (k, n) = rest
                    .split_once('x')
                    .ok_or_else(|| format!("'{rest}' should look like '<radix>x<dims>'"))?;
                let radix: u16 = k.parse().map_err(|_| format!("bad radix '{k}'"))?;
                let dims: u32 = n.parse().map_err(|_| format!("bad dims '{n}'"))?;
                Ok(if kind == "torus" {
                    TopologySpec::torus(radix, dims)
                } else {
                    TopologySpec::mesh(radix, dims)
                })
            }
            "hypercube" | "hc" => {
                let dims: u32 = rest.parse().map_err(|_| format!("bad dims '{rest}'"))?;
                Ok(TopologySpec::hypercube(dims))
            }
            "mixed" => Self::parse_mixed_parts(rest.split(',')),
            other => Err(format!(
                "unknown topology kind '{other}' (use torus|mesh|hypercube|hc|mixed|ft)"
            )),
        }
    }

    /// Parses a sequence of `<radix>[o]` parts into a mixed spec.
    fn parse_mixed_parts<'a, I: Iterator<Item = &'a str>>(parts: I) -> Result<Self, String> {
        let mut radices = Vec::new();
        let mut wraps = Vec::new();
        for part in parts {
            let (digits, open) = match part.strip_suffix('o') {
                Some(d) => (d, true),
                None => (part, false),
            };
            let k: u16 = digits
                .parse()
                .map_err(|_| format!("bad radix '{part}' in mixed spec"))?;
            radices.push(k);
            wraps.push(!open);
        }
        Ok(TopologySpec::mixed(radices, wraps))
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_constructors() {
        assert_eq!(
            TopologySpec::torus(8, 2).build().unwrap(),
            AnyTopology::Grid(Network::torus(8, 2).unwrap())
        );
        assert_eq!(
            TopologySpec::mesh(4, 3).build().unwrap(),
            AnyTopology::Grid(Network::mesh(4, 3).unwrap())
        );
        assert_eq!(
            TopologySpec::hypercube(5).build().unwrap(),
            AnyTopology::Grid(Network::hypercube(5).unwrap())
        );
        let mixed = TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]);
        assert_eq!(
            mixed.build().unwrap(),
            AnyTopology::Grid(Network::new(vec![8, 8, 4], vec![true, true, false]).unwrap())
        );
        assert_eq!(
            TopologySpec::fat_tree(4, 2).build().unwrap(),
            AnyTopology::FatTree(FatTree::new(4, 2).unwrap())
        );
    }

    #[test]
    fn num_nodes_and_dims() {
        assert_eq!(TopologySpec::torus(8, 2).num_nodes(), 64);
        assert_eq!(TopologySpec::mesh(4, 3).num_nodes(), 64);
        assert_eq!(TopologySpec::hypercube(6).num_nodes(), 64);
        assert_eq!(
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]).num_nodes(),
            256
        );
        assert_eq!(TopologySpec::hypercube(6).dims(), 6);
        assert_eq!(TopologySpec::mixed(vec![8, 4], vec![true, false]).dims(), 2);
        // Fat-tree: k^l endpoints plus l * k^(l-1) switches.
        assert_eq!(TopologySpec::fat_tree(4, 3).num_nodes(), 64 + 3 * 16);
        assert_eq!(TopologySpec::fat_tree(4, 3).num_endpoints(), 64);
        assert_eq!(TopologySpec::fat_tree(4, 3).dims(), 4);
        assert_eq!(TopologySpec::hypercube(6).num_endpoints(), 64);
    }

    #[test]
    fn labels_and_kinds() {
        assert_eq!(TopologySpec::torus(8, 2).label(), "8-ary 2-torus");
        assert_eq!(TopologySpec::mesh(4, 3).label(), "4-ary 3-mesh");
        assert_eq!(TopologySpec::hypercube(6).label(), "6-hypercube");
        assert_eq!(
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]).label(),
            "mixed 8x8x4o"
        );
        assert_eq!(TopologySpec::torus(8, 2).kind(), "torus");
        assert_eq!(TopologySpec::hypercube(3).kind(), "hypercube");
        assert_eq!(
            TopologySpec::fat_tree(4, 3).label(),
            "4-ary 3-level fat-tree"
        );
        assert_eq!(TopologySpec::fat_tree(4, 3).kind(), "fat-tree");
    }

    #[test]
    fn spec_string_roundtrip() {
        for spec in [
            TopologySpec::torus(8, 2),
            TopologySpec::mesh(4, 3),
            TopologySpec::hypercube(6),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]),
            TopologySpec::mixed(vec![3, 5], vec![false, true]),
            TopologySpec::fat_tree(4, 3),
            TopologySpec::fat_tree(2, 1),
        ] {
            let s = spec.to_spec_string();
            assert_eq!(TopologySpec::parse(&s).unwrap(), spec, "{s}");
        }
        assert_eq!(
            TopologySpec::parse("mixed:8,8,4o").unwrap(),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false])
        );
    }

    #[test]
    fn parse_cli_shorthands() {
        assert_eq!(
            TopologySpec::parse("hc:6").unwrap(),
            TopologySpec::hypercube(6)
        );
        assert_eq!(
            TopologySpec::parse("ft:4,3").unwrap(),
            TopologySpec::fat_tree(4, 3)
        );
        assert_eq!(
            TopologySpec::parse("fattree:4,2").unwrap(),
            TopologySpec::fat_tree(4, 2)
        );
        assert_eq!(
            TopologySpec::parse("8x8x4o").unwrap(),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false])
        );
        assert_eq!(
            TopologySpec::parse("4ox4o").unwrap(),
            TopologySpec::mixed(vec![4, 4], vec![false, false])
        );
        assert!(TopologySpec::parse("8y2").is_err());
        assert!(TopologySpec::parse("8x").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(TopologySpec::parse("ring:8").is_err());
        assert!(TopologySpec::parse("torus:8").is_err());
        assert!(TopologySpec::parse("torus:ax2").is_err());
        assert!(TopologySpec::parse("hypercube:x").is_err());
        assert!(TopologySpec::parse("mixed:8,q").is_err());
        assert!(TopologySpec::parse("ft:4").is_err());
        assert!(TopologySpec::parse("ft:ax2").is_err());
        assert!(TopologySpec::parse("ft:4,q").is_err());
    }
}
