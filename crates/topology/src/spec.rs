//! Declarative, serialisable topology specifications.
//!
//! A [`TopologySpec`] names a network shape without constructing it: the
//! experiment harness and the simulator configuration carry a spec (it is
//! `Clone + Eq + Serialize` and cheap to compare/log) and call
//! [`TopologySpec::build`] when they need the concrete [`Network`].
//!
//! Every spec also round-trips through a compact human-readable string form
//! ([`TopologySpec::to_spec_string`] / [`TopologySpec::parse`]), used by CLI
//! arguments and result tables:
//!
//! | spec                              | string       |
//! |-----------------------------------|--------------|
//! | `TopologySpec::torus(8, 2)`       | `torus:8x2`  |
//! | `TopologySpec::mesh(4, 3)`        | `mesh:4x3`   |
//! | `TopologySpec::hypercube(6)`      | `hypercube:6`|
//! | mixed `8x8 wrapped, 4 open`       | `mixed:8,8,4o` |

use crate::network::{Network, NetworkError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A declarative description of a network topology.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologySpec {
    /// k-ary n-cube: uniform radix, every dimension wraps.
    Torus {
        /// Radix `k` of every dimension.
        radix: u16,
        /// Dimensionality `n`.
        dims: u32,
    },
    /// k-ary n-mesh: uniform radix, no dimension wraps.
    Mesh {
        /// Radix `k` of every dimension.
        radix: u16,
        /// Dimensionality `n`.
        dims: u32,
    },
    /// Binary n-cube (radix-2 mesh).
    Hypercube {
        /// Dimensionality `n`.
        dims: u32,
    },
    /// Arbitrary mixed-radix shape with per-dimension wrap flags.
    Mixed {
        /// Per-dimension radices.
        radices: Vec<u16>,
        /// Per-dimension wrap flags (same length as `radices`).
        wraps: Vec<bool>,
    },
}

impl TopologySpec {
    /// Spec of a k-ary n-cube.
    pub fn torus(radix: u16, dims: u32) -> Self {
        TopologySpec::Torus { radix, dims }
    }

    /// Spec of a k-ary n-mesh.
    pub fn mesh(radix: u16, dims: u32) -> Self {
        TopologySpec::Mesh { radix, dims }
    }

    /// Spec of a binary n-cube.
    pub fn hypercube(dims: u32) -> Self {
        TopologySpec::Hypercube { dims }
    }

    /// Spec of an arbitrary mixed-radix shape.
    pub fn mixed(radices: Vec<u16>, wraps: Vec<bool>) -> Self {
        TopologySpec::Mixed { radices, wraps }
    }

    /// Constructs the concrete network this spec describes.
    pub fn build(&self) -> Result<Network, NetworkError> {
        match self {
            TopologySpec::Torus { radix, dims } => Network::torus(*radix, *dims),
            TopologySpec::Mesh { radix, dims } => Network::mesh(*radix, *dims),
            TopologySpec::Hypercube { dims } => Network::hypercube(*dims),
            TopologySpec::Mixed { radices, wraps } => Network::new(radices.clone(), wraps.clone()),
        }
    }

    /// Dimensionality of the described network.
    pub fn dims(&self) -> usize {
        match self {
            TopologySpec::Torus { dims, .. } | TopologySpec::Mesh { dims, .. } => *dims as usize,
            TopologySpec::Hypercube { dims } => *dims as usize,
            TopologySpec::Mixed { radices, .. } => radices.len(),
        }
    }

    /// Total number of nodes of the described network (saturating; a valid
    /// spec never saturates because [`TopologySpec::build`] would reject it).
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::Torus { radix, dims } | TopologySpec::Mesh { radix, dims } => {
                (*radix as usize).saturating_pow(*dims)
            }
            TopologySpec::Hypercube { dims } => 2usize.saturating_pow(*dims),
            TopologySpec::Mixed { radices, .. } => radices
                .iter()
                .fold(1usize, |acc, &k| acc.saturating_mul(k as usize)),
        }
    }

    /// Short label used in result tables ("8-ary 2-torus", "4-ary 3-mesh",
    /// "6-hypercube", "mixed 8x8x4o").
    pub fn label(&self) -> String {
        match self {
            TopologySpec::Torus { radix, dims } => format!("{radix}-ary {dims}-torus"),
            TopologySpec::Mesh { radix, dims } => format!("{radix}-ary {dims}-mesh"),
            TopologySpec::Hypercube { dims } => format!("{dims}-hypercube"),
            TopologySpec::Mixed { radices, wraps } => {
                let shape: Vec<String> = radices
                    .iter()
                    .zip(wraps.iter())
                    .map(|(&k, &w)| format!("{k}{}", if w { "" } else { "o" }))
                    .collect();
                format!("mixed {}", shape.join("x"))
            }
        }
    }

    /// Family name of the topology ("torus" / "mesh" / "hypercube" / "mixed").
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Mesh { .. } => "mesh",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Mixed { .. } => "mixed",
        }
    }

    /// Renders the spec in its compact machine-readable string form (the
    /// inverse of [`TopologySpec::parse`]).
    pub fn to_spec_string(&self) -> String {
        match self {
            TopologySpec::Torus { radix, dims } => format!("torus:{radix}x{dims}"),
            TopologySpec::Mesh { radix, dims } => format!("mesh:{radix}x{dims}"),
            TopologySpec::Hypercube { dims } => format!("hypercube:{dims}"),
            TopologySpec::Mixed { radices, wraps } => {
                let parts: Vec<String> = radices
                    .iter()
                    .zip(wraps.iter())
                    .map(|(&k, &w)| format!("{k}{}", if w { "" } else { "o" }))
                    .collect();
                format!("mixed:{}", parts.join(","))
            }
        }
    }

    /// Parses the compact string form produced by
    /// [`TopologySpec::to_spec_string`], plus two CLI-friendly shorthands:
    /// `hc:<dims>` for `hypercube:<dims>`, and a prefix-less mixed form
    /// `8x8x4o` (x-separated per-dimension radices, `o` marking an open
    /// dimension) equivalent to `mixed:8,8,4o`.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed input.
    pub fn parse(s: &str) -> Result<Self, String> {
        let Some((kind, rest)) = s.split_once(':') else {
            // Prefix-less mixed shorthand: "8x8x4o".
            return Self::parse_mixed_parts(s.split('x'))
                .map_err(|e| format!("topology spec '{s}': {e}"));
        };
        match kind {
            "torus" | "mesh" => {
                let (k, n) = rest
                    .split_once('x')
                    .ok_or_else(|| format!("'{rest}' should look like '<radix>x<dims>'"))?;
                let radix: u16 = k.parse().map_err(|_| format!("bad radix '{k}'"))?;
                let dims: u32 = n.parse().map_err(|_| format!("bad dims '{n}'"))?;
                Ok(if kind == "torus" {
                    TopologySpec::torus(radix, dims)
                } else {
                    TopologySpec::mesh(radix, dims)
                })
            }
            "hypercube" | "hc" => {
                let dims: u32 = rest.parse().map_err(|_| format!("bad dims '{rest}'"))?;
                Ok(TopologySpec::hypercube(dims))
            }
            "mixed" => Self::parse_mixed_parts(rest.split(',')),
            other => Err(format!(
                "unknown topology kind '{other}' (use torus|mesh|hypercube|hc|mixed)"
            )),
        }
    }

    /// Parses a sequence of `<radix>[o]` parts into a mixed spec.
    fn parse_mixed_parts<'a, I: Iterator<Item = &'a str>>(parts: I) -> Result<Self, String> {
        let mut radices = Vec::new();
        let mut wraps = Vec::new();
        for part in parts {
            let (digits, open) = match part.strip_suffix('o') {
                Some(d) => (d, true),
                None => (part, false),
            };
            let k: u16 = digits
                .parse()
                .map_err(|_| format!("bad radix '{part}' in mixed spec"))?;
            radices.push(k);
            wraps.push(!open);
        }
        Ok(TopologySpec::mixed(radices, wraps))
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_constructors() {
        assert_eq!(
            TopologySpec::torus(8, 2).build().unwrap(),
            Network::torus(8, 2).unwrap()
        );
        assert_eq!(
            TopologySpec::mesh(4, 3).build().unwrap(),
            Network::mesh(4, 3).unwrap()
        );
        assert_eq!(
            TopologySpec::hypercube(5).build().unwrap(),
            Network::hypercube(5).unwrap()
        );
        let mixed = TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]);
        assert_eq!(
            mixed.build().unwrap(),
            Network::new(vec![8, 8, 4], vec![true, true, false]).unwrap()
        );
    }

    #[test]
    fn num_nodes_and_dims() {
        assert_eq!(TopologySpec::torus(8, 2).num_nodes(), 64);
        assert_eq!(TopologySpec::mesh(4, 3).num_nodes(), 64);
        assert_eq!(TopologySpec::hypercube(6).num_nodes(), 64);
        assert_eq!(
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]).num_nodes(),
            256
        );
        assert_eq!(TopologySpec::hypercube(6).dims(), 6);
        assert_eq!(TopologySpec::mixed(vec![8, 4], vec![true, false]).dims(), 2);
    }

    #[test]
    fn labels_and_kinds() {
        assert_eq!(TopologySpec::torus(8, 2).label(), "8-ary 2-torus");
        assert_eq!(TopologySpec::mesh(4, 3).label(), "4-ary 3-mesh");
        assert_eq!(TopologySpec::hypercube(6).label(), "6-hypercube");
        assert_eq!(
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]).label(),
            "mixed 8x8x4o"
        );
        assert_eq!(TopologySpec::torus(8, 2).kind(), "torus");
        assert_eq!(TopologySpec::hypercube(3).kind(), "hypercube");
    }

    #[test]
    fn spec_string_roundtrip() {
        for spec in [
            TopologySpec::torus(8, 2),
            TopologySpec::mesh(4, 3),
            TopologySpec::hypercube(6),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]),
            TopologySpec::mixed(vec![3, 5], vec![false, true]),
        ] {
            let s = spec.to_spec_string();
            assert_eq!(TopologySpec::parse(&s).unwrap(), spec, "{s}");
        }
        assert_eq!(
            TopologySpec::parse("mixed:8,8,4o").unwrap(),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false])
        );
    }

    #[test]
    fn parse_cli_shorthands() {
        assert_eq!(
            TopologySpec::parse("hc:6").unwrap(),
            TopologySpec::hypercube(6)
        );
        assert_eq!(
            TopologySpec::parse("8x8x4o").unwrap(),
            TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false])
        );
        assert_eq!(
            TopologySpec::parse("4ox4o").unwrap(),
            TopologySpec::mixed(vec![4, 4], vec![false, false])
        );
        assert!(TopologySpec::parse("8y2").is_err());
        assert!(TopologySpec::parse("8x").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(TopologySpec::parse("ring:8").is_err());
        assert!(TopologySpec::parse("torus:8").is_err());
        assert!(TopologySpec::parse("torus:ax2").is_err());
        assert!(TopologySpec::parse("hypercube:x").is_err());
        assert!(TopologySpec::parse("mixed:8,q").is_err());
    }
}
