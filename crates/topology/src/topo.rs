//! The topology contract: the trait every backend implements, and the
//! closed enum the rest of the stack dispatches through.
//!
//! [`Topology`] captures what routing, the fault model, both simulator
//! engines and the verifier need from *any* interconnect: a dense node-id
//! space with endpoints first, per-node `(dim, dir)` port slots with a dense
//! channel-id encoding, neighbour arithmetic, and hop distances. The direct
//! [`Network`] grid and the indirect [`FatTree`] both implement it.
//!
//! [`AnyTopology`] mirrors `AnyRouting` in the routing crate: a
//! zero-allocation closed enum that keeps the simulator engines
//! monomorphised while configuration picks the backend at runtime. Backend
//! specific consumers (e-cube offsets, dateline policies, fault regions)
//! downcast through [`AnyTopology::grid`] / [`AnyTopology::fat_tree`], which
//! construction-time `supported_on` checks guarantee to succeed.

use crate::channel::{ChannelId, DirectedChannel, Direction};
use crate::coords::NodeId;
use crate::fattree::FatTree;
use crate::network::{Network, NetworkError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The contract every topology backend implements.
///
/// The dense channel-id encoding (`node * 2 * dims + dim * 2 + dir`) is part
/// of the contract: simulator tables and the verifier's resource-id space
/// index by channel slot, and both backends keep slots of non-existent
/// channels simply unused (mesh edges, endpoint down-ports).
pub trait Topology {
    /// Total number of nodes (endpoints first, then any switch levels).
    fn num_nodes(&self) -> usize;

    /// Number of compute endpoints; node ids `0..num_endpoints()` are the
    /// endpoints. On a direct network every node is an endpoint.
    fn num_endpoints(&self) -> usize;

    /// Number of `(dim, dir)` port-pair slots per node (the grid's
    /// dimensionality; a fat-tree's arity).
    fn dims(&self) -> usize;

    /// True if the outgoing channel of `node` over `(dim, dir)` exists.
    fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool;

    /// The neighbour over `(dim, dir)`, or `None` when that channel does not
    /// exist. Involutive over existing channels:
    /// `neighbor(neighbor(n, d, dir), d, dir.opposite()) == n`.
    fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId>;

    /// Minimal hop distance between two nodes.
    fn distance(&self, src: NodeId, dest: NodeId) -> u32;

    /// Human-readable node label for witnesses and reports.
    fn node_label(&self, node: NodeId) -> String;

    /// True if `node` is a compute endpoint (may inject and consume traffic).
    fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.num_endpoints()
    }

    /// Size of the dense channel-id space, `num_nodes * 2 * dims`.
    fn channel_slots(&self) -> usize {
        self.num_nodes() * 2 * self.dims()
    }

    /// Dense identifier of a channel slot: `node * 2 * dims + dim * 2 + dir`.
    fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        let per_node = 2 * self.dims() as u32;
        ChannelId(ch.from.0 * per_node + (ch.dim as u32) * 2 + ch.dir.index() as u32)
    }

    /// Inverse of [`Topology::channel_id`].
    fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        let per_node = 2 * self.dims() as u32;
        let node = NodeId(id.0 / per_node);
        let rest = id.0 % per_node;
        let dim = (rest / 2) as usize;
        let dir = Direction::from_index((rest % 2) as usize);
        DirectedChannel::new(node, dim, dir)
    }

    /// The node a channel leads to (`None` if the channel does not exist).
    fn channel_dest(&self, ch: DirectedChannel) -> Option<NodeId> {
        self.neighbor(ch.from, ch.dim, ch.dir)
    }

    /// All existing neighbours of a node with the channel used to reach them.
    fn neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.dims());
        for dim in 0..self.dims() {
            for dir in Direction::BOTH {
                if let Some(next) = self.neighbor(node, dim, dir) {
                    out.push((DirectedChannel::new(node, dim, dir), next));
                }
            }
        }
        out
    }
}

impl Topology for Network {
    fn num_nodes(&self) -> usize {
        Network::num_nodes(self)
    }

    fn num_endpoints(&self) -> usize {
        Network::num_nodes(self)
    }

    fn dims(&self) -> usize {
        Network::dims(self)
    }

    fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        Network::has_channel(self, node, dim, dir)
    }

    fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        Network::neighbor(self, node, dim, dir)
    }

    fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        Network::distance(self, src, dest)
    }

    fn node_label(&self, node: NodeId) -> String {
        format!("{}", self.coord(node))
    }

    fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        Network::channel_id(self, ch)
    }

    fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        Network::channel_from_id(self, id)
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        FatTree::num_nodes(self)
    }

    fn num_endpoints(&self) -> usize {
        FatTree::num_endpoints(self)
    }

    fn dims(&self) -> usize {
        FatTree::dims(self)
    }

    fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        FatTree::has_channel(self, node, dim, dir)
    }

    fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        FatTree::neighbor(self, node, dim, dir)
    }

    fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        FatTree::distance(self, src, dest)
    }

    fn node_label(&self, node: NodeId) -> String {
        FatTree::node_label(self, node)
    }
}

/// Either topology backend behind one dispatchable value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnyTopology {
    /// A direct mixed-radix grid (torus / mesh / hypercube / mixed).
    Grid(Network),
    /// An indirect k-ary l-level fat-tree.
    FatTree(FatTree),
}

macro_rules! topo_delegate {
    ($self:ident, $net:ident => $body:expr) => {
        match $self {
            AnyTopology::Grid($net) => $body,
            AnyTopology::FatTree($net) => $body,
        }
    };
}

impl AnyTopology {
    /// The grid backend, when this is a direct network.
    pub fn grid(&self) -> Option<&Network> {
        match self {
            AnyTopology::Grid(net) => Some(net),
            AnyTopology::FatTree(_) => None,
        }
    }

    /// The fat-tree backend, when this is an indirect network.
    pub fn fat_tree(&self) -> Option<&FatTree> {
        match self {
            AnyTopology::Grid(_) => None,
            AnyTopology::FatTree(ft) => Some(ft),
        }
    }

    /// Total number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        topo_delegate!(self, n => Topology::num_nodes(n))
    }

    /// Number of compute endpoints (ids `0..num_endpoints()`).
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        topo_delegate!(self, n => Topology::num_endpoints(n))
    }

    /// True if `node` may inject and consume traffic.
    #[inline]
    pub fn is_endpoint(&self, node: NodeId) -> bool {
        node.index() < self.num_endpoints()
    }

    /// Number of `(dim, dir)` port-pair slots per node.
    #[inline]
    pub fn dims(&self) -> usize {
        topo_delegate!(self, n => Topology::dims(n))
    }

    /// Size of the dense channel-id space.
    #[inline]
    pub fn channel_slots(&self) -> usize {
        self.num_nodes() * 2 * self.dims()
    }

    /// Number of unidirectional channels that physically exist.
    pub fn num_channels(&self) -> usize {
        match self {
            AnyTopology::Grid(net) => net.num_channels(),
            AnyTopology::FatTree(ft) => ft.num_channels(),
        }
    }

    /// Iterator over all node identifiers (endpoints first).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over the endpoint identifiers.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_endpoints() as u32).map(NodeId)
    }

    /// Iterator over all existing unidirectional channels.
    pub fn channels(&self) -> impl Iterator<Item = DirectedChannel> + '_ {
        self.nodes().flat_map(move |node| {
            (0..self.dims()).flat_map(move |dim| {
                Direction::BOTH
                    .into_iter()
                    .filter(move |&dir| self.has_channel(node, dim, dir))
                    .map(move |dir| DirectedChannel::new(node, dim, dir))
            })
        })
    }

    /// True if the outgoing channel of `node` over `(dim, dir)` exists.
    #[inline]
    pub fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        topo_delegate!(self, n => Topology::has_channel(n, node, dim, dir))
    }

    /// The neighbour over `(dim, dir)`, or `None` when the channel does not
    /// exist.
    #[inline]
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        topo_delegate!(self, n => Topology::neighbor(n, node, dim, dir))
    }

    /// All existing neighbours of a node with the channel used to reach them.
    pub fn neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        topo_delegate!(self, n => Topology::neighbors(n, node))
    }

    /// The node a channel leads to (`None` if the channel does not exist).
    #[inline]
    pub fn channel_dest(&self, ch: DirectedChannel) -> Option<NodeId> {
        self.neighbor(ch.from, ch.dim, ch.dir)
    }

    /// Dense identifier of a channel slot.
    #[inline]
    pub fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        topo_delegate!(self, n => Topology::channel_id(n, ch))
    }

    /// Inverse of [`AnyTopology::channel_id`].
    #[inline]
    pub fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        topo_delegate!(self, n => Topology::channel_from_id(n, id))
    }

    /// Minimal hop distance between two nodes.
    #[inline]
    pub fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        topo_delegate!(self, n => Topology::distance(n, src, dest))
    }

    /// Average minimal hop distance over ordered pairs of distinct endpoints.
    pub fn average_distance(&self) -> f64 {
        match self {
            AnyTopology::Grid(net) => net.average_distance(),
            AnyTopology::FatTree(ft) => ft.average_distance(),
        }
    }

    /// Human-readable node label for witnesses and reports (grid coordinates
    /// like `(1,2)`; fat-tree roles like `e3` / `s1.2`).
    pub fn node_label(&self, node: NodeId) -> String {
        topo_delegate!(self, n => Topology::node_label(n, node))
    }
}

impl Topology for AnyTopology {
    fn num_nodes(&self) -> usize {
        AnyTopology::num_nodes(self)
    }

    fn num_endpoints(&self) -> usize {
        AnyTopology::num_endpoints(self)
    }

    fn dims(&self) -> usize {
        AnyTopology::dims(self)
    }

    fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        AnyTopology::has_channel(self, node, dim, dir)
    }

    fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        AnyTopology::neighbor(self, node, dim, dir)
    }

    fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        AnyTopology::distance(self, src, dest)
    }

    fn node_label(&self, node: NodeId) -> String {
        AnyTopology::node_label(self, node)
    }

    fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        AnyTopology::channel_id(self, ch)
    }

    fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        AnyTopology::channel_from_id(self, id)
    }
}

impl From<Network> for AnyTopology {
    fn from(net: Network) -> Self {
        AnyTopology::Grid(net)
    }
}

impl From<FatTree> for AnyTopology {
    fn from(ft: FatTree) -> Self {
        AnyTopology::FatTree(ft)
    }
}

impl fmt::Display for AnyTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        topo_delegate!(self, n => write!(f, "{n}"))
    }
}

/// Convenience constructors mirroring [`Network`]'s, wrapped in the enum.
impl AnyTopology {
    /// A k-ary n-cube as an [`AnyTopology`].
    pub fn torus(k: u16, n: u32) -> Result<Self, NetworkError> {
        Network::torus(k, n).map(AnyTopology::Grid)
    }

    /// A k-ary n-mesh as an [`AnyTopology`].
    pub fn mesh(k: u16, n: u32) -> Result<Self, NetworkError> {
        Network::mesh(k, n).map(AnyTopology::Grid)
    }

    /// A binary n-cube as an [`AnyTopology`].
    pub fn hypercube(n: u32) -> Result<Self, NetworkError> {
        Network::hypercube(n).map(AnyTopology::Grid)
    }

    /// A k-ary l-level fat-tree as an [`AnyTopology`].
    pub fn fat_tree_new(k: u16, l: u32) -> Result<Self, NetworkError> {
        FatTree::new(k, l).map(AnyTopology::FatTree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_endpoints_are_all_nodes() {
        let t = AnyTopology::torus(4, 2).unwrap();
        assert_eq!(t.num_endpoints(), t.num_nodes());
        assert!(t.nodes().all(|n| t.is_endpoint(n)));
        assert!(t.grid().is_some());
        assert!(t.fat_tree().is_none());
    }

    #[test]
    fn fat_tree_endpoints_precede_switches() {
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        assert_eq!(ft.num_endpoints(), 16);
        assert_eq!(ft.num_nodes(), 24);
        assert_eq!(ft.endpoints().count(), 16);
        assert!(ft.endpoints().all(|n| ft.is_endpoint(n)));
        assert!(ft.nodes().skip(16).all(|n| !ft.is_endpoint(n)));
        assert!(ft.grid().is_none());
        assert!(ft.fat_tree().is_some());
    }

    #[test]
    fn delegation_matches_backends() {
        let net = Network::torus(4, 2).unwrap();
        let t = AnyTopology::Grid(net.clone());
        for node in t.nodes() {
            assert_eq!(t.neighbors(node).len(), net.neighbors(node).len());
            assert_eq!(t.node_label(node), format!("{}", net.coord(node)));
        }
        assert_eq!(t.channels().count(), net.num_channels());
        assert_eq!(t.channel_slots(), net.channel_slots());
        assert!((t.average_distance() - net.average_distance()).abs() < 1e-12);
        assert_eq!(format!("{t}"), "4x4");
    }

    #[test]
    fn channel_id_roundtrip_both_backends() {
        for topo in [
            AnyTopology::mesh(4, 2).unwrap(),
            AnyTopology::fat_tree_new(4, 2).unwrap(),
        ] {
            for ch in topo.channels() {
                let id = topo.channel_id(ch);
                assert_eq!(topo.channel_from_id(id), ch);
                assert!(id.index() < topo.channel_slots());
            }
            assert_eq!(topo.channels().count(), topo.num_channels());
        }
    }

    #[test]
    fn trait_object_surface_is_consistent() {
        let ft = FatTree::new(2, 2).unwrap();
        let topo: AnyTopology = ft.clone().into();
        for node in topo.nodes() {
            for dim in 0..topo.dims() {
                for dir in Direction::BOTH {
                    assert_eq!(
                        Topology::neighbor(&ft, node, dim, dir),
                        topo.neighbor(node, dim, dir)
                    );
                }
            }
        }
        assert_eq!(format!("{topo}"), "ft:2,2");
    }
}
