//! The k-ary n-cube topology.

use crate::channel::{ChannelId, DirectedChannel, Direction};
use crate::coords::{Coord, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or querying a [`Torus`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum TorusError {
    /// Radix must be at least 2 (k = 1 is a degenerate single ring node; the
    /// wormhole channel model additionally requires k >= 3 for distinct
    /// plus/minus neighbours, but k = 2 is accepted and handled).
    RadixTooSmall(u16),
    /// Dimensionality must be at least 1.
    DimensionTooSmall(u32),
    /// The network k^n would overflow the node-id space.
    TooManyNodes { k: u16, n: u32 },
    /// A supplied coordinate digit lies outside `0..k`.
    DigitOutOfRange { dim: usize, digit: u16, k: u16 },
    /// A coordinate has the wrong number of dimensions.
    WrongDimensionality { expected: usize, got: usize },
}

impl fmt::Display for TorusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorusError::RadixTooSmall(k) => write!(f, "radix k={k} is too small (need k >= 2)"),
            TorusError::DimensionTooSmall(n) => {
                write!(f, "dimensionality n={n} is too small (need n >= 1)")
            }
            TorusError::TooManyNodes { k, n } => {
                write!(f, "{k}^{n} nodes exceeds the supported node-id space")
            }
            TorusError::DigitOutOfRange { dim, digit, k } => {
                write!(f, "digit {digit} in dimension {dim} out of range 0..{k}")
            }
            TorusError::WrongDimensionality { expected, got } => {
                write!(f, "coordinate has {got} dimensions, expected {expected}")
            }
        }
    }
}

impl std::error::Error for TorusError {}

/// A k-ary n-cube (n-dimensional radix-k torus).
///
/// The topology owns no per-node state; it is a pure description of the
/// address space and channel structure, cheap to copy around.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    k: u16,
    n: u32,
    num_nodes: u32,
    /// `strides[d] = k^d`, used for mixed-radix conversion.
    strides: Vec<u32>,
}

impl Torus {
    /// Creates a k-ary n-cube.
    ///
    /// # Errors
    /// Returns an error if `k < 2`, `n < 1` or `k^n` does not fit in the
    /// node-id space.
    pub fn new(k: u16, n: u32) -> Result<Self, TorusError> {
        if k < 2 {
            return Err(TorusError::RadixTooSmall(k));
        }
        if n < 1 {
            return Err(TorusError::DimensionTooSmall(n));
        }
        let mut strides = Vec::with_capacity(n as usize);
        let mut acc: u64 = 1;
        for _ in 0..n {
            strides.push(acc as u32);
            acc = acc
                .checked_mul(k as u64)
                .ok_or(TorusError::TooManyNodes { k, n })?;
            if acc > u32::MAX as u64 {
                return Err(TorusError::TooManyNodes { k, n });
            }
        }
        Ok(Torus {
            k,
            n,
            num_nodes: acc as u32,
            strides,
        })
    }

    /// Radix (number of nodes along each dimension).
    #[inline]
    pub fn radix(&self) -> u16 {
        self.k
    }

    /// Dimensionality of the network.
    #[inline]
    pub fn dims(&self) -> usize {
        self.n as usize
    }

    /// Total number of nodes, `k^n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes as usize
    }

    /// Number of unidirectional network channels, `2 n k^n`.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.num_nodes() * 2 * self.dims()
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Iterator over all unidirectional channels.
    pub fn channels(&self) -> impl Iterator<Item = DirectedChannel> + '_ {
        self.nodes().flat_map(move |node| {
            (0..self.dims()).flat_map(move |dim| {
                Direction::BOTH
                    .into_iter()
                    .map(move |dir| DirectedChannel::new(node, dim, dir))
            })
        })
    }

    /// Converts a node identifier to its mixed-radix coordinate.
    pub fn coord(&self, node: NodeId) -> Coord {
        debug_assert!(node.0 < self.num_nodes, "node id out of range");
        let mut digits = Vec::with_capacity(self.dims());
        let mut rest = node.0;
        for _ in 0..self.n {
            digits.push((rest % self.k as u32) as u16);
            rest /= self.k as u32;
        }
        Coord::new(digits)
    }

    /// Converts a coordinate to its node identifier.
    ///
    /// # Errors
    /// Returns an error if the coordinate has the wrong dimensionality or a
    /// digit out of range.
    pub fn node(&self, coord: &Coord) -> Result<NodeId, TorusError> {
        if coord.dims() != self.dims() {
            return Err(TorusError::WrongDimensionality {
                expected: self.dims(),
                got: coord.dims(),
            });
        }
        let mut id = 0u32;
        for (dim, &digit) in coord.digits().iter().enumerate() {
            if digit >= self.k {
                return Err(TorusError::DigitOutOfRange {
                    dim,
                    digit,
                    k: self.k,
                });
            }
            id += digit as u32 * self.strides[dim];
        }
        Ok(NodeId(id))
    }

    /// Convenience constructor of a node id from raw digits.
    pub fn node_from_digits(&self, digits: &[u16]) -> Result<NodeId, TorusError> {
        self.node(&Coord::new(digits.to_vec()))
    }

    /// Position of `node` along `dim`.
    #[inline]
    pub fn position(&self, node: NodeId, dim: usize) -> u16 {
        ((node.0 / self.strides[dim]) % self.k as u32) as u16
    }

    /// The neighbour of `node` one hop away along `dim` in direction `dir`
    /// (with wrap-around).
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> NodeId {
        let pos = self.position(node, dim) as i32;
        let k = self.k as i32;
        let next = (pos + dir.sign()).rem_euclid(k) as u32;
        let base = node.0 - (pos as u32) * self.strides[dim];
        NodeId(base + next * self.strides[dim])
    }

    /// All `2n` neighbours of a node together with the channel used to reach
    /// them.
    pub fn neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.dims());
        for dim in 0..self.dims() {
            for dir in Direction::BOTH {
                out.push((
                    DirectedChannel::new(node, dim, dir),
                    self.neighbor(node, dim, dir),
                ));
            }
        }
        out
    }

    /// The node a channel leads to.
    #[inline]
    pub fn channel_dest(&self, ch: DirectedChannel) -> NodeId {
        self.neighbor(ch.from, ch.dim, ch.dir)
    }

    /// Dense identifier of a channel: `node * 2n + dim * 2 + dir`.
    #[inline]
    pub fn channel_id(&self, ch: DirectedChannel) -> ChannelId {
        let per_node = 2 * self.dims() as u32;
        ChannelId(ch.from.0 * per_node + (ch.dim as u32) * 2 + ch.dir.index() as u32)
    }

    /// Inverse of [`Torus::channel_id`].
    pub fn channel_from_id(&self, id: ChannelId) -> DirectedChannel {
        let per_node = 2 * self.dims() as u32;
        let node = NodeId(id.0 / per_node);
        let rest = id.0 % per_node;
        let dim = (rest / 2) as usize;
        let dir = Direction::from_index((rest % 2) as usize);
        DirectedChannel::new(node, dim, dir)
    }

    /// Minimal signed offset from `src` to `dest` along dimension `dim`.
    ///
    /// The returned value lies in `[-(k/2), k/2]`; when the two directions are
    /// equidistant (even `k`, offset exactly `k/2`), the positive direction is
    /// chosen, matching the deterministic tie-break used by e-cube routing.
    pub fn offset(&self, src: NodeId, dest: NodeId, dim: usize) -> i32 {
        let a = self.position(src, dim) as i32;
        let b = self.position(dest, dim) as i32;
        let k = self.k as i32;
        let mut d = (b - a).rem_euclid(k); // 0..k, going Plus
        if d > k / 2 {
            // going Minus is strictly shorter (on a tie d == k/2 with even k we
            // keep the positive direction, the deterministic e-cube tie-break)
            d -= k;
        }
        d
    }

    /// Per-dimension minimal offsets from `src` to `dest`.
    pub fn offsets(&self, src: NodeId, dest: NodeId) -> Vec<i32> {
        (0..self.dims())
            .map(|d| self.offset(src, dest, d))
            .collect()
    }

    /// Minimal hop distance between two nodes.
    pub fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        self.offsets(src, dest)
            .iter()
            .map(|o| o.unsigned_abs())
            .sum()
    }

    /// Ring distance along a single dimension when travelling in a fixed
    /// direction (always non-negative, `0..k`).
    pub fn directed_ring_distance(&self, from: u16, to: u16, dir: Direction) -> u16 {
        let k = self.k as i32;
        let d = match dir {
            Direction::Plus => (to as i32 - from as i32).rem_euclid(k),
            Direction::Minus => (from as i32 - to as i32).rem_euclid(k),
        };
        d as u16
    }

    /// Whether travelling one hop from position `from` in direction `dir`
    /// crosses the dateline of that ring.
    ///
    /// The dateline is placed on the wrap-around link: Plus crosses it when
    /// moving from `k-1` to `0`, Minus when moving from `0` to `k-1`.
    #[inline]
    pub fn crosses_dateline(&self, from: u16, dir: Direction) -> bool {
        match dir {
            Direction::Plus => from == self.k - 1,
            Direction::Minus => from == 0,
        }
    }

    /// Whether a hop over `ch` is the wrap-around link of its ring.
    pub fn is_wraparound(&self, ch: DirectedChannel) -> bool {
        self.crosses_dateline(self.position(ch.from, ch.dim), ch.dir)
    }

    /// Average minimal hop distance over all ordered pairs of distinct nodes.
    ///
    /// For a k-ary n-cube this equals `n * k / 4` for even `k` and
    /// `n * (k^2 - 1) / (4k)` for odd `k` (computed exactly here rather than
    /// by formula so it also holds for k = 2).
    pub fn average_distance(&self) -> f64 {
        // Per-dimension expected |offset| over a uniformly random pair.
        let k = self.k as i64;
        let mut per_dim_total = 0i64;
        for delta in 0..k {
            // offset magnitude for a ring difference of `delta`
            let d = delta.min(k - delta);
            per_dim_total += d;
        }
        let per_dim_mean = per_dim_total as f64 / k as f64;
        per_dim_mean * self.dims() as f64 * self.num_nodes() as f64
            / (self.num_nodes() as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_sizes() {
        let t = Torus::new(8, 2).unwrap();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.num_channels(), 64 * 4);
        let t = Torus::new(8, 3).unwrap();
        assert_eq!(t.num_nodes(), 512);
        assert_eq!(t.num_channels(), 512 * 6);
        let t = Torus::new(16, 2).unwrap();
        assert_eq!(t.num_nodes(), 256);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(Torus::new(1, 2).unwrap_err(), TorusError::RadixTooSmall(1));
        assert_eq!(
            Torus::new(4, 0).unwrap_err(),
            TorusError::DimensionTooSmall(0)
        );
        assert!(matches!(
            Torus::new(u16::MAX, 4).unwrap_err(),
            TorusError::TooManyNodes { .. }
        ));
    }

    #[test]
    fn coord_roundtrip() {
        let t = Torus::new(5, 3).unwrap();
        for node in t.nodes() {
            let c = t.coord(node);
            assert_eq!(t.node(&c).unwrap(), node);
        }
    }

    #[test]
    fn coord_errors() {
        let t = Torus::new(4, 2).unwrap();
        assert!(matches!(
            t.node(&Coord::new(vec![1, 2, 3])),
            Err(TorusError::WrongDimensionality { .. })
        ));
        assert!(matches!(
            t.node(&Coord::new(vec![4, 0])),
            Err(TorusError::DigitOutOfRange { .. })
        ));
    }

    #[test]
    fn neighbors_wrap_correctly() {
        let t = Torus::new(8, 2).unwrap();
        let origin = t.node_from_digits(&[0, 0]).unwrap();
        assert_eq!(
            t.coord(t.neighbor(origin, 0, Direction::Plus)).digits(),
            &[1, 0]
        );
        assert_eq!(
            t.coord(t.neighbor(origin, 0, Direction::Minus)).digits(),
            &[7, 0]
        );
        assert_eq!(
            t.coord(t.neighbor(origin, 1, Direction::Minus)).digits(),
            &[0, 7]
        );
        let corner = t.node_from_digits(&[7, 7]).unwrap();
        assert_eq!(
            t.coord(t.neighbor(corner, 1, Direction::Plus)).digits(),
            &[7, 0]
        );
    }

    #[test]
    fn neighbor_is_involutive() {
        let t = Torus::new(6, 3).unwrap();
        for node in t.nodes() {
            for dim in 0..t.dims() {
                for dir in Direction::BOTH {
                    let nb = t.neighbor(node, dim, dir);
                    assert_eq!(t.neighbor(nb, dim, dir.opposite()), node);
                }
            }
        }
    }

    #[test]
    fn degree_is_2n() {
        let t = Torus::new(4, 3).unwrap();
        for node in t.nodes().take(16) {
            assert_eq!(t.neighbors(node).len(), 6);
        }
    }

    #[test]
    fn channel_id_roundtrip() {
        let t = Torus::new(8, 3).unwrap();
        for ch in t.channels() {
            let id = t.channel_id(ch);
            assert_eq!(t.channel_from_id(id), ch);
            assert!(id.index() < t.num_channels());
        }
    }

    #[test]
    fn offsets_and_distance() {
        let t = Torus::new(8, 2).unwrap();
        let a = t.node_from_digits(&[1, 1]).unwrap();
        let b = t.node_from_digits(&[6, 2]).unwrap();
        // 1 -> 6 going minus is 3 hops (1 -> 0 -> 7 -> 6), going plus is 5.
        assert_eq!(t.offset(a, b, 0), -3);
        assert_eq!(t.offset(a, b, 1), 1);
        assert_eq!(t.distance(a, b), 4);
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn offset_tie_break_is_positive() {
        let t = Torus::new(8, 1).unwrap();
        let a = t.node_from_digits(&[0]).unwrap();
        let b = t.node_from_digits(&[4]).unwrap();
        assert_eq!(t.offset(a, b, 0), 4);
        assert_eq!(t.offset(b, a, 0), 4);
    }

    #[test]
    fn directed_ring_distance_matches_direction() {
        let t = Torus::new(8, 1).unwrap();
        assert_eq!(t.directed_ring_distance(1, 6, Direction::Plus), 5);
        assert_eq!(t.directed_ring_distance(1, 6, Direction::Minus), 3);
        assert_eq!(t.directed_ring_distance(3, 3, Direction::Plus), 0);
    }

    #[test]
    fn dateline_crossings() {
        let t = Torus::new(8, 2).unwrap();
        assert!(t.crosses_dateline(7, Direction::Plus));
        assert!(!t.crosses_dateline(6, Direction::Plus));
        assert!(t.crosses_dateline(0, Direction::Minus));
        assert!(!t.crosses_dateline(1, Direction::Minus));
        let wrap = DirectedChannel::new(t.node_from_digits(&[7, 3]).unwrap(), 0, Direction::Plus);
        assert!(t.is_wraparound(wrap));
        let normal = DirectedChannel::new(t.node_from_digits(&[3, 3]).unwrap(), 0, Direction::Plus);
        assert!(!t.is_wraparound(normal));
    }

    #[test]
    fn average_distance_matches_formula_even_k() {
        let t = Torus::new(8, 2).unwrap();
        // n*k/4 = 4, corrected for excluding self-pairs by factor N/(N-1)
        let expected = 4.0 * 64.0 / 63.0;
        assert!((t.average_distance() - expected).abs() < 1e-9);
    }
}
