//! k-ary l-level fat-tree (indirect) topology.
//!
//! A [`FatTree`] is the classical k-ary l-tree: `k^l` endpoints at the bottom
//! and `l` levels of `k^(l-1)` switches each. Unlike the direct [`Network`]
//! grid, compute endpoints and switches are distinct node roles — traffic is
//! injected and delivered only at endpoints, while switches merely forward.
//!
//! # Identifier layout
//!
//! Endpoints occupy node ids `0..k^l` (so uniform endpoint sampling draws
//! from the same dense range as on a direct network), followed by the
//! switches level by level: switch `w` of level `lev` has id
//! `k^l + lev * k^(l-1) + w`. Level 0 switches are the *leaf* switches wired
//! to the endpoints; level `l-1` switches form the top of the tree.
//!
//! # Wiring
//!
//! Write a switch index `w` in base k as digits `w_0 .. w_{l-2}`. Switch
//! `(lev, w)` and switch `(lev+1, q)` are connected iff their digits agree
//! everywhere except position `lev`. Endpoint `p` hangs off leaf switch
//! `p / k`.
//!
//! # Port encoding
//!
//! Ports reuse the grid's `(dim, dir)` channel addressing with `dims() == k`:
//! `dir == Plus` is an up-port (towards the top), `dir == Minus` a down-port,
//! and `dim` is the port index `0..k`. The port index of the link between
//! child `(lev, w)` and parent `(lev+1, q)` is `(w_lev + q_lev) mod k` **on
//! both sides**, which keeps [`FatTree::neighbor`] involutive
//! (`neighbor(neighbor(n, t, dir), t, dir.opposite()) == n`) — the property
//! the simulator engines rely on for credit returns. An endpoint `p` owns the
//! single up-port `p mod k`, matching the leaf's down-port for that endpoint.

use crate::channel::{DirectedChannel, Direction};
use crate::coords::NodeId;
use crate::network::NetworkError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Role of a fat-tree node: a compute endpoint or a switch at some level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FatTreeNode {
    /// Compute endpoint `p` in `0..k^l`.
    Endpoint(u32),
    /// Switch `index` in `0..k^(l-1)` at `level` in `0..l` (0 = leaf).
    Switch {
        /// Level of the switch, `0..l` (0 is the leaf level).
        level: u32,
        /// Index of the switch within its level, `0..k^(l-1)`.
        index: u32,
    },
}

/// A k-ary l-level fat-tree.
///
/// Like [`Network`](crate::Network), the topology owns no per-node state; it
/// is a pure description of the id space and channel structure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTree {
    arity: u16,
    levels: u32,
    num_endpoints: u32,
    switches_per_level: u32,
}

impl FatTree {
    /// Creates a k-ary l-level fat-tree.
    ///
    /// # Errors
    /// Returns an error when `arity < 2`, `levels < 1`, or the node-id /
    /// channel-id space would overflow.
    pub fn new(arity: u16, levels: u32) -> Result<Self, NetworkError> {
        if arity < 2 {
            return Err(NetworkError::RadixTooSmall {
                dim: 0,
                radix: arity,
            });
        }
        if levels < 1 {
            return Err(NetworkError::DimensionTooSmall(levels));
        }
        let k = arity as u64;
        let mut endpoints: u64 = 1;
        for _ in 0..levels {
            endpoints = endpoints.checked_mul(k).ok_or(NetworkError::TooManyNodes)?;
            if endpoints > u32::MAX as u64 {
                return Err(NetworkError::TooManyNodes);
            }
        }
        let switches_per_level = endpoints / k;
        let num_nodes = endpoints + levels as u64 * switches_per_level;
        // The dense channel-id space is num_nodes * 2k; keep it in u32 range.
        if num_nodes
            .checked_mul(2 * k)
            .is_none_or(|slots| slots > u32::MAX as u64)
        {
            return Err(NetworkError::TooManyNodes);
        }
        Ok(FatTree {
            arity,
            levels,
            num_endpoints: endpoints as u32,
            switches_per_level: switches_per_level as u32,
        })
    }

    /// Arity `k` of the tree (children per switch, also ports per direction).
    #[inline]
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of switch levels `l`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of compute endpoints, `k^l`.
    #[inline]
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints as usize
    }

    /// Number of switches per level, `k^(l-1)`.
    #[inline]
    pub fn switches_per_level(&self) -> usize {
        self.switches_per_level as usize
    }

    /// Total number of nodes (endpoints plus all switches).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        (self.num_endpoints + self.levels * self.switches_per_level) as usize
    }

    /// Number of port slots per direction (`k`), playing the role the
    /// dimensionality plays in the grid's dense channel-id encoding.
    #[inline]
    pub fn dims(&self) -> usize {
        self.arity as usize
    }

    /// Size of the dense channel-id space, `num_nodes * 2k` (most endpoint
    /// slots are unused, exactly like mesh-edge slots on open grids).
    #[inline]
    pub fn channel_slots(&self) -> usize {
        self.num_nodes() * 2 * self.dims()
    }

    /// Number of unidirectional channels that physically exist:
    /// `2 * l * k^l` (each of the `l` inter-level link stages, including the
    /// endpoint–leaf stage, has `k^l` bidirectional links).
    pub fn num_channels(&self) -> usize {
        2 * self.levels as usize * self.num_endpoints()
    }

    /// True if `node` is a compute endpoint.
    #[inline]
    pub fn is_endpoint(&self, node: NodeId) -> bool {
        node.0 < self.num_endpoints
    }

    /// Classifies a node id into its role.
    ///
    /// # Panics
    /// Panics (in debug builds) when the id is out of range.
    pub fn classify(&self, node: NodeId) -> FatTreeNode {
        if node.0 < self.num_endpoints {
            return FatTreeNode::Endpoint(node.0);
        }
        let rest = node.0 - self.num_endpoints;
        let level = rest / self.switches_per_level;
        debug_assert!(level < self.levels, "node id out of range");
        FatTreeNode::Switch {
            level,
            index: rest % self.switches_per_level,
        }
    }

    /// Node id of switch `index` at `level`.
    pub fn switch_id(&self, level: u32, index: u32) -> NodeId {
        debug_assert!(level < self.levels && index < self.switches_per_level);
        NodeId(self.num_endpoints + level * self.switches_per_level + index)
    }

    /// Node id of endpoint `p`.
    #[inline]
    pub fn endpoint_id(&self, p: u32) -> NodeId {
        debug_assert!(p < self.num_endpoints);
        NodeId(p)
    }

    /// Leaf switch an endpoint hangs off.
    pub fn leaf_of(&self, endpoint: NodeId) -> NodeId {
        debug_assert!(self.is_endpoint(endpoint));
        self.switch_id(0, endpoint.0 / self.arity as u32)
    }

    /// Base-k digit of a switch index at position `pos` (`0..l-1`).
    #[inline]
    fn digit(&self, index: u32, pos: u32) -> u32 {
        (index / (self.arity as u32).pow(pos)) % self.arity as u32
    }

    /// Switch index with the digit at `pos` replaced by `d`.
    #[inline]
    fn with_digit(&self, index: u32, pos: u32, d: u32) -> u32 {
        let stride = (self.arity as u32).pow(pos);
        index - self.digit(index, pos) * stride + d * stride
    }

    /// The neighbour over port `(dim, dir)` (`dir == Plus` is up), or `None`
    /// when that port does not exist (endpoint down-ports and non-matching
    /// endpoint up-ports, top-switch up-ports, out-of-range port indices).
    pub fn neighbor(&self, node: NodeId, dim: usize, dir: Direction) -> Option<NodeId> {
        let k = self.arity as u32;
        if dim >= k as usize {
            return None;
        }
        let t = dim as u32;
        match self.classify(node) {
            FatTreeNode::Endpoint(p) => match dir {
                // The single up-port of endpoint p carries index p mod k.
                Direction::Plus if t == p % k => Some(self.switch_id(0, p / k)),
                _ => None,
            },
            FatTreeNode::Switch { level, index } => match dir {
                Direction::Plus => {
                    if level + 1 >= self.levels {
                        return None;
                    }
                    // Port t on the child side selects the parent whose digit
                    // at position `level` is (t - w_level) mod k.
                    let j = (t + k - self.digit(index, level)) % k;
                    Some(self.switch_id(level + 1, self.with_digit(index, level, j)))
                }
                Direction::Minus => {
                    if level == 0 {
                        return Some(self.endpoint_id(index * k + t));
                    }
                    let pos = level - 1;
                    let i = (t + k - self.digit(index, pos)) % k;
                    Some(self.switch_id(level - 1, self.with_digit(index, pos, i)))
                }
            },
        }
    }

    /// True if the outgoing channel of `node` over `(dim, dir)` exists.
    #[inline]
    pub fn has_channel(&self, node: NodeId, dim: usize, dir: Direction) -> bool {
        self.neighbor(node, dim, dir).is_some()
    }

    /// Iterator over all node identifiers (endpoints first).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over the endpoint identifiers, `0..k^l`.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_endpoints).map(NodeId)
    }

    /// All existing neighbours of a node with the channel used to reach them.
    pub fn neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        let mut out = Vec::with_capacity(2 * self.dims());
        for dim in 0..self.dims() {
            for dir in Direction::BOTH {
                if let Some(next) = self.neighbor(node, dim, dir) {
                    out.push((DirectedChannel::new(node, dim, dir), next));
                }
            }
        }
        out
    }

    /// All live parents of a node (switches one level up, or the leaf switch
    /// of an endpoint), with the up-port used to reach each.
    pub fn parents(&self, node: NodeId) -> Vec<(usize, NodeId)> {
        (0..self.dims())
            .filter_map(|t| self.neighbor(node, t, Direction::Plus).map(|p| (t, p)))
            .collect()
    }

    /// Generalised position of a node: its level (`-1` for endpoints) plus
    /// its digit at position `pos`, where endpoints carry the extra digit
    /// `p mod k` at position `-1` and their leaf's digits above. Switches
    /// have no digit at position `-1` (`None`).
    fn digit_at(&self, node: NodeId, pos: i32) -> Option<u32> {
        match self.classify(node) {
            FatTreeNode::Endpoint(p) => {
                if pos < 0 {
                    Some(p % self.arity as u32)
                } else {
                    Some(self.digit(p / self.arity as u32, pos as u32))
                }
            }
            FatTreeNode::Switch { index, .. } => {
                if pos < 0 {
                    None
                } else {
                    Some(self.digit(index, pos as u32))
                }
            }
        }
    }

    /// Level of a node, with endpoints at level `-1`.
    fn level_i32(&self, node: NodeId) -> i32 {
        match self.classify(node) {
            FatTreeNode::Endpoint(_) => -1,
            FatTreeNode::Switch { level, .. } => level as i32,
        }
    }

    /// True when `dest` is reachable from `node` by pure descent (`node` is
    /// an ancestor in the up*/down* routing sense). `node == dest` counts.
    pub fn descends_to(&self, node: NodeId, dest: NodeId) -> bool {
        let la = self.level_i32(node);
        let lb = self.level_i32(dest);
        if la < lb {
            return false;
        }
        if la == lb {
            return node == dest;
        }
        // Digits at positions >= la (untouched above) and < lb (untouched
        // below the descent) must agree.
        for pos in -1..self.levels as i32 - 1 {
            if pos >= lb && pos < la {
                continue;
            }
            if let (Some(da), Some(db)) = (self.digit_at(node, pos), self.digit_at(dest, pos)) {
                if da != db {
                    return false;
                }
            }
        }
        true
    }

    /// Minimal hop distance between two nodes.
    ///
    /// Endpoint-to-endpoint pairs (the hot path: every routed message) use
    /// the closed form `2h + 4` over the highest differing leaf digit `h`;
    /// pairs involving switches fall back to a breadth-first search.
    pub fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        if src == dest {
            return 0;
        }
        if self.is_endpoint(src) && self.is_endpoint(dest) {
            // Meeting level = one above the highest differing digit
            // (position -1 compares the endpoints' indices within the leaf).
            let mut h: i32 = -2;
            for pos in -1..self.levels as i32 - 1 {
                if self.digit_at(src, pos) != self.digit_at(dest, pos) {
                    h = pos;
                }
            }
            let m = (h + 1).max(0);
            return (2 * (m + 1)) as u32;
        }
        self.bfs_distance(src, dest)
    }

    /// Exact hop distance by breadth-first search (cold path: switch pairs).
    fn bfs_distance(&self, src: NodeId, dest: NodeId) -> u32 {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        dist[src.index()] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(cur) = queue.pop_front() {
            if cur == dest {
                return dist[cur.index()];
            }
            for (_, next) in self.neighbors(cur) {
                if dist[next.index()] == u32::MAX {
                    dist[next.index()] = dist[cur.index()] + 1;
                    queue.push_back(next);
                }
            }
        }
        unreachable!("a fat-tree is connected")
    }

    /// Average hop distance over all ordered pairs of distinct *endpoints*
    /// (the indirect-network analogue of the grid's node-pair average).
    pub fn average_distance(&self) -> f64 {
        let e = self.num_endpoints() as u64;
        let k = self.arity as u64;
        // Count pairs by meeting level: 2(m+1) hops for the pairs whose
        // nearest common ancestor sits at level m. Of the e*(e-1) ordered
        // pairs, those meeting at level m share the top l-1-m digits.
        let mut total: u128 = 0;
        let mut same_subtree = 1u64; // endpoints under one level-m subtree
        for m in 0..self.levels as u64 {
            let subtree = same_subtree * k; // endpoints under one level-m node
            let pairs = e * (subtree - same_subtree); // ordered pairs meeting at m
            total += (2 * (m + 1)) as u128 * pairs as u128;
            same_subtree = subtree;
        }
        total as f64 / (e * (e - 1)) as f64
    }

    /// Human-readable label of a node: `e<p>` for endpoints, `s<level>.<w>`
    /// for switches.
    pub fn node_label(&self, node: NodeId) -> String {
        match self.classify(node) {
            FatTreeNode::Endpoint(p) => format!("e{p}"),
            FatTreeNode::Switch { level, index } => format!("s{level}.{index}"),
        }
    }
}

impl fmt::Display for FatTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ft:{},{}", self.arity, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_sizes() {
        let ft = FatTree::new(4, 2).unwrap();
        assert_eq!(ft.num_endpoints(), 16);
        assert_eq!(ft.switches_per_level(), 4);
        assert_eq!(ft.num_nodes(), 24);
        assert_eq!(ft.dims(), 4);
        assert_eq!(ft.num_channels(), 2 * 2 * 16);
        assert_eq!(ft.channel_slots(), 24 * 8);
        let ft = FatTree::new(4, 3).unwrap();
        assert_eq!(ft.num_endpoints(), 64);
        assert_eq!(ft.num_nodes(), 64 + 3 * 16);
        let ft = FatTree::new(2, 1).unwrap();
        assert_eq!(ft.num_endpoints(), 2);
        assert_eq!(ft.num_nodes(), 3);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            FatTree::new(1, 2).unwrap_err(),
            NetworkError::RadixTooSmall { dim: 0, radix: 1 }
        );
        assert_eq!(
            FatTree::new(4, 0).unwrap_err(),
            NetworkError::DimensionTooSmall(0)
        );
        assert_eq!(FatTree::new(2, 40).unwrap_err(), NetworkError::TooManyNodes);
    }

    #[test]
    fn classify_roundtrip() {
        let ft = FatTree::new(4, 3).unwrap();
        for node in ft.nodes() {
            match ft.classify(node) {
                FatTreeNode::Endpoint(p) => {
                    assert_eq!(ft.endpoint_id(p), node);
                    assert!(ft.is_endpoint(node));
                }
                FatTreeNode::Switch { level, index } => {
                    assert_eq!(ft.switch_id(level, index), node);
                    assert!(!ft.is_endpoint(node));
                }
            }
        }
        assert_eq!(ft.endpoints().count(), 64);
    }

    #[test]
    fn endpoint_wiring() {
        let ft = FatTree::new(4, 2).unwrap();
        // Endpoint 6 hangs off leaf switch 1 over up-port 6 mod 4 = 2.
        let e = ft.endpoint_id(6);
        assert_eq!(ft.leaf_of(e), ft.switch_id(0, 1));
        assert_eq!(ft.neighbor(e, 2, Direction::Plus), Some(ft.switch_id(0, 1)));
        assert_eq!(ft.neighbor(e, 0, Direction::Plus), None);
        assert_eq!(ft.neighbor(e, 2, Direction::Minus), None);
        // The leaf's down-port 2 leads back to the endpoint.
        assert_eq!(
            ft.neighbor(ft.switch_id(0, 1), 2, Direction::Minus),
            Some(e)
        );
        assert_eq!(ft.neighbors(e).len(), 1);
    }

    #[test]
    fn switch_degrees() {
        let ft = FatTree::new(4, 3).unwrap();
        for node in ft.nodes() {
            let deg = ft.neighbors(node).len();
            match ft.classify(node) {
                FatTreeNode::Endpoint(_) => assert_eq!(deg, 1),
                FatTreeNode::Switch { level, .. } => {
                    // Top switches have no parents; everyone has k children.
                    let expected = if level + 1 == ft.levels() { 4 } else { 8 };
                    assert_eq!(deg, expected, "level {level}");
                }
            }
        }
    }

    #[test]
    fn neighbor_is_involutive() {
        for ft in [
            FatTree::new(4, 2).unwrap(),
            FatTree::new(2, 3).unwrap(),
            FatTree::new(3, 3).unwrap(),
        ] {
            for node in ft.nodes() {
                for dim in 0..ft.dims() {
                    for dir in Direction::BOTH {
                        if let Some(nb) = ft.neighbor(node, dim, dir) {
                            assert_eq!(
                                ft.neighbor(nb, dim, dir.opposite()),
                                Some(node),
                                "{node:?} d{dim}{dir}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn channel_count_matches_enumeration() {
        for ft in [FatTree::new(4, 2).unwrap(), FatTree::new(2, 3).unwrap()] {
            let listed: usize = ft
                .nodes()
                .map(|n| {
                    (0..ft.dims())
                        .flat_map(|d| Direction::BOTH.map(|dir| (d, dir)))
                        .filter(|&(d, dir)| ft.has_channel(n, d, dir))
                        .count()
                })
                .sum();
            assert_eq!(listed, ft.num_channels());
        }
    }

    #[test]
    fn parents_agree_per_level() {
        let ft = FatTree::new(4, 3).unwrap();
        // Every non-top switch has exactly k distinct parents at the level
        // above; all k children of a parent list it among their parents.
        let leaf = ft.switch_id(0, 5);
        let parents = ft.parents(leaf);
        assert_eq!(parents.len(), 4);
        for &(_, p) in &parents {
            match ft.classify(p) {
                FatTreeNode::Switch { level, .. } => assert_eq!(level, 1),
                _ => panic!("parent must be a switch"),
            }
            assert!(ft.neighbors(p).iter().any(|&(_, n)| n == leaf));
        }
        let top = ft.switch_id(2, 0);
        assert!(ft.parents(top).is_empty());
    }

    #[test]
    fn descends_to_matches_subtrees() {
        let ft = FatTree::new(4, 2).unwrap();
        let leaf0 = ft.switch_id(0, 0);
        // Leaf 0 descends exactly to endpoints 0..4.
        for p in 0..16 {
            assert_eq!(ft.descends_to(leaf0, ft.endpoint_id(p)), p < 4, "e{p}");
        }
        // Every top switch descends to every endpoint.
        for w in 0..4 {
            let top = ft.switch_id(1, w);
            for p in 0..16 {
                assert!(ft.descends_to(top, ft.endpoint_id(p)));
            }
            assert!(ft.descends_to(top, leaf0));
        }
        assert!(!ft.descends_to(leaf0, ft.switch_id(1, 0)));
        assert!(ft.descends_to(leaf0, leaf0));
    }

    #[test]
    fn endpoint_distances() {
        let ft = FatTree::new(4, 2).unwrap();
        let a = ft.endpoint_id(0);
        assert_eq!(ft.distance(a, a), 0);
        // Same leaf: up, down.
        assert_eq!(ft.distance(a, ft.endpoint_id(3)), 2);
        // Different leaf: up to the top and back down.
        assert_eq!(ft.distance(a, ft.endpoint_id(4)), 4);
        assert_eq!(ft.distance(a, ft.endpoint_id(15)), 4);
        let ft3 = FatTree::new(2, 3).unwrap();
        assert_eq!(ft3.distance(ft3.endpoint_id(0), ft3.endpoint_id(1)), 2);
        assert_eq!(ft3.distance(ft3.endpoint_id(0), ft3.endpoint_id(2)), 4);
        assert_eq!(ft3.distance(ft3.endpoint_id(0), ft3.endpoint_id(7)), 6);
    }

    #[test]
    fn distance_formula_matches_bfs_on_endpoints() {
        let ft = FatTree::new(3, 2).unwrap();
        for a in ft.endpoints() {
            for b in ft.endpoints() {
                assert_eq!(ft.distance(a, b), ft.bfs_distance(a, b), "{a:?}->{b:?}");
            }
        }
    }

    #[test]
    fn switch_distances_via_bfs() {
        let ft = FatTree::new(4, 2).unwrap();
        // Endpoint to its leaf: one hop; to the top: two.
        assert_eq!(ft.distance(ft.endpoint_id(0), ft.switch_id(0, 0)), 1);
        assert_eq!(ft.distance(ft.endpoint_id(0), ft.switch_id(1, 2)), 2);
        // Two leaves: via any common parent.
        assert_eq!(ft.distance(ft.switch_id(0, 0), ft.switch_id(0, 3)), 2);
    }

    #[test]
    fn average_distance_matches_pairwise_mean() {
        for ft in [FatTree::new(4, 2).unwrap(), FatTree::new(2, 3).unwrap()] {
            let mut total = 0u64;
            let mut pairs = 0u64;
            for a in ft.endpoints() {
                for b in ft.endpoints() {
                    if a != b {
                        total += ft.distance(a, b) as u64;
                        pairs += 1;
                    }
                }
            }
            let expected = total as f64 / pairs as f64;
            assert!(
                (ft.average_distance() - expected).abs() < 1e-9,
                "{ft}: {} vs {expected}",
                ft.average_distance()
            );
        }
    }

    #[test]
    fn labels_and_display() {
        let ft = FatTree::new(4, 2).unwrap();
        assert_eq!(ft.node_label(ft.endpoint_id(7)), "e7");
        assert_eq!(ft.node_label(ft.switch_id(1, 3)), "s1.3");
        assert_eq!(format!("{ft}"), "ft:4,2");
    }
}
