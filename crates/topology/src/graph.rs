//! Graph queries over the healthy (non-faulty) subgraph of the network.
//!
//! The fault model (assumption (h) of the paper) requires that faults never
//! disconnect the network; the software re-routing layer additionally needs to
//! compute fault-free detour paths when the simple table-driven rules run out
//! of options. Both needs are served by [`HealthyGraph`], a thin view over any
//! [`Topology`] plus a predicate marking nodes/channels unusable.

use crate::channel::{DirectedChannel, Direction};
use crate::coords::NodeId;
use crate::path::Path;
use crate::topo::Topology;
use std::collections::VecDeque;

/// Predicate describing which nodes and channels are unusable (faulty).
pub trait NodeFilter {
    /// True if the node is faulty / unusable.
    fn node_blocked(&self, node: NodeId) -> bool;

    /// True if the channel is faulty / unusable. The default implementation
    /// blocks a channel iff either endpoint is blocked; channels that do not
    /// physically exist (mesh edges, absent fat-tree ports) are always
    /// blocked.
    fn channel_blocked<T: Topology + ?Sized>(&self, net: &T, ch: DirectedChannel) -> bool {
        match net.channel_dest(ch) {
            Some(to) => self.node_blocked(ch.from) || self.node_blocked(to),
            None => true,
        }
    }
}

/// A filter that blocks nothing — the fault-free network.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl NodeFilter for NoFaults {
    fn node_blocked(&self, _node: NodeId) -> bool {
        false
    }
}

impl<F: Fn(NodeId) -> bool> NodeFilter for F {
    fn node_blocked(&self, node: NodeId) -> bool {
        self(node)
    }
}

/// A view of the network restricted to healthy nodes and channels.
pub struct HealthyGraph<'a, T: Topology + ?Sized, F: NodeFilter> {
    net: &'a T,
    filter: &'a F,
}

impl<'a, T: Topology + ?Sized, F: NodeFilter> HealthyGraph<'a, T, F> {
    /// Creates the healthy-subgraph view.
    pub fn new(net: &'a T, filter: &'a F) -> Self {
        HealthyGraph { net, filter }
    }

    /// The underlying topology.
    pub fn network(&self) -> &T {
        self.net
    }

    /// Healthy neighbours reachable over healthy channels.
    pub fn healthy_neighbors(&self, node: NodeId) -> Vec<(DirectedChannel, NodeId)> {
        self.net
            .neighbors(node)
            .into_iter()
            .filter(|(ch, next)| {
                !self.filter.node_blocked(*next) && !self.filter.channel_blocked(self.net, *ch)
            })
            .collect()
    }

    /// Iterator over every node id of the underlying topology.
    fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.net.num_nodes()).map(NodeId::from_index)
    }

    /// Number of healthy nodes.
    pub fn healthy_node_count(&self) -> usize {
        self.all_nodes()
            .filter(|n| !self.filter.node_blocked(*n))
            .count()
    }

    /// Breadth-first search from `start`, returning for every node its hop
    /// distance through the healthy subgraph (`None` if unreachable or
    /// blocked).
    pub fn bfs_distances(&self, start: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.net.num_nodes()];
        if self.filter.node_blocked(start) {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist[start.index()] = Some(0);
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            let d = dist[cur.index()].unwrap();
            for (_, next) in self.healthy_neighbors(cur) {
                if dist[next.index()].is_none() {
                    dist[next.index()] = Some(d + 1);
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// True if every healthy node can reach every other healthy node through
    /// healthy channels (the paper's assumption (h): "faults do not disconnect
    /// the network").
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.all_nodes().find(|n| !self.filter.node_blocked(*n)) else {
            // no healthy nodes at all: vacuously connected
            return true;
        };
        let dist = self.bfs_distances(start);
        self.all_nodes()
            .filter(|n| !self.filter.node_blocked(*n))
            .all(|n| dist[n.index()].is_some())
    }

    /// Shortest fault-free path from `src` to `dest` (BFS), or `None` when no
    /// such path exists or either endpoint is blocked.
    pub fn shortest_path(&self, src: NodeId, dest: NodeId) -> Option<Path> {
        if self.filter.node_blocked(src) || self.filter.node_blocked(dest) {
            return None;
        }
        if src == dest {
            return Some(Path {
                src,
                dest,
                hops: Vec::new(),
            });
        }
        let mut prev: Vec<Option<DirectedChannel>> = vec![None; self.net.num_nodes()];
        let mut seen = vec![false; self.net.num_nodes()];
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        'search: while let Some(cur) = queue.pop_front() {
            for (ch, next) in self.healthy_neighbors(cur) {
                if !seen[next.index()] {
                    seen[next.index()] = true;
                    prev[next.index()] = Some(ch);
                    if next == dest {
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
        if !seen[dest.index()] {
            return None;
        }
        // Reconstruct hops back from dest.
        let mut hops = Vec::new();
        let mut cur = dest;
        while cur != src {
            let ch = prev[cur.index()].expect("breadcrumb must exist on reconstructed path");
            hops.push(ch);
            cur = ch.from;
        }
        hops.reverse();
        Some(Path { src, dest, hops })
    }

    /// Shortest fault-free path restricted to moves inside the given set of
    /// dimensions (used by the SW-Based n-D scheme, which detours inside one
    /// dimension pair at a time). Falls back to `None` if no such path exists.
    pub fn shortest_path_in_dims(&self, src: NodeId, dest: NodeId, dims: &[usize]) -> Option<Path> {
        if self.filter.node_blocked(src) || self.filter.node_blocked(dest) {
            return None;
        }
        if src == dest {
            return Some(Path {
                src,
                dest,
                hops: Vec::new(),
            });
        }
        let mut prev: Vec<Option<DirectedChannel>> = vec![None; self.net.num_nodes()];
        let mut seen = vec![false; self.net.num_nodes()];
        let mut queue = VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(cur) = queue.pop_front() {
            for dim in dims.iter().copied() {
                for dir in Direction::BOTH {
                    let ch = DirectedChannel::new(cur, dim, dir);
                    let Some(next) = self.net.channel_dest(ch) else {
                        continue;
                    };
                    if self.filter.node_blocked(next)
                        || self.filter.channel_blocked(self.net, ch)
                        || seen[next.index()]
                    {
                        continue;
                    }
                    seen[next.index()] = true;
                    prev[next.index()] = Some(ch);
                    queue.push_back(next);
                }
            }
        }
        if !seen[dest.index()] {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = dest;
        while cur != src {
            let ch = prev[cur.index()].expect("breadcrumb must exist on reconstructed path");
            hops.push(ch);
            cur = ch.from;
        }
        hops.reverse();
        Some(Path { src, dest, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use std::collections::HashSet;

    struct Blocked(HashSet<NodeId>);

    impl NodeFilter for Blocked {
        fn node_blocked(&self, node: NodeId) -> bool {
            self.0.contains(&node)
        }
    }

    #[test]
    fn fault_free_network_is_connected() {
        for net in [
            Network::torus(8, 2).unwrap(),
            Network::mesh(8, 2).unwrap(),
            Network::hypercube(6).unwrap(),
        ] {
            let f = NoFaults;
            let g = HealthyGraph::new(&net, &f);
            assert!(g.is_connected());
            assert_eq!(g.healthy_node_count(), 64);
        }
    }

    #[test]
    fn bfs_distance_equals_network_distance_without_faults() {
        for net in [Network::torus(6, 2).unwrap(), Network::mesh(6, 2).unwrap()] {
            let f = NoFaults;
            let g = HealthyGraph::new(&net, &f);
            let src = net.node_from_digits(&[0, 0]).unwrap();
            let dist = g.bfs_distances(src);
            for node in net.nodes() {
                assert_eq!(dist[node.index()], Some(net.distance(src, node)));
            }
        }
    }

    #[test]
    fn blocked_nodes_are_unreachable() {
        let t = Network::torus(4, 2).unwrap();
        let blocked = Blocked(HashSet::from([t.node_from_digits(&[1, 1]).unwrap()]));
        let g = HealthyGraph::new(&t, &blocked);
        let dist = g.bfs_distances(t.node_from_digits(&[0, 0]).unwrap());
        assert_eq!(dist[t.node_from_digits(&[1, 1]).unwrap().index()], None);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnection_is_detected() {
        // On a 4x1 ring, blocking two opposite nodes splits the ring.
        let t = Network::torus(4, 1).unwrap();
        let blocked = Blocked(HashSet::from([
            t.node_from_digits(&[0]).unwrap(),
            t.node_from_digits(&[2]).unwrap(),
        ]));
        let g = HealthyGraph::new(&t, &blocked);
        assert!(!g.is_connected());
        // On a 4x1 open line, blocking *one* interior node already splits it
        // (there is no wrap-around to route behind the fault).
        let m = Network::mesh(4, 1).unwrap();
        let blocked = Blocked(HashSet::from([m.node_from_digits(&[1]).unwrap()]));
        let g = HealthyGraph::new(&m, &blocked);
        assert!(!g.is_connected());
    }

    #[test]
    fn shortest_path_detours_around_faults() {
        let t = Network::torus(8, 2).unwrap();
        let src = t.node_from_digits(&[0, 0]).unwrap();
        let dest = t.node_from_digits(&[3, 0]).unwrap();
        // Block the straight line between them.
        let blocked = Blocked(HashSet::from([
            t.node_from_digits(&[1, 0]).unwrap(),
            t.node_from_digits(&[2, 0]).unwrap(),
        ]));
        let g = HealthyGraph::new(&t, &blocked);
        let p = g.shortest_path(src, dest).unwrap();
        assert!(p.is_well_formed(&t));
        assert!(p.len() > t.distance(src, dest) as usize);
        for node in p.nodes(&t) {
            assert!(!blocked.node_blocked(node));
        }
    }

    #[test]
    fn mesh_detours_stay_inside_the_grid() {
        let m = Network::mesh(8, 2).unwrap();
        let src = m.node_from_digits(&[0, 0]).unwrap();
        let dest = m.node_from_digits(&[3, 0]).unwrap();
        let blocked = Blocked(HashSet::from([
            m.node_from_digits(&[1, 0]).unwrap(),
            m.node_from_digits(&[2, 0]).unwrap(),
        ]));
        let g = HealthyGraph::new(&m, &blocked);
        let p = g.shortest_path(src, dest).unwrap();
        assert!(p.is_well_formed(&m));
        for node in p.nodes(&m) {
            assert!(!blocked.node_blocked(node));
        }
    }

    #[test]
    fn shortest_path_trivial_and_unreachable() {
        let t = Network::torus(4, 2).unwrap();
        let f = NoFaults;
        let g = HealthyGraph::new(&t, &f);
        let a = t.node_from_digits(&[1, 2]).unwrap();
        assert_eq!(g.shortest_path(a, a).unwrap().len(), 0);

        let blocked = Blocked(HashSet::from([a]));
        let g = HealthyGraph::new(&t, &blocked);
        assert!(g
            .shortest_path(a, t.node_from_digits(&[0, 0]).unwrap())
            .is_none());
    }

    #[test]
    fn shortest_path_in_dims_respects_dimension_restriction() {
        for net in [Network::torus(4, 3).unwrap(), Network::mesh(4, 3).unwrap()] {
            let f = NoFaults;
            let g = HealthyGraph::new(&net, &f);
            let src = net.node_from_digits(&[0, 0, 0]).unwrap();
            let dest = net.node_from_digits(&[2, 1, 0]).unwrap();
            let p = g.shortest_path_in_dims(src, dest, &[0, 1]).unwrap();
            assert!(p.is_well_formed(&net));
            assert!(p.hops.iter().all(|h| h.dim < 2));
            // destination differing in an excluded dimension is unreachable
            let dest2 = net.node_from_digits(&[0, 0, 1]).unwrap();
            assert!(g.shortest_path_in_dims(src, dest2, &[0, 1]).is_none());
        }
    }

    #[test]
    fn fat_tree_connectivity_and_detours() {
        use crate::fattree::{FatTree, FatTreeNode};
        let ft = FatTree::new(4, 2).unwrap();
        let f = NoFaults;
        let g = HealthyGraph::new(&ft, &f);
        assert!(g.is_connected());
        assert_eq!(g.healthy_node_count(), ft.num_nodes());
        // Endpoint-to-endpoint BFS distance matches the closed-form distance.
        for a in ft.endpoints().take(4) {
            let dist = g.bfs_distances(a);
            for b in ft.endpoints() {
                assert_eq!(dist[b.index()], Some(ft.distance(a, b)));
            }
        }
        // Killing one level-1 (top) switch leaves the tree connected; the
        // shortest path between endpoints in different subtrees detours
        // through a sibling top switch.
        let top = ft.switch_id(1, 0);
        let blocked = move |n: NodeId| n == top;
        let g = HealthyGraph::new(&ft, &blocked);
        assert!(g.is_connected());
        let a = NodeId::from(0u32);
        let b = NodeId::from(5u32);
        let p = g.shortest_path(a, b).expect("detour must exist");
        assert!(p.is_well_formed(&ft));
        assert_eq!(p.len() as u32, ft.distance(a, b));
        assert!(p.nodes(&ft).iter().all(|n| *n != top));
        // Killing a leaf switch disconnects its endpoints: single point of
        // failure at level 0.
        let leaf = ft.switch_id(0, 0);
        assert!(matches!(
            ft.classify(leaf),
            FatTreeNode::Switch { level: 0, .. }
        ));
        let blocked = move |n: NodeId| n == leaf;
        let g = HealthyGraph::new(&ft, &blocked);
        assert!(!g.is_connected());
    }

    #[test]
    fn closure_filter_works() {
        let t = Network::torus(4, 2).unwrap();
        let bad = t.node_from_digits(&[3, 3]).unwrap();
        let filter = move |n: NodeId| n == bad;
        let g = HealthyGraph::new(&t, &filter);
        assert_eq!(g.healthy_node_count(), 15);
    }
}
