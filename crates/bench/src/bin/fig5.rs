//! Regenerates Fig. 5 of Safaei et al. (IPDPS 2006), by default on the
//! paper's torus; `--topology`/`--routing` regenerate it on meshes,
//! hypercubes or mixed shapes under any routing algorithm.
//!
//! `cargo run -p torus-bench --release --bin fig5 [-- --scale paper]
//! [-- --csv fig5.csv] [-- --topology mesh:8x2] [-- --routing turnmodel]
//! [-- --jobs 8]` — `--jobs` fans the figure's points over N worker threads
//! (default: all cores); output is bit-identical for any value.

use swbft_core::Figure;
use torus_bench::{parse_figure_args, run_figure};

fn main() {
    let opts = match parse_figure_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match run_figure(Figure::Fig5, &opts) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("fig5: {e}");
            std::process::exit(1);
        }
    }
}
