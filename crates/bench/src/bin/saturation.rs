//! Tabulates the estimated saturation rate of the 8-ary 2-cube for every
//! combination of routing flavour, virtual-channel count and fault count used
//! in Fig. 3 of the paper — the quantitative version of the paper's
//! qualitative claim that "the network saturates at lower traffic rates as the
//! number of faulty nodes increases" and that more virtual channels push
//! saturation to higher rates.
//!
//! ```text
//! cargo run -p torus-bench --release --bin saturation
//! ```

use swbft_core::prelude::*;
use swbft_core::run_parallel;
use swbft_core::{estimate_saturation_rate, SaturationSearch};

fn main() {
    let vs = [4usize, 6, 10];
    let fault_counts = [0usize, 3, 5];
    let m = 32;
    println!(
        "Estimated saturation rate (messages/node/cycle), 8-ary 2-cube, M={m} flits, 3,000 measured messages per probe\n"
    );
    println!(
        "{:>14} | {:>4} | {:>4} | {:>18} | {:>12}",
        "routing", "V", "nf", "saturation rate", "simulations"
    );
    println!("{}", "-".repeat(66));

    let mut jobs = Vec::new();
    for routing in RoutingChoice::BOTH {
        for &v in &vs {
            for &nf in &fault_counts {
                jobs.push((routing, v, nf));
            }
        }
    }
    let results = run_parallel(jobs, |&(routing, v, nf)| {
        let cfg = ExperimentConfig::paper_point(8, 2, v, m, 0.001)
            .with_routing(routing)
            .with_faults(if nf == 0 {
                FaultScenario::None
            } else {
                FaultScenario::RandomNodes { count: nf }
            })
            .with_fault_seed(2006 + nf as u64)
            .quick(3_000, 500);
        let est = estimate_saturation_rate(&cfg, SaturationSearch::default())
            .expect("saturation search runs");
        (routing, v, nf, est)
    });
    for (routing, v, nf, est) in results {
        println!(
            "{:>14} | {:>4} | {:>4} | {:>18.5} | {:>12}",
            routing.label(),
            v,
            nf,
            est.rate(),
            est.simulations
        );
    }
    println!();
    println!("expected ordering (the paper's Fig. 3): the saturation rate grows with V,");
    println!("shrinks as faults are added, and is higher for adaptive than for deterministic");
    println!("routing at every (V, nf) combination.");
}
