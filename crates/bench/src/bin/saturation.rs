//! Tabulates estimated saturation rates:
//!
//! 1. the 8-ary 2-cube for every combination of routing flavour,
//!    virtual-channel count and fault count used in Fig. 3 of the paper —
//!    the quantitative version of the paper's qualitative claim that "the
//!    network saturates at lower traffic rates as the number of faulty nodes
//!    increases" and that more virtual channels push saturation to higher
//!    rates;
//! 2. the 8-ary 2-mesh, comparing negative-first **turn-model** routing
//!    against Duato-over-e-cube on the *same* fault scenarios — the
//!    comparison point the turn-model subsystem exists for. The turn model
//!    runs at its reduced VC budget where Duato needs its escape classes.
//!
//! `--topology <spec>` replaces both tables with one table on the given
//! shape; the routing set defaults to every algorithm the shape supports
//! (`--routing` narrows it to one). Estimates whose search exhausted its
//! probe budget before bracketing are reported as explicit bounds (never as
//! midpoints of fictitious brackets).
//!
//! ```text
//! cargo run -p torus-bench --release --bin saturation [-- --smoke]
//!     [-- --topology mesh:8x2] [-- --routing turnmodel-det] [-- --jobs 8]
//!   --smoke      tiny grid and budgets for CI
//!   --jobs N     worker threads the independent (routing, V, nf) searches
//!                are fanned over (default: all cores); each search owns its
//!                seeds, so the tables are identical for any value
//! ```

use std::process::ExitCode;
use swbft_core::prelude::*;
use swbft_core::{estimate_saturation_rate, SaturationSearch};
use torus_routing::RoutingAlgorithm;
use torus_topology::TopologySpec;

const USAGE: &str = "usage: saturation [--smoke] [--topology <spec>] \
                     [--routing det|adaptive|turnmodel|turnmodel-det] [--jobs N|auto]";

struct Grid {
    torus_vs: &'static [usize],
    mesh_vs: &'static [usize],
    fault_counts: &'static [usize],
    measured: u64,
    warmup: u64,
    max_simulations: usize,
}

const FULL: Grid = Grid {
    torus_vs: &[4, 6, 10],
    mesh_vs: &[2, 4, 6],
    fault_counts: &[0, 3, 5],
    measured: 3_000,
    warmup: 500,
    max_simulations: 16,
};

const SMOKE: Grid = Grid {
    torus_vs: &[4],
    mesh_vs: &[2],
    fault_counts: &[0, 3],
    measured: 300,
    warmup: 100,
    max_simulations: 6,
};

fn faults_for(nf: usize) -> FaultScenario {
    if nf == 0 {
        FaultScenario::None
    } else {
        FaultScenario::RandomNodes { count: nf }
    }
}

fn run_table(
    title: &str,
    topology: TopologySpec,
    routings: &[RoutingChoice],
    vs: &[usize],
    grid: &Grid,
    pool_jobs: Jobs,
) {
    println!("{title}\n");
    println!(
        "{:>14} | {:>4} | {:>4} | {:>24} | {:>12}",
        "routing", "V", "nf", "saturation rate", "simulations"
    );
    println!("{}", "-".repeat(72));

    let search = SaturationSearch {
        max_simulations: grid.max_simulations,
        ..SaturationSearch::default()
    };
    let mut jobs = Vec::new();
    for &routing in routings {
        for &v in vs {
            for &nf in grid.fault_counts {
                jobs.push((routing, v, nf));
            }
        }
    }
    let topology = &topology;
    let results = run_pool(jobs, pool_jobs, |&(routing, v, nf)| {
        let cfg = ExperimentConfig::topology_point(topology.clone(), v, 32, 0.001)
            .with_routing(routing)
            .with_faults(faults_for(nf))
            .with_fault_seed(2006 + nf as u64)
            .quick(grid.measured, grid.warmup);
        let est = estimate_saturation_rate(&cfg, search).map_err(|e| e.to_string());
        (routing, v, nf, est)
    });
    for (routing, v, nf, est) in results {
        match est {
            Ok(est) => println!(
                "{:>14} | {:>4} | {:>4} | {:>24} | {:>12}",
                routing.label(),
                v,
                nf,
                est.display_rate(),
                est.simulations
            ),
            Err(e) => println!(
                "{:>14} | {:>4} | {:>4} | error: {e}",
                routing.label(),
                v,
                nf
            ),
        }
    }
    println!();
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut topology: Option<TopologySpec> = None;
    let mut routing: Option<RoutingChoice> = None;
    let mut jobs = Jobs::Auto;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--topology" => {
                let value = iter.next().unwrap_or_default();
                match TopologySpec::parse(&value) {
                    Ok(t) => topology = Some(t),
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--routing" => {
                let value = iter.next().unwrap_or_default();
                match RoutingChoice::parse(&value) {
                    Ok(r) => routing = Some(r),
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                let value = iter.next().unwrap_or_default();
                jobs = match Jobs::parse(&value) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let grid = if smoke { &SMOKE } else { &FULL };
    println!(
        "Estimated saturation rate (messages/node/cycle), M=32 flits, {} measured messages per probe{}\n",
        grid.measured,
        if smoke { " (smoke)" } else { "" }
    );

    if let Some(spec) = topology {
        // Custom-topology mode: one table on the requested shape, with either
        // the requested routing or every algorithm the shape supports.
        let requested: Vec<RoutingChoice> = routing.into_iter().collect();
        let net = match torus_bench::validate_topology_routings(&spec, &requested) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let routings: Vec<RoutingChoice> = match routing {
            Some(r) => vec![r],
            None => RoutingChoice::ALL
                .into_iter()
                .filter(|r| r.algorithm().supported_on(&net).is_ok())
                .collect(),
        };
        // Fat-trees have no wraparound channels, so they take the open-shape
        // VC sweep alongside fully-open grids.
        let fully_open = net
            .grid()
            .is_none_or(|g| (0..g.dims()).all(|d| !g.wraps(d)));
        let vs = if fully_open {
            grid.mesh_vs
        } else {
            grid.torus_vs
        };
        run_table(
            &format!(
                "== {}: saturation by routing, V and fault count ==",
                spec.label()
            ),
            spec,
            &routings,
            vs,
            grid,
            jobs,
        );
        return ExitCode::SUCCESS;
    }

    // Default mode: the paper's torus table plus the mesh turn-model
    // comparison. `--routing` narrows both tables to one algorithm (the
    // torus table is skipped when that algorithm cannot run on a torus).
    let torus = TopologySpec::torus(8, 2).build().expect("valid topology");
    let torus_routings: Vec<RoutingChoice> = routing
        .map_or_else(|| RoutingChoice::BOTH.to_vec(), |r| vec![r])
        .into_iter()
        .filter(|r| r.algorithm().supported_on(&torus).is_ok())
        .collect();
    let mesh_routings: Vec<RoutingChoice> = routing.map_or_else(
        || vec![RoutingChoice::Adaptive, RoutingChoice::TurnModel],
        |r| vec![r],
    );
    // Titles reflect the routing set that actually runs, so a narrowed table
    // never claims a comparison it does not contain.
    let torus_title = match routing {
        None => "== 8-ary 2-cube (torus): SW-Based deterministic vs adaptive ==".to_string(),
        Some(r) => format!("== 8-ary 2-cube (torus): {} only ==", r.label()),
    };
    let mesh_title = match routing {
        None => {
            "== 8-ary 2-mesh: negative-first turn model vs Duato-over-e-cube, same fault scenarios =="
                .to_string()
        }
        Some(r) => format!("== 8-ary 2-mesh: {} only, same fault scenarios ==", r.label()),
    };
    if torus_routings.is_empty() {
        eprintln!(
            "note: the requested routing cannot run on the torus — showing the mesh table only\n"
        );
    } else {
        run_table(
            &torus_title,
            TopologySpec::torus(8, 2),
            &torus_routings,
            grid.torus_vs,
            grid,
            jobs,
        );
    }
    run_table(
        &mesh_title,
        TopologySpec::mesh(8, 2),
        &mesh_routings,
        grid.mesh_vs,
        grid,
        jobs,
    );

    println!("expected ordering (the paper's Fig. 3, extended): the saturation rate grows");
    println!("with V, shrinks as faults are added, and is higher for adaptive than for");
    println!("deterministic routing on the torus. On the mesh both adaptive schemes reach");
    println!("full minimal adaptivity at V=2 (one escape + one adaptive channel each); they");
    println!("differ in escape substrate — dimension-ordered e-cube vs the negative-first");
    println!("turn rule — and the turn model additionally restricts its adaptive phase.");
    ExitCode::SUCCESS
}
