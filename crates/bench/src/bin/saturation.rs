//! Tabulates estimated saturation rates:
//!
//! 1. the 8-ary 2-cube for every combination of routing flavour,
//!    virtual-channel count and fault count used in Fig. 3 of the paper —
//!    the quantitative version of the paper's qualitative claim that "the
//!    network saturates at lower traffic rates as the number of faulty nodes
//!    increases" and that more virtual channels push saturation to higher
//!    rates;
//! 2. the 8-ary 2-mesh, comparing negative-first **turn-model** routing
//!    against Duato-over-e-cube on the *same* fault scenarios — the
//!    comparison point the turn-model subsystem exists for. The turn model
//!    runs at its reduced VC budget where Duato needs its escape classes.
//!
//! Estimates whose search exhausted its probe budget before bracketing are
//! reported as explicit bounds (never as midpoints of fictitious brackets).
//!
//! ```text
//! cargo run -p torus-bench --release --bin saturation [-- --smoke]
//!   --smoke      tiny grid and budgets for CI
//! ```

use std::process::ExitCode;
use swbft_core::prelude::*;
use swbft_core::run_parallel;
use swbft_core::{estimate_saturation_rate, SaturationSearch};
use torus_topology::TopologySpec;

struct Grid {
    torus_vs: &'static [usize],
    mesh_vs: &'static [usize],
    fault_counts: &'static [usize],
    measured: u64,
    warmup: u64,
    max_simulations: usize,
}

const FULL: Grid = Grid {
    torus_vs: &[4, 6, 10],
    mesh_vs: &[2, 4, 6],
    fault_counts: &[0, 3, 5],
    measured: 3_000,
    warmup: 500,
    max_simulations: 16,
};

const SMOKE: Grid = Grid {
    torus_vs: &[4],
    mesh_vs: &[2],
    fault_counts: &[0, 3],
    measured: 300,
    warmup: 100,
    max_simulations: 6,
};

fn faults_for(nf: usize) -> FaultScenario {
    if nf == 0 {
        FaultScenario::None
    } else {
        FaultScenario::RandomNodes { count: nf }
    }
}

fn run_table(
    title: &str,
    topology: TopologySpec,
    routings: &[RoutingChoice],
    vs: &[usize],
    grid: &Grid,
) {
    println!("{title}\n");
    println!(
        "{:>14} | {:>4} | {:>4} | {:>24} | {:>12}",
        "routing", "V", "nf", "saturation rate", "simulations"
    );
    println!("{}", "-".repeat(72));

    let search = SaturationSearch {
        max_simulations: grid.max_simulations,
        ..SaturationSearch::default()
    };
    let mut jobs = Vec::new();
    for &routing in routings {
        for &v in vs {
            for &nf in grid.fault_counts {
                jobs.push((routing, v, nf));
            }
        }
    }
    let topology = &topology;
    let results = run_parallel(jobs, |&(routing, v, nf)| {
        let cfg = ExperimentConfig::topology_point(topology.clone(), v, 32, 0.001)
            .with_routing(routing)
            .with_faults(faults_for(nf))
            .with_fault_seed(2006 + nf as u64)
            .quick(grid.measured, grid.warmup);
        let est = estimate_saturation_rate(&cfg, search).expect("saturation search runs");
        (routing, v, nf, est)
    });
    for (routing, v, nf, est) in results {
        println!(
            "{:>14} | {:>4} | {:>4} | {:>24} | {:>12}",
            routing.label(),
            v,
            nf,
            est.display_rate(),
            est.simulations
        );
    }
    println!();
}

fn main() -> ExitCode {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!("usage: saturation [--smoke]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\nusage: saturation [--smoke]");
                return ExitCode::FAILURE;
            }
        }
    }
    let grid = if smoke { &SMOKE } else { &FULL };
    println!(
        "Estimated saturation rate (messages/node/cycle), M=32 flits, {} measured messages per probe{}\n",
        grid.measured,
        if smoke { " (smoke)" } else { "" }
    );

    run_table(
        "== 8-ary 2-cube (torus): SW-Based deterministic vs adaptive ==",
        TopologySpec::torus(8, 2),
        &RoutingChoice::BOTH,
        grid.torus_vs,
        grid,
    );
    run_table(
        "== 8-ary 2-mesh: negative-first turn model vs Duato-over-e-cube, same fault scenarios ==",
        TopologySpec::mesh(8, 2),
        &[RoutingChoice::Adaptive, RoutingChoice::TurnModel],
        grid.mesh_vs,
        grid,
    );

    println!("expected ordering (the paper's Fig. 3, extended): the saturation rate grows");
    println!("with V, shrinks as faults are added, and is higher for adaptive than for");
    println!("deterministic routing on the torus. On the mesh both adaptive schemes reach");
    println!("full minimal adaptivity at V=2 (one escape + one adaptive channel each); they");
    println!("differ in escape substrate — dimension-ordered e-cube vs the negative-first");
    println!("turn rule — and the turn model additionally restricts its adaptive phase.");
    ExitCode::SUCCESS
}
