//! Regenerates Fig. 4 of Safaei et al. (IPDPS 2006).
//!
//! `cargo run -p torus-bench --release --bin fig4 [-- --scale paper] [-- --csv fig4.csv]`

use swbft_core::Figure;
use torus_bench::{parse_figure_args, run_figure};

fn main() {
    let opts = match parse_figure_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match run_figure(Figure::Fig4, &opts) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("failed to write CSV: {e}");
            std::process::exit(1);
        }
    }
}
