//! Runs the cycles/sec benchmark suite and writes `BENCH_cycles.json`.
//!
//! Each suite point is timed on the production active-set engine *and* on the
//! full-scan reference engine (after asserting both produce identical
//! reports), so the JSON records the engine speedup and the peak
//! message-table occupancy alongside the raw cycles/sec trajectory.
//!
//! ```text
//! usage: bench_cycles [--smoke] [--out <path>]
//!   --smoke      short runs for CI (fewer cycles, one repetition)
//!   --out PATH   output path (default: BENCH_cycles.json)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use torus_bench::cycles::{render_table, run_suite, to_json};

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = PathBuf::from("BENCH_cycles.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                };
                out_path = PathBuf::from(path);
            }
            "--help" | "-h" => {
                println!("usage: bench_cycles [--smoke] [--out <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'\nusage: bench_cycles [--smoke] [--out <path>]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let (cycles, reps) = if smoke { (2_000, 1) } else { (30_000, 3) };
    eprintln!(
        "running cycles/sec suite: {cycles} cycles/point, {reps} rep(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    let results = run_suite(cycles, reps);
    print!("{}", render_table(&results));
    if let Err(e) = std::fs::write(&out_path, to_json(&results, smoke)) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}
