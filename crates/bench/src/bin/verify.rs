//! Static routing verification gate: exact CDG acyclicity, cycle witnesses
//! and reachability proofs over the whole supported matrix, written to
//! `VERIFY.json`.
//!
//! ```text
//! usage: verify [--matrix smoke|full] [--jobs N] [--out <path>] [--naive-demo]
//!               [--schedule <spec> [--topology T] [--routing R] [--vc N] [--paranoid]]
//!   --matrix M      matrix slice to verify (default: smoke)
//!   --jobs N        worker threads for the sweep (default: 1); the case
//!                   order in the report is deterministic for any N
//!   --out PATH      output path (default: VERIFY.json)
//!   --naive-demo    instead of the matrix, run the known-cyclic negative
//!                   control (dimension-order torus routing with the dateline
//!                   VC classes merged away), print its channel-cycle witness,
//!                   and exit with status 2
//!   --schedule S    instead of the matrix, verify one fault schedule
//!                   epoch-differentially, e.g. '100:node@4,200:link@2:d0+'
//!   --topology T    topology for --schedule (default: torus:4x2)
//!   --routing R     routing label for --schedule (default: deterministic;
//!                   any label from the verify matrix)
//!   --vc N          virtual channels for --schedule (default: the routing's
//!                   minimum on the chosen topology)
//!   --paranoid      re-verify every epoch of --schedule from scratch and
//!                   diff against the differential result
//! ```
//!
//! Exit status: 0 when every case is proved or rejected, 1 on a usage or
//! I/O error, 2 when any case fails verification.

use std::path::PathBuf;
use std::process::ExitCode;
use swbft_verify::epochs::verify_schedule;
use swbft_verify::matrix::{
    matrix_routings, naive_torus_demo, run_matrix_with_options, MatrixKind, STATE_BUDGET,
};
use swbft_verify::report::{case_line, render_schedule_text, render_text, to_json};
use torus_faults::FaultSchedule;
use torus_routing::RoutingAlgorithm;
use torus_topology::TopologySpec;

const USAGE: &str = "usage: verify [--matrix smoke|full] [--jobs N] [--out <path>] [--naive-demo]\n\
                     \x20             [--schedule <spec> [--topology T] [--routing R] [--vc N] [--paranoid]]";

/// Runs the single-schedule verification path (`--schedule`).
fn run_schedule(
    spec: &str,
    topology: &str,
    routing: &str,
    vc: Option<usize>,
    paranoid: bool,
) -> ExitCode {
    let net = match TopologySpec::parse(topology).and_then(|s| s.build().map_err(|e| e.to_string()))
    {
        Ok(net) => net,
        Err(e) => {
            eprintln!("bad --topology '{topology}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some((label, algo)) = matrix_routings().into_iter().find(|(l, _)| l == routing) else {
        let known = matrix_routings()
            .into_iter()
            .map(|(l, _)| l)
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!("unknown --routing '{routing}' (known: {known})");
        return ExitCode::FAILURE;
    };
    if let Err(e) = algo.supported_on(&net) {
        eprintln!("{label} rejects {topology}: {e}");
        return ExitCode::FAILURE;
    }
    let schedule = match FaultSchedule::parse(spec) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad --schedule '{spec}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let v = vc.unwrap_or_else(|| algo.min_virtual_channels(&net));
    eprintln!(
        "verifying schedule '{}' on {topology} / {label} (v={v}{}):",
        schedule.spec_string(),
        if paranoid { ", paranoid" } else { "" }
    );
    match verify_schedule(&net, &algo, &schedule, v, STATE_BUDGET, paranoid) {
        Ok(outcome) => {
            print!("{}", render_schedule_text(&outcome));
            if outcome.failed() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("schedule verification error: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let mut kind = MatrixKind::Smoke;
    let mut jobs = 1usize;
    let mut out_path = PathBuf::from("VERIFY.json");
    let mut naive_demo = false;
    let mut schedule: Option<String> = None;
    let mut topology = "torus:4x2".to_string();
    let mut routing = "deterministic".to_string();
    let mut vc: Option<usize> = None;
    let mut paranoid = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedule" => {
                let Some(spec) = args.next() else {
                    eprintln!("--schedule needs a spec like '100:node@4,200:link@2:d0+'\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                schedule = Some(spec);
            }
            "--topology" => {
                let Some(t) = args.next() else {
                    eprintln!("--topology needs a spec like torus:4x2\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                topology = t;
            }
            "--routing" => {
                let Some(r) = args.next() else {
                    eprintln!("--routing needs a matrix routing label\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                routing = r;
            }
            "--vc" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    eprintln!("--vc needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                vc = Some(n);
            }
            "--paranoid" => paranoid = true,
            "--matrix" => {
                let Some(m) = args.next() else {
                    eprintln!("--matrix needs a value (smoke|full)\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                kind = match MatrixKind::parse(&m) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    eprintln!("--jobs needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out_path = PathBuf::from(path);
            }
            "--naive-demo" => naive_demo = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(spec) = schedule {
        return run_schedule(&spec, &topology, &routing, vc, paranoid);
    }

    if naive_demo {
        eprintln!("running the known-cyclic negative control (expected to fail):");
        let case = naive_torus_demo();
        println!("{}", case_line(&case));
        println!("  violation: {}", case.detail);
        for line in &case.witness {
            println!("  {line}");
        }
        return ExitCode::from(2);
    }

    eprintln!("verifying the {} matrix on {jobs} thread(s):", kind.name());
    let report = run_matrix_with_options(kind, jobs, |case| eprintln!("  {}", case_line(case)));
    print!("{}", render_text(&report));
    if let Err(e) = std::fs::write(&out_path, to_json(&report)) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out_path.display());
    if report.violations() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
