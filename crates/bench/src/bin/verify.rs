//! Static routing verification gate: exact CDG acyclicity, cycle witnesses
//! and reachability proofs over the whole supported matrix, written to
//! `VERIFY.json`.
//!
//! ```text
//! usage: verify [--matrix smoke|full] [--jobs N] [--out <path>] [--naive-demo]
//!   --matrix M    matrix slice to verify (default: smoke)
//!   --jobs N      worker threads for the sweep (default: 1); the case
//!                 order in the report is deterministic for any N
//!   --out PATH    output path (default: VERIFY.json)
//!   --naive-demo  instead of the matrix, run the known-cyclic negative
//!                 control (dimension-order torus routing with the dateline
//!                 VC classes merged away), print its channel-cycle witness,
//!                 and exit with status 2
//! ```
//!
//! Exit status: 0 when every case is proved or rejected, 1 on a usage or
//! I/O error, 2 when any case fails verification.

use std::path::PathBuf;
use std::process::ExitCode;
use swbft_verify::matrix::{naive_torus_demo, run_matrix_with_options, MatrixKind};
use swbft_verify::report::{case_line, render_text, to_json};

const USAGE: &str = "usage: verify [--matrix smoke|full] [--jobs N] [--out <path>] [--naive-demo]";

fn main() -> ExitCode {
    let mut kind = MatrixKind::Smoke;
    let mut jobs = 1usize;
    let mut out_path = PathBuf::from("VERIFY.json");
    let mut naive_demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--matrix" => {
                let Some(m) = args.next() else {
                    eprintln!("--matrix needs a value (smoke|full)\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                kind = match MatrixKind::parse(&m) {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--jobs" => {
                let parsed = args.next().and_then(|n| n.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n >= 1) else {
                    eprintln!("--jobs needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out_path = PathBuf::from(path);
            }
            "--naive-demo" => naive_demo = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if naive_demo {
        eprintln!("running the known-cyclic negative control (expected to fail):");
        let case = naive_torus_demo();
        println!("{}", case_line(&case));
        println!("  violation: {}", case.detail);
        for line in &case.witness {
            println!("  {line}");
        }
        return ExitCode::from(2);
    }

    eprintln!("verifying the {} matrix on {jobs} thread(s):", kind.name());
    let report = run_matrix_with_options(kind, jobs, |case| eprintln!("  {}", case_line(case)));
    print!("{}", render_text(&report));
    if let Err(e) = std::fs::write(&out_path, to_json(&report)) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out_path.display());
    if report.violations() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
