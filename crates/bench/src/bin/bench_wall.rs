//! Runs the suite wall-clock benchmark and writes `BENCH_wall.json`.
//!
//! Each figure is run end-to-end twice — once at `--jobs 1` and once at the
//! parallel jobs count — timing both and asserting the two results are
//! identical (the experiment pool's determinism guarantee). The JSON records
//! the per-figure and whole-suite wall clocks, speedups and CSV digests:
//! the wall-clock performance trajectory of the paper reproduction.
//!
//! Build with `--no-default-features` for clean wall-clock numbers: the
//! per-cycle sanitizer is a default feature (forwarded down to `torus-sim`)
//! and costs a large constant factor that this benchmark would otherwise
//! measure. Disabling it never changes results — the sanitizer is an
//! observer, not a participant.
//!
//! ```text
//! usage: bench_wall [--smoke] [--jobs N|auto] [--figures fig3,fig5]
//!                   [--out <path>]
//!   --smoke        smoke-scale grids for CI (default: quick scale)
//!   --jobs N       parallel worker count to compare against jobs=1
//!                  (default: all cores)
//!   --figures F,..  comma-separated subset (default: fig3..fig7)
//!   --out PATH     output path (default: BENCH_wall.json)
//! ```
//!
//! Exit status: 0 on success, 1 on a usage or I/O error, 2 when any
//! figure's parallel result diverges from its serial result.

use std::path::PathBuf;
use std::process::ExitCode;
use swbft_core::{Figure, Jobs, Scale};
use torus_bench::wall::{all_identical, render_table, run_wall_suite, to_json};

const USAGE: &str =
    "usage: bench_wall [--smoke] [--jobs N|auto] [--figures fig3,fig5,...] [--out <path>]";

fn main() -> ExitCode {
    let mut smoke = false;
    let mut jobs = Jobs::Auto;
    let mut figures: Vec<Figure> = Figure::ALL.to_vec();
    let mut out_path = PathBuf::from("BENCH_wall.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--jobs" => {
                let value = args.next().unwrap_or_default();
                jobs = match Jobs::parse(&value) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--figures" => {
                let value = args.next().unwrap_or_default();
                let mut selected = Vec::new();
                for id in value.split(',').filter(|s| !s.is_empty()) {
                    match Figure::from_id(id) {
                        Some(f) => selected.push(f),
                        None => {
                            eprintln!("unknown figure '{id}' (use fig3..fig7)\n{USAGE}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if selected.is_empty() {
                    eprintln!("--figures needs a comma-separated list\n{USAGE}");
                    return ExitCode::FAILURE;
                }
                figures = selected;
            }
            "--out" => {
                let Some(path) = args.next() else {
                    eprintln!("--out needs a file path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out_path = PathBuf::from(path);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scale = if smoke { Scale::Smoke } else { Scale::Quick };
    eprintln!(
        "wall-clock suite at {} scale: jobs=1 vs jobs={} ({} effective) on {} core(s)",
        scale.id(),
        jobs,
        jobs.effective(),
        Jobs::Auto.effective()
    );
    let results = match run_wall_suite(&figures, scale, jobs, |p| {
        eprintln!(
            "  {}: {} points, {:.0} ms serial, {:.0} ms at jobs={}, x{:.2}, identical={}",
            p.figure.id(),
            p.points,
            p.serial_wall_ms,
            p.parallel_wall_ms,
            p.parallel_jobs,
            p.speedup(),
            p.identical
        );
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_wall: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_table(&results));
    if let Err(e) = std::fs::write(&out_path, to_json(&results, scale)) {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out_path.display());
    if all_identical(&results) {
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_wall: parallel results diverged from serial results");
        ExitCode::from(2)
    }
}
