//! Ablation study over the simulator/design parameters that DESIGN.md calls
//! out: flit-buffer depth, the software re-injection overhead Δ, the router
//! decision time Td, and the number of virtual channels. The paper fixes
//! Td = Δ = 0 and does not report a buffer depth; this binary quantifies how
//! sensitive the headline latency results are to those choices.
//!
//! By default the ablations run on the paper's 8-ary 2-cube comparing the two
//! Software-Based flavours; `--topology`/`--routing` re-run them on any shape
//! or routing algorithm (e.g. the turn model on a mesh).
//!
//! ```text
//! cargo run -p torus-bench --release --bin ablation
//!     [-- --topology mesh:8x2] [-- --routing turnmodel] [-- --jobs 8]
//! ```
//!
//! `--jobs` fans the ablation variants over N worker threads (default: all
//! cores); every variant owns its seed, so output is identical for any value.

use swbft_core::prelude::*;
use torus_topology::TopologySpec;

const USAGE: &str = "usage: ablation [--topology <spec>] \
                     [--routing det|adaptive|turnmodel|turnmodel-det] [--jobs N|auto]";

/// Fixed operating point for the ablations: M = 32, five random node faults,
/// a mid-load traffic rate.
fn base(topology: &TopologySpec, routing: RoutingChoice) -> ExperimentConfig {
    ExperimentConfig::topology_point(topology.clone(), 6, 32, 0.006)
        .with_routing(routing)
        .with_faults(FaultScenario::RandomNodes { count: 5 })
        .with_seed(0xAB1A)
        .quick(3_000, 500)
}

struct Row {
    label: String,
    /// (latency, queued, throughput), or the rendered experiment error.
    result: Result<(f64, u64, f64), String>,
}

impl Row {
    fn from_outcome(
        label: &str,
        outcome: Result<ExperimentOutcome, swbft_core::ExperimentError>,
    ) -> Row {
        Row {
            label: label.to_string(),
            result: outcome
                .map(|out| {
                    (
                        out.report.mean_latency,
                        out.report.messages_queued,
                        out.report.throughput,
                    )
                })
                .map_err(|e| e.to_string()),
        }
    }
}

fn run_variants(
    title: &str,
    variants: Vec<(String, ExperimentConfig)>,
    jobs: Jobs,
) -> (String, Vec<Row>) {
    let rows = run_pool(variants, jobs, |(label, cfg)| {
        Row::from_outcome(label, cfg.run())
    });
    (title.to_string(), rows)
}

fn print_section(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:>34} | {:>14} | {:>10} | {:>12}",
        "variant", "latency (cyc)", "queued", "throughput"
    );
    println!("{}", "-".repeat(80));
    for r in rows {
        match &r.result {
            Ok((latency, queued, throughput)) => println!(
                "{:>34} | {:>14.1} | {:>10} | {:>12.5}",
                r.label, latency, queued, throughput
            ),
            Err(e) => println!("{:>34} | error: {e}", r.label),
        }
    }
}

fn main() {
    let mut topology = TopologySpec::torus(8, 2);
    let mut routings: Vec<RoutingChoice> = RoutingChoice::BOTH.to_vec();
    let mut jobs = Jobs::Auto;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--topology" => {
                let value = iter.next().unwrap_or_default();
                topology = match TopologySpec::parse(&value) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--routing" => {
                let value = iter.next().unwrap_or_default();
                routings = match RoutingChoice::parse(&value) {
                    Ok(r) => vec![r],
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--jobs" => {
                let value = iter.next().unwrap_or_default();
                jobs = match Jobs::parse(&value) {
                    Ok(j) => j,
                    Err(e) => {
                        eprintln!("{e}\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    // Reject routing/topology mismatches once, up front, instead of printing
    // one identical error per ablation row.
    if let Err(e) = torus_bench::validate_topology_routings(&topology, &routings) {
        eprintln!("{e}");
        std::process::exit(2);
    }

    println!(
        "Ablation study — {}, M=32, V=6, nf=5, lambda=0.006, 3,000 measured messages per point",
        topology.label()
    );

    // 1. Flit-buffer depth.
    let mut variants = Vec::new();
    for &routing in &routings {
        for depth in [1usize, 2, 4, 8] {
            let mut cfg = base(&topology, routing);
            cfg.buffer_depth = depth;
            variants.push((format!("{}, buffer depth {}", routing.label(), depth), cfg));
        }
    }
    let (title, rows) = run_variants("flit-buffer depth per virtual channel", variants, jobs);
    print_section(&title, &rows);

    // 2. Software re-injection overhead Δ. `ExperimentConfig` has no Δ field
    // (the paper fixes it to 0), so these points drive the simulator directly.
    let mut variants: Vec<(String, u32, ExperimentConfig)> = Vec::new();
    for &routing in &routings {
        for delta in [0u32, 10, 50, 200] {
            variants.push((
                format!("{}, reinjection delay {} cycles", routing.label(), delta),
                delta,
                base(&topology, routing),
            ));
        }
    }
    let rows = run_pool(variants, jobs, |(label, delta, cfg)| {
        let run = || -> Result<(f64, u64, f64), String> {
            let mut sim_cfg = cfg.sim_config();
            sim_cfg.reinjection_delay = *delta;
            let t = cfg.topology.build().map_err(|e| e.to_string())?;
            let mut rng: rand::rngs::StdRng =
                rand::SeedableRng::seed_from_u64(cfg.seed ^ 0xFA17_5EED);
            let faults = cfg
                .faults
                .realize(&t, &mut rng)
                .map_err(|e| e.to_string())?;
            let mut sim = torus_sim::Simulation::new(sim_cfg, faults, cfg.routing.algorithm())
                .map_err(|e| e.to_string())?;
            let out = sim.run();
            Ok((
                out.report.mean_latency,
                out.report.messages_queued,
                out.report.throughput,
            ))
        };
        Row {
            label: label.clone(),
            result: run(),
        }
    });
    print_section("software re-injection overhead Δ", &rows);

    // 3. Number of virtual channels.
    let mut variants = Vec::new();
    for &routing in &routings {
        for v in [3usize, 4, 6, 10] {
            let mut cfg = base(&topology, routing);
            cfg.virtual_channels = v;
            variants.push((format!("{}, V={}", routing.label(), v), cfg));
        }
    }
    let (title, rows) = run_variants("virtual channels per physical channel", variants, jobs);
    print_section(&title, &rows);

    println!("\nNotes:");
    println!("  * buffer depth 1 halves the effective per-hop bandwidth (credit round trip),");
    println!("    which is why the paper-style configuration uses depth >= 2;");
    println!("  * the re-injection overhead Δ only affects messages that encounter faults, so");
    println!("    its impact stays small at these fault densities (the paper sets Δ = 0);");
    println!("  * more virtual channels push saturation to higher loads for both flavours.");
}
