//! Ablation study over the simulator/design parameters that DESIGN.md calls
//! out: flit-buffer depth, the software re-injection overhead Δ, the router
//! decision time Td, and the number of virtual channels. The paper fixes
//! Td = Δ = 0 and does not report a buffer depth; this binary quantifies how
//! sensitive the headline latency results are to those choices.
//!
//! ```text
//! cargo run -p torus-bench --release --bin ablation
//! ```

use swbft_core::prelude::*;
use swbft_core::run_parallel;

/// Fixed operating point for the ablations: 8-ary 2-cube, M = 32, five random
/// node faults, a mid-load traffic rate, both routing flavours.
fn base(routing: RoutingChoice) -> ExperimentConfig {
    ExperimentConfig::paper_point(8, 2, 6, 32, 0.006)
        .with_routing(routing)
        .with_faults(FaultScenario::RandomNodes { count: 5 })
        .with_seed(0xAB1A)
        .quick(3_000, 500)
}

struct Row {
    label: String,
    latency: f64,
    queued: u64,
    throughput: f64,
}

fn run_variants(title: &str, variants: Vec<(String, ExperimentConfig)>) -> (String, Vec<Row>) {
    let rows = run_parallel(variants, |(label, cfg)| {
        let out = cfg.run().expect("ablation point runs");
        Row {
            label: label.clone(),
            latency: out.report.mean_latency,
            queued: out.report.messages_queued,
            throughput: out.report.throughput,
        }
    });
    (title.to_string(), rows)
}

fn print_section(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:>34} | {:>14} | {:>10} | {:>12}",
        "variant", "latency (cyc)", "queued", "throughput"
    );
    println!("{}", "-".repeat(80));
    for r in rows {
        println!(
            "{:>34} | {:>14.1} | {:>10} | {:>12.5}",
            r.label, r.latency, r.queued, r.throughput
        );
    }
}

fn main() {
    println!("Ablation study — 8-ary 2-cube, M=32, V=6, nf=5, lambda=0.006, 3,000 measured messages per point");

    // 1. Flit-buffer depth.
    let mut variants = Vec::new();
    for routing in RoutingChoice::BOTH {
        for depth in [1usize, 2, 4, 8] {
            let mut cfg = base(routing);
            cfg.buffer_depth = depth;
            variants.push((format!("{}, buffer depth {}", routing.label(), depth), cfg));
        }
    }
    let (title, rows) = run_variants("flit-buffer depth per virtual channel", variants);
    print_section(&title, &rows);

    // 2. Software re-injection overhead Δ. `ExperimentConfig` has no Δ field
    // (the paper fixes it to 0), so these points drive the simulator directly.
    let mut variants: Vec<(String, u32, ExperimentConfig)> = Vec::new();
    for routing in RoutingChoice::BOTH {
        for delta in [0u32, 10, 50, 200] {
            variants.push((
                format!("{}, reinjection delay {} cycles", routing.label(), delta),
                delta,
                base(routing),
            ));
        }
    }
    let rows = run_parallel(variants, |(label, delta, cfg)| {
        let mut sim_cfg = cfg.sim_config();
        sim_cfg.reinjection_delay = *delta;
        let t = cfg.topology.build().expect("topology");
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(cfg.seed ^ 0xFA17_5EED);
        let faults = cfg.faults.realize(&t, &mut rng).expect("faults");
        let mut sim = torus_sim::Simulation::new(sim_cfg, faults, cfg.routing.algorithm())
            .expect("simulation");
        let out = sim.run();
        Row {
            label: label.clone(),
            latency: out.report.mean_latency,
            queued: out.report.messages_queued,
            throughput: out.report.throughput,
        }
    });
    print_section("software re-injection overhead Δ", &rows);

    // 3. Number of virtual channels.
    let mut variants = Vec::new();
    for routing in RoutingChoice::BOTH {
        for v in [3usize, 4, 6, 10] {
            let mut cfg = base(routing);
            cfg.virtual_channels = v;
            variants.push((format!("{}, V={}", routing.label(), v), cfg));
        }
    }
    let (title, rows) = run_variants("virtual channels per physical channel", variants);
    print_section(&title, &rows);

    println!("\nNotes:");
    println!("  * buffer depth 1 halves the effective per-hop bandwidth (credit round trip),");
    println!("    which is why the paper-style configuration uses depth >= 2;");
    println!("  * the re-injection overhead Δ only affects messages that encounter faults, so");
    println!("    its impact stays small at these fault densities (the paper sets Δ = 0);");
    println!("  * more virtual channels push saturation to higher loads for both flavours.");
}
