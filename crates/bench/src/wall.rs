//! Suite wall-clock benchmark: every figure timed end-to-end at `--jobs 1`
//! and at a parallel jobs count, written to `BENCH_wall.json`.
//!
//! `BENCH_cycles.json` tracks per-point engine throughput (cycles/sec); this
//! suite tracks what the experiment pool actually buys — whole-figure wall
//! clock — and doubles as the parallel-determinism gate: each figure's
//! parallel result must be **equal** (structurally, and byte-identical as
//! CSV) to its serial result, or the run fails. On a single-core host the
//! speedup is ~1 by construction; the JSON records the machine's available
//! parallelism so the trajectory stays interpretable.
//!
//! The `bench_wall` binary runs this suite (quick scale by default, smoke for
//! CI) and writes the JSON trajectory document.

use std::time::Instant;
use swbft_core::{Figure, FigureOptions, Jobs, Scale};

/// FNV-1a digest of a byte string — the same digest family the figure
/// pinning tests use, recorded in `BENCH_wall.json` so CSV drift is visible
/// across PRs without storing the CSVs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Wall-clock measurement of one figure at `jobs = 1` and `jobs = N`.
#[derive(Clone, Debug)]
pub struct WallPoint {
    /// The measured figure.
    pub figure: Figure,
    /// Simulation points the figure assembled.
    pub points: usize,
    /// Points that failed to run (typed failures, still deterministic).
    pub failures: usize,
    /// End-to-end wall clock of the serial (`--jobs 1`) run, milliseconds.
    pub serial_wall_ms: f64,
    /// End-to-end wall clock of the parallel run, milliseconds.
    pub parallel_wall_ms: f64,
    /// Worker threads the parallel run used.
    pub parallel_jobs: usize,
    /// FNV-1a digest of the serial run's CSV rendering.
    pub csv_digest: u64,
    /// True when the parallel result equals the serial result (structurally
    /// and as CSV bytes) — the determinism guarantee of the pool.
    pub identical: bool,
}

impl WallPoint {
    /// Serial wall clock over parallel wall clock.
    pub fn speedup(&self) -> f64 {
        self.serial_wall_ms / self.parallel_wall_ms.max(1e-9)
    }
}

/// Runs `figure` at the given scale once serially and once on `jobs` worker
/// threads, timing both and checking the results are identical.
pub fn measure_figure(figure: Figure, scale: Scale, jobs: Jobs) -> Result<WallPoint, String> {
    let serial_opts = FigureOptions::new(scale).with_jobs(Jobs::serial());
    let start = Instant::now();
    let serial = figure.run_with(&serial_opts).map_err(|e| e.to_string())?;
    let serial_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let parallel_opts = FigureOptions::new(scale).with_jobs(jobs);
    let start = Instant::now();
    let parallel = figure.run_with(&parallel_opts).map_err(|e| e.to_string())?;
    let parallel_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let serial_csv = serial.to_csv();
    let identical = serial == parallel && serial_csv == parallel.to_csv();
    Ok(WallPoint {
        figure,
        points: serial.num_points(),
        failures: serial.failures.len(),
        serial_wall_ms,
        parallel_wall_ms,
        parallel_jobs: jobs.effective(),
        csv_digest: fnv1a(serial_csv.as_bytes()),
        identical,
    })
}

/// Runs the whole figure suite (`figures`, in the given order) at `scale`,
/// calling `progress` after each figure completes.
pub fn run_wall_suite(
    figures: &[Figure],
    scale: Scale,
    jobs: Jobs,
    mut progress: impl FnMut(&WallPoint),
) -> Result<Vec<WallPoint>, String> {
    let mut out = Vec::with_capacity(figures.len());
    for &figure in figures {
        let point = measure_figure(figure, scale, jobs)?;
        progress(&point);
        out.push(point);
    }
    Ok(out)
}

/// True when every figure's parallel run reproduced its serial run exactly.
pub fn all_identical(results: &[WallPoint]) -> bool {
    results.iter().all(|p| p.identical)
}

/// Renders the suite results as the `BENCH_wall.json` document
/// (schema `bench-wall-v1`).
pub fn to_json(results: &[WallPoint], scale: Scale) -> String {
    let available = Jobs::Auto.effective();
    let serial_total: f64 = results.iter().map(|p| p.serial_wall_ms).sum();
    let parallel_total: f64 = results.iter().map(|p| p.parallel_wall_ms).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-wall-v1\",\n");
    out.push_str(&format!("  \"scale\": \"{}\",\n", scale.id()));
    out.push_str(&format!("  \"available_parallelism\": {available},\n"));
    out.push_str("  \"figures\": [\n");
    for (i, p) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"figure\": \"{}\",\n", p.figure.id()));
        out.push_str(&format!("      \"points\": {},\n", p.points));
        out.push_str(&format!("      \"failures\": {},\n", p.failures));
        out.push_str(&format!(
            "      \"runs\": [{{\"jobs\": 1, \"wall_ms\": {:.1}}}, {{\"jobs\": {}, \"wall_ms\": {:.1}}}],\n",
            p.serial_wall_ms, p.parallel_jobs, p.parallel_wall_ms
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", p.speedup()));
        out.push_str(&format!(
            "      \"csv_digest\": \"{:#018x}\",\n",
            p.csv_digest
        ));
        out.push_str(&format!("      \"identical\": {}\n", p.identical));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"suite\": {{\"serial_wall_ms\": {:.1}, \"parallel_wall_ms\": {:.1}, \"speedup\": {:.3}}}\n",
        serial_total,
        parallel_total,
        serial_total / parallel_total.max(1e-9)
    ));
    out.push_str("}\n");
    out
}

/// Renders the suite results as an aligned text table.
pub fn render_table(results: &[WallPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>10} {:>14} {:>16} {:>9} {:>10}\n",
        "figure", "points", "failures", "jobs=1 (ms)", "jobs=N (ms)", "speedup", "identical"
    ));
    for p in results {
        out.push_str(&format!(
            "{:<8} {:>8} {:>10} {:>14.0} {:>13.0} x{:>2} {:>8.2}x {:>10}\n",
            p.figure.id(),
            p.points,
            p.failures,
            p.serial_wall_ms,
            p.parallel_wall_ms,
            p.parallel_jobs,
            p.speedup(),
            p.identical,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"fig3"), fnv1a(b"fig4"));
    }

    #[test]
    fn smoke_figure_measures_identically_in_serial_and_parallel() {
        // One cheap figure at smoke scale: the parallel run must reproduce
        // the serial run bit-identically, and both walls must be positive.
        let p = measure_figure(Figure::Fig5, Scale::Smoke, Jobs::count(4)).unwrap();
        assert!(p.identical, "parallel result diverged from serial");
        assert!(p.points > 0);
        assert_eq!(p.failures, 0);
        assert!(p.serial_wall_ms > 0.0 && p.parallel_wall_ms > 0.0);
        assert_eq!(p.parallel_jobs, 4);
        let json = to_json(std::slice::from_ref(&p), Scale::Smoke);
        assert!(json.contains("\"schema\": \"bench-wall-v1\""));
        assert!(json.contains("\"figure\": \"fig5\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"suite\""));
        assert!(all_identical(std::slice::from_ref(&p)));
        let table = render_table(std::slice::from_ref(&p));
        assert!(table.contains("fig5"));
    }
}
