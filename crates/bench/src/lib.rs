//! # torus-bench
//!
//! Benchmark harness and figure-reproduction binaries for the Software-Based
//! fault-tolerant routing study.
//!
//! * `cargo run -p torus-bench --release --bin fig3` (… `fig7`) regenerates
//!   the corresponding figure of the paper and prints its series as aligned
//!   text tables (add `--csv <path>` to also write CSV, `--scale paper` for
//!   the full 100,000-message methodology, `--topology mesh:8x2` /
//!   `--routing turnmodel` to regenerate the figure on another shape or
//!   routing algorithm).
//! * `cargo bench -p torus-bench` runs the Criterion micro/meso benchmarks:
//!   one small representative point per figure plus component benchmarks of
//!   the topology, routing and simulator layers.
//! * `cargo run -p torus-bench --release --bin bench_cycles` runs the
//!   [`cycles`] suite and writes `BENCH_cycles.json` — the recorded
//!   performance trajectory of the simulation engine across PRs.
//! * `cargo run -p torus-bench --release --bin bench_wall` runs the [`wall`]
//!   suite and writes `BENCH_wall.json` — whole-figure wall clock at
//!   `--jobs 1` vs `--jobs N`, the recorded trajectory of the experiment
//!   pool (and a determinism gate: both runs must be identical).

pub mod cycles;
pub mod wall;

use std::path::PathBuf;
use swbft_core::{Figure, FigureOptions, Jobs, RoutingChoice, Scale};
use torus_topology::TopologySpec;

/// Command-line options shared by the `fig*` binaries.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureCliOptions {
    /// Measurement scale.
    pub scale: Scale,
    /// Optional path to write the figure's CSV rows to.
    pub csv: Option<PathBuf>,
    /// Optional topology override (`None` = the figure's paper topology).
    pub topology: Option<TopologySpec>,
    /// Optional routing override (`None` = deterministic vs adaptive).
    pub routing: Option<RoutingChoice>,
    /// Worker threads for the experiment pool (default: available
    /// parallelism). Never changes results, only wall clock.
    pub jobs: Jobs,
}

impl FigureCliOptions {
    /// The figure-run options these CLI options describe.
    pub fn figure_options(&self) -> FigureOptions {
        let mut opts = FigureOptions::new(self.scale).with_jobs(self.jobs);
        if let Some(t) = &self.topology {
            opts = opts.with_topology(t.clone());
        }
        if let Some(r) = self.routing {
            opts = opts.with_routing(r);
        }
        opts
    }
}

impl Default for FigureCliOptions {
    fn default() -> Self {
        FigureCliOptions {
            scale: Scale::Quick,
            csv: None,
            topology: None,
            routing: None,
            jobs: Jobs::Auto,
        }
    }
}

/// Parses the `fig*` binaries' command-line arguments.
///
/// Recognised flags: `--scale smoke|quick|paper` (default `quick`),
/// `--csv <path>`, `--topology <spec>` (a [`TopologySpec::parse`] string such
/// as `mesh:8x2`, `hc:6`, `8x8x4o` or `ft:4,2`),
/// `--routing det|adaptive|turnmodel|turnmodel-det|updown|updown-det` and
/// `--jobs N|auto`
/// (worker threads, default all cores; results are identical for any value).
/// Unknown flags produce an error string listing the usage.
pub fn parse_figure_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<FigureCliOptions, String> {
    let mut opts = FigureCliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter
                    .next()
                    .ok_or("--scale needs a value (smoke|quick|paper)")?;
                opts.scale = Scale::parse(&value)?;
            }
            "--csv" => {
                let value = iter.next().ok_or("--csv needs a file path")?;
                opts.csv = Some(PathBuf::from(value));
            }
            "--topology" => {
                let value = iter
                    .next()
                    .ok_or("--topology needs a spec (e.g. mesh:8x2, hc:6, 8x8x4o, ft:4,2)")?;
                opts.topology = Some(TopologySpec::parse(&value)?);
            }
            "--routing" => {
                let value = iter
                    .next()
                    .ok_or("--routing needs a value (det|adaptive|turnmodel|turnmodel-det|updown|updown-det)")?;
                opts.routing = Some(RoutingChoice::parse(&value)?);
            }
            "--jobs" => {
                let value = iter
                    .next()
                    .ok_or("--jobs needs a value (a positive integer or 'auto')")?;
                opts.jobs = Jobs::parse(&value)?;
            }
            "--help" | "-h" => {
                return Err(usage());
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Usage string of the `fig*` binaries.
pub fn usage() -> String {
    "usage: fig<N> [--scale smoke|quick|paper] [--csv <path>] \
     [--topology <spec>] \
     [--routing det|adaptive|turnmodel|turnmodel-det|updown|updown-det] \
     [--jobs N|auto]\n\
     topology specs: torus:8x2, mesh:8x2, hypercube:6 (or hc:6), mixed:8,8,4o (or 8x8x4o), \
     fattree:4,2 (or ft:4,2)\n\
     --jobs fans the figure's points over N worker threads (default: all \
     cores); results are bit-identical for any value"
        .to_string()
}

/// Builds a topology and verifies every requested routing algorithm can run
/// on it, producing the error line the CLI binaries print before exiting.
/// Shared by the non-figure binaries (`ablation`, `saturation`) so the
/// rejection message stays identical everywhere.
pub fn validate_topology_routings(
    topology: &TopologySpec,
    routings: &[RoutingChoice],
) -> Result<torus_topology::AnyTopology, String> {
    use torus_routing::RoutingAlgorithm;
    let net = topology
        .build()
        .map_err(|e| format!("topology error: {e}"))?;
    for &r in routings {
        r.algorithm().supported_on(&net).map_err(|e| {
            format!(
                "routing '{}' cannot run on {}: {e}",
                r.label(),
                topology.label()
            )
        })?;
    }
    Ok(net)
}

/// Runs one figure with the given options and returns the text report
/// (writing the CSV file if requested). Figure-level errors (bad topology,
/// routing unsupported on the requested shape) come back as `Err(String)`;
/// individual failed points are listed inside the report text.
pub fn run_figure(figure: Figure, opts: &FigureCliOptions) -> Result<String, String> {
    let result = figure
        .run_with(&opts.figure_options())
        .map_err(|e| e.to_string())?;
    if let Some(path) = &opts.csv {
        std::fs::write(path, result.to_csv())
            .map_err(|e| format!("failed to write CSV to {}: {e}", path.display()))?;
    }
    Ok(result.render_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn default_options() {
        let o = parse_figure_args(args(&[])).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert!(o.csv.is_none());
        assert!(o.topology.is_none());
        assert!(o.routing.is_none());
        assert_eq!(o.figure_options(), FigureOptions::new(Scale::Quick));
    }

    #[test]
    fn parses_scale_and_csv() {
        let o = parse_figure_args(args(&["--scale", "paper", "--csv", "/tmp/out.csv"])).unwrap();
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.csv, Some(PathBuf::from("/tmp/out.csv")));
        let o = parse_figure_args(args(&["--scale", "smoke"])).unwrap();
        assert_eq!(o.scale, Scale::Smoke);
    }

    #[test]
    fn parses_topology_and_routing() {
        let o = parse_figure_args(args(&[
            "--topology",
            "mesh:8x2",
            "--routing",
            "turnmodel-det",
        ]))
        .unwrap();
        assert_eq!(o.topology, Some(TopologySpec::mesh(8, 2)));
        assert_eq!(o.routing, Some(RoutingChoice::TurnModelDeterministic));
        let fo = o.figure_options();
        assert_eq!(fo.topology, Some(TopologySpec::mesh(8, 2)));
        assert_eq!(
            fo.routings,
            Some(vec![RoutingChoice::TurnModelDeterministic])
        );
        // The CLI shorthands go straight through the spec parser.
        let o = parse_figure_args(args(&["--topology", "hc:6"])).unwrap();
        assert_eq!(o.topology, Some(TopologySpec::hypercube(6)));
        let o = parse_figure_args(args(&["--topology", "8x8x4o"])).unwrap();
        assert_eq!(
            o.topology,
            Some(TopologySpec::mixed(vec![8, 8, 4], vec![true, true, false]))
        );
    }

    #[test]
    fn parses_jobs() {
        let o = parse_figure_args(args(&["--jobs", "4"])).unwrap();
        assert_eq!(o.jobs, Jobs::count(4));
        assert_eq!(o.figure_options().jobs, Jobs::count(4));
        let o = parse_figure_args(args(&["--jobs", "auto"])).unwrap();
        assert_eq!(o.jobs, Jobs::Auto);
        assert!(parse_figure_args(args(&["--jobs", "0"])).is_err());
        assert!(parse_figure_args(args(&["--jobs", "lots"])).is_err());
        assert!(parse_figure_args(args(&["--jobs"])).is_err());
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(parse_figure_args(args(&["--bogus"])).is_err());
        assert!(parse_figure_args(args(&["--scale", "huge"])).is_err());
        assert!(parse_figure_args(args(&["--scale"])).is_err());
        assert!(parse_figure_args(args(&["--topology", "ring:9"])).is_err());
        assert!(parse_figure_args(args(&["--topology"])).is_err());
        assert!(parse_figure_args(args(&["--routing", "magic"])).is_err());
        assert!(parse_figure_args(args(&["--routing"])).is_err());
        assert!(parse_figure_args(args(&["--help"])).is_err());
    }

    #[test]
    fn figure_level_errors_are_strings_not_panics() {
        // Turn-model routing on the default torus topology: rejected with a
        // readable message before any simulation runs.
        let o = FigureCliOptions {
            scale: Scale::Smoke,
            routing: Some(RoutingChoice::TurnModel),
            ..FigureCliOptions::default()
        };
        let err = run_figure(Figure::Fig3, &o).unwrap_err();
        assert!(err.contains("turn-model"), "{err}");
    }
}
