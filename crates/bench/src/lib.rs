//! # torus-bench
//!
//! Benchmark harness and figure-reproduction binaries for the Software-Based
//! fault-tolerant routing study.
//!
//! * `cargo run -p torus-bench --release --bin fig3` (… `fig7`) regenerates
//!   the corresponding figure of the paper and prints its series as aligned
//!   text tables (add `--csv <path>` to also write CSV, `--scale paper` for
//!   the full 100,000-message methodology).
//! * `cargo bench -p torus-bench` runs the Criterion micro/meso benchmarks:
//!   one small representative point per figure plus component benchmarks of
//!   the topology, routing and simulator layers.
//! * `cargo run -p torus-bench --release --bin bench_cycles` runs the
//!   [`cycles`] suite and writes `BENCH_cycles.json` — the recorded
//!   performance trajectory of the simulation engine across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;

use std::path::PathBuf;
use swbft_core::{Figure, Scale};

/// Command-line options shared by the `fig*` binaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FigureCliOptions {
    /// Measurement scale.
    pub scale: Scale,
    /// Optional path to write the figure's CSV rows to.
    pub csv: Option<PathBuf>,
}

impl Default for FigureCliOptions {
    fn default() -> Self {
        FigureCliOptions {
            scale: Scale::Quick,
            csv: None,
        }
    }
}

/// Parses the `fig*` binaries' command-line arguments.
///
/// Recognised flags: `--scale quick|paper` (default `quick`), `--csv <path>`.
/// Unknown flags produce an error string listing the usage.
pub fn parse_figure_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<FigureCliOptions, String> {
    let mut opts = FigureCliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale needs a value (quick|paper)")?;
                opts.scale = match value.as_str() {
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale '{other}' (use quick|paper)")),
                };
            }
            "--csv" => {
                let value = iter.next().ok_or("--csv needs a file path")?;
                opts.csv = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err(usage());
            }
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Usage string of the `fig*` binaries.
pub fn usage() -> String {
    "usage: fig<N> [--scale quick|paper] [--csv <path>]".to_string()
}

/// Runs one figure with the given options and returns the text report
/// (writing the CSV file if requested).
pub fn run_figure(figure: Figure, opts: &FigureCliOptions) -> std::io::Result<String> {
    let result = figure.run(opts.scale);
    if let Some(path) = &opts.csv {
        std::fs::write(path, result.to_csv())?;
    }
    Ok(result.render_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options() {
        let o = parse_figure_args(args(&[])).unwrap();
        assert_eq!(o.scale, Scale::Quick);
        assert!(o.csv.is_none());
    }

    #[test]
    fn parses_scale_and_csv() {
        let o = parse_figure_args(args(&["--scale", "paper", "--csv", "/tmp/out.csv"])).unwrap();
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.csv, Some(PathBuf::from("/tmp/out.csv")));
    }

    #[test]
    fn rejects_unknown_arguments() {
        assert!(parse_figure_args(args(&["--bogus"])).is_err());
        assert!(parse_figure_args(args(&["--scale", "huge"])).is_err());
        assert!(parse_figure_args(args(&["--scale"])).is_err());
        assert!(parse_figure_args(args(&["--help"])).is_err());
    }
}
