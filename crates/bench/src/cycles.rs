//! The cycles/sec benchmark suite: a small set of representative simulation
//! points (fault-free low-load, faulted, near-saturation — on 2-D and 3-D
//! tori plus mesh and hypercube points so the perf trajectory covers the
//! non-wrap topologies, under both Duato-over-e-cube and negative-first
//! turn-model routing), each timed on both the active-set engine and the
//! full-scan reference engine.
//!
//! The `bench_cycles` binary runs the suite and emits `BENCH_cycles.json`
//! (cycles/sec per engine, speedup, peak message-table occupancy), giving the
//! repository a recorded performance trajectory across PRs; the
//! `engine_cycles` Criterion bench exposes the same points to `cargo bench`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use torus_faults::{random_node_faults, FaultSet};
use torus_metrics::SimulationReport;
use torus_routing::{AnyRouting, SwBasedRouting, TurnModelRouting};
use torus_sim::{ReferenceSimulation, SimConfig, Simulation, StopCondition};
use torus_topology::TopologySpec;

/// Seed for fault placement, fixed so every run of the suite benchmarks the
/// same network.
const FAULT_SEED: u64 = 17;

/// Topology family of a benchmark point (the `topology.kind` column of
/// `BENCH_cycles.json`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// k-ary n-cube (all dimensions wrap).
    Torus,
    /// k-ary n-mesh (no dimension wraps).
    Mesh,
    /// Binary n-cube (radix-2 mesh).
    Hypercube,
}

/// Routing algorithm of a benchmark point (the `routing` column of
/// `BENCH_cycles.json`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointRouting {
    /// Adaptive SW-Based routing (Duato's protocol over the e-cube escape
    /// layer); valid on every topology.
    SwAdaptive,
    /// Negative-first turn-model routing (adaptive flavour); open topologies
    /// only.
    TurnModel,
}

impl PointRouting {
    /// Stable label recorded in `BENCH_cycles.json`.
    pub fn label(&self) -> &'static str {
        match self {
            PointRouting::SwAdaptive => "sw-adaptive",
            PointRouting::TurnModel => "turn-model",
        }
    }

    /// The algorithm object the engines are timed with.
    pub fn algorithm(&self) -> AnyRouting {
        match self {
            PointRouting::SwAdaptive => AnyRouting::SwBased(SwBasedRouting::adaptive()),
            PointRouting::TurnModel => AnyRouting::TurnModel(TurnModelRouting::adaptive()),
        }
    }
}

/// One benchmark point of the suite.
#[derive(Clone, Copy, Debug)]
pub struct CyclePoint {
    /// Stable identifier used in `BENCH_cycles.json` and bench names.
    pub name: &'static str,
    /// Topology family of the point.
    pub kind: TopologyKind,
    /// Routing algorithm timed at this point.
    pub routing: PointRouting,
    /// Radix `k` along each dimension (2 for hypercubes).
    pub radix: u16,
    /// Dimensionality `n`.
    pub dims: u32,
    /// Virtual channels per physical channel.
    pub virtual_channels: usize,
    /// Message length in flits.
    pub message_length: u32,
    /// Offered load in messages/node/cycle.
    pub rate: f64,
    /// Number of random node faults (0 = fault-free).
    pub faults: usize,
}

/// The benchmark suite: fault-free low-load (the regime most figure points
/// run in), faulted, and near-saturation, on 2-D and 3-D tori — plus a mesh
/// and a hypercube point so the trajectory covers the non-wrap topologies.
pub const SUITE: &[CyclePoint] = &[
    CyclePoint {
        name: "2d_fault_free_low_load",
        kind: TopologyKind::Torus,
        routing: PointRouting::SwAdaptive,
        radix: 16,
        dims: 2,
        virtual_channels: 4,
        message_length: 32,
        rate: 0.002,
        faults: 0,
    },
    CyclePoint {
        name: "2d_faulted_low_load",
        kind: TopologyKind::Torus,
        routing: PointRouting::SwAdaptive,
        radix: 8,
        dims: 2,
        virtual_channels: 4,
        message_length: 16,
        rate: 0.004,
        faults: 5,
    },
    CyclePoint {
        name: "2d_near_saturation",
        kind: TopologyKind::Torus,
        routing: PointRouting::SwAdaptive,
        radix: 8,
        dims: 2,
        virtual_channels: 4,
        message_length: 16,
        rate: 0.03,
        faults: 0,
    },
    CyclePoint {
        name: "3d_fault_free_low_load",
        kind: TopologyKind::Torus,
        routing: PointRouting::SwAdaptive,
        radix: 8,
        dims: 3,
        virtual_channels: 4,
        message_length: 32,
        rate: 0.001,
        faults: 0,
    },
    CyclePoint {
        name: "3d_faulted_low_load",
        kind: TopologyKind::Torus,
        routing: PointRouting::SwAdaptive,
        radix: 4,
        dims: 3,
        virtual_channels: 4,
        message_length: 16,
        rate: 0.004,
        faults: 3,
    },
    CyclePoint {
        name: "2d_mesh_faulted_low_load",
        kind: TopologyKind::Mesh,
        routing: PointRouting::SwAdaptive,
        radix: 16,
        dims: 2,
        virtual_channels: 4,
        message_length: 16,
        rate: 0.003,
        faults: 5,
    },
    CyclePoint {
        name: "hypercube6_fault_free_low_load",
        kind: TopologyKind::Hypercube,
        routing: PointRouting::SwAdaptive,
        radix: 2,
        dims: 6,
        virtual_channels: 4,
        message_length: 16,
        rate: 0.004,
        faults: 0,
    },
    // Turn-model points: the same mesh/hypercube shapes under negative-first
    // routing at its reduced VC budget (1 escape + 1 adaptive), so the perf
    // trajectory covers the second routing subsystem.
    CyclePoint {
        name: "2d_mesh_turnmodel_faulted_low_load",
        kind: TopologyKind::Mesh,
        routing: PointRouting::TurnModel,
        radix: 16,
        dims: 2,
        virtual_channels: 2,
        message_length: 16,
        rate: 0.003,
        faults: 5,
    },
    CyclePoint {
        name: "hypercube6_turnmodel_fault_free_low_load",
        kind: TopologyKind::Hypercube,
        routing: PointRouting::TurnModel,
        radix: 2,
        dims: 6,
        virtual_channels: 2,
        message_length: 16,
        rate: 0.004,
        faults: 0,
    },
];

impl CyclePoint {
    /// The topology spec of this point.
    pub fn topology(&self) -> TopologySpec {
        match self.kind {
            TopologyKind::Torus => TopologySpec::torus(self.radix, self.dims),
            TopologyKind::Mesh => TopologySpec::mesh(self.radix, self.dims),
            TopologyKind::Hypercube => TopologySpec::hypercube(self.dims),
        }
    }

    /// The simulator configuration for this point, running a fixed number of
    /// cycles (so cycles/sec is directly comparable between engines).
    pub fn sim_config(&self, cycles: u64) -> SimConfig {
        let mut cfg = SimConfig::paper_topology(
            self.topology(),
            self.virtual_channels,
            self.message_length,
            self.rate,
        );
        cfg.stop = StopCondition::Cycles(cycles);
        cfg.max_cycles = cycles;
        cfg
    }

    /// The fault set for this point (deterministic placement).
    pub fn fault_set(&self) -> FaultSet {
        if self.faults == 0 {
            return FaultSet::new();
        }
        let net = self.topology().build().expect("valid suite topology");
        let mut rng = StdRng::seed_from_u64(FAULT_SEED);
        random_node_faults(&net, self.faults, &mut rng).expect("realizable fault placement")
    }
}

/// Which engine a measurement timed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The production active-set engine ([`Simulation`]).
    Active,
    /// The full-scan reference engine ([`ReferenceSimulation`]).
    Reference,
}

/// Result of timing one engine on one point.
#[derive(Clone, Copy, Debug)]
pub struct EngineMeasurement {
    /// Simulated cycles per wall-clock second (best of the repetitions).
    pub cycles_per_sec: f64,
    /// Peak message-table occupancy (for the reference engine this equals the
    /// total number of messages generated — its table never reclaims).
    pub peak_message_table: u64,
    /// Messages generated during the run.
    pub generated_messages: u64,
    /// Messages delivered during the run.
    pub delivered_messages: u64,
}

/// Runs `engine` on `point` for `cycles` simulated cycles, `reps` times.
/// Returns the best-run measurement plus the run's [`SimulationReport`]
/// (identical across repetitions — runs are seed-deterministic — and used by
/// [`run_suite`] to cross-check the two engines against each other).
pub fn measure(
    point: &CyclePoint,
    engine: Engine,
    cycles: u64,
    reps: usize,
) -> (EngineMeasurement, SimulationReport) {
    assert!(reps >= 1);
    let mut best = f64::MIN;
    let mut peak = 0u64;
    let mut report = None;
    for _ in 0..reps {
        let cfg = point.sim_config(cycles);
        let faults = point.fault_set();
        let algo = point.routing.algorithm();
        let (elapsed, out) = match engine {
            Engine::Active => {
                let mut sim = Simulation::new(cfg, faults, algo).expect("valid suite config");
                let start = Instant::now();
                let out = sim.run();
                (start.elapsed(), out)
            }
            Engine::Reference => {
                let mut sim =
                    ReferenceSimulation::new(cfg, faults, algo).expect("valid suite config");
                let start = Instant::now();
                let out = sim.run();
                (start.elapsed(), out)
            }
        };
        best = best.max(cycles as f64 / elapsed.as_secs_f64().max(1e-9));
        peak = out.message_table_peak;
        report = Some(out.report);
    }
    let report = report.expect("at least one repetition");
    let measurement = EngineMeasurement {
        cycles_per_sec: best,
        peak_message_table: peak,
        generated_messages: report.generated_messages,
        delivered_messages: report.delivered_messages,
    };
    (measurement, report)
}

/// Result of one suite point: both engines plus the derived speedup.
#[derive(Clone, Copy, Debug)]
pub struct PointResult {
    /// The benchmarked point.
    pub point: CyclePoint,
    /// Simulated cycles per run.
    pub cycles: u64,
    /// Active-set engine measurement.
    pub active: EngineMeasurement,
    /// Full-scan reference measurement.
    pub reference: EngineMeasurement,
}

impl PointResult {
    /// Active-set cycles/sec over reference cycles/sec.
    pub fn speedup(&self) -> f64 {
        self.active.cycles_per_sec / self.reference.cycles_per_sec
    }
}

/// Runs the whole suite, asserting along the way that both engines produce
/// identical reports for every point (a cross-check of the equivalence test
/// suite on the exact benchmark configurations, at no extra runs — the
/// reports come out of the timed repetitions themselves).
pub fn run_suite(cycles: u64, reps: usize) -> Vec<PointResult> {
    SUITE
        .iter()
        .map(|point| {
            let (active, active_report) = measure(point, Engine::Active, cycles, reps);
            let (reference, reference_report) = measure(point, Engine::Reference, cycles, reps);
            assert_eq!(
                active_report, reference_report,
                "engines diverged on benchmark point {}",
                point.name
            );
            PointResult {
                point: *point,
                cycles,
                active,
                reference,
            }
        })
        .collect()
}

/// Renders the suite results as the `BENCH_cycles.json` document.
pub fn to_json(results: &[PointResult], smoke: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-cycles-v2\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", p.name));
        out.push_str(&format!("      \"routing\": \"{}\",\n", p.routing.label()));
        out.push_str(&format!(
            "      \"topology\": {{\"kind\": \"{}\", \"radix\": {}, \"dims\": {}, \"virtual_channels\": {}}},\n",
            p.topology().kind(),
            p.radix,
            p.dims,
            p.virtual_channels
        ));
        out.push_str(&format!(
            "      \"workload\": {{\"message_length\": {}, \"rate\": {}, \"faults\": {}}},\n",
            p.message_length, p.rate, p.faults
        ));
        out.push_str(&format!("      \"cycles\": {},\n", r.cycles));
        for (label, m) in [("active", &r.active), ("reference", &r.reference)] {
            out.push_str(&format!(
                "      \"{label}\": {{\"cycles_per_sec\": {:.1}, \"peak_message_table\": {}, \"generated_messages\": {}, \"delivered_messages\": {}}},\n",
                m.cycles_per_sec, m.peak_message_table, m.generated_messages, m.delivered_messages
            ));
        }
        out.push_str(&format!("      \"speedup\": {:.3}\n", r.speedup()));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the suite results as an aligned text table.
pub fn render_table(results: &[PointResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>10} {:>12} {:>14} {:>14} {:>8} {:>10} {:>10}\n",
        "point",
        "topology",
        "routing",
        "active c/s",
        "reference c/s",
        "speedup",
        "peak tbl",
        "generated"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<40} {:>10} {:>12} {:>14.0} {:>14.0} {:>7.2}x {:>10} {:>10}\n",
            r.point.name,
            r.point.topology().kind(),
            r.point.routing.label(),
            r.active.cycles_per_sec,
            r.reference.cycles_per_sec,
            r.speedup(),
            r.active.peak_message_table,
            r.active.generated_messages,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_points_are_valid_and_engines_agree() {
        // A very short run over every point: configurations must build, both
        // engines must agree, and the JSON/table renderers must cover them.
        let results = run_suite(300, 1);
        assert_eq!(results.len(), SUITE.len());
        for r in &results {
            assert!(r.active.cycles_per_sec > 0.0);
            assert!(r.reference.cycles_per_sec > 0.0);
            assert_eq!(r.active.generated_messages, r.reference.generated_messages);
            assert_eq!(r.active.delivered_messages, r.reference.delivered_messages);
            assert!(
                r.active.peak_message_table <= r.reference.peak_message_table,
                "reclaiming table can never peak above the append-only table"
            );
        }
        let json = to_json(&results, true);
        assert!(json.contains("\"schema\": \"bench-cycles-v2\""));
        assert!(json.contains("2d_fault_free_low_load"));
        assert!(json.contains("\"smoke\": true"));
        // The topology column names every family in the suite.
        assert!(json.contains("\"kind\": \"torus\""));
        assert!(json.contains("\"kind\": \"mesh\""));
        assert!(json.contains("\"kind\": \"hypercube\""));
        // The routing column names both subsystems.
        assert!(json.contains("\"routing\": \"sw-adaptive\""));
        assert!(json.contains("\"routing\": \"turn-model\""));
        let table = render_table(&results);
        assert!(table.contains("3d_faulted_low_load"));
        assert!(table.contains("2d_mesh_faulted_low_load"));
        assert!(table.contains("hypercube6_fault_free_low_load"));
        assert!(table.contains("2d_mesh_turnmodel_faulted_low_load"));
    }

    #[test]
    fn fault_sets_are_deterministic() {
        let p = &SUITE[1];
        assert_eq!(p.fault_set().num_faulty_nodes(), p.faults);
        // Same placement on every call (fixed seed): membership must agree
        // node for node.
        let net = p.topology().build().unwrap();
        let (a, b) = (p.fault_set(), p.fault_set());
        for node in net.nodes() {
            assert_eq!(a.is_node_faulty(node), b.is_node_faulty(node));
        }
        assert_eq!(SUITE[0].fault_set().num_faulty_nodes(), 0);
    }

    #[test]
    fn suite_covers_mesh_and_hypercube_topologies() {
        assert!(SUITE.iter().any(|p| p.kind == TopologyKind::Mesh));
        assert!(SUITE.iter().any(|p| p.kind == TopologyKind::Hypercube));
        for p in SUITE {
            assert!(p.topology().build().is_ok(), "{}", p.name);
        }
    }

    #[test]
    fn suite_covers_both_routing_subsystems_on_valid_topologies() {
        use torus_routing::RoutingAlgorithm;
        assert!(SUITE
            .iter()
            .any(|p| p.routing == PointRouting::TurnModel && p.kind == TopologyKind::Mesh));
        assert!(SUITE
            .iter()
            .any(|p| p.routing == PointRouting::TurnModel && p.kind == TopologyKind::Hypercube));
        // Every suite point's algorithm must be supported on its topology —
        // turn-model points can only name open shapes.
        for p in SUITE {
            let net = p.topology().build().unwrap();
            assert!(
                p.routing.algorithm().supported_on(&net).is_ok(),
                "{}",
                p.name
            );
        }
    }
}
