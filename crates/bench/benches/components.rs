//! Component-level Criterion benchmarks: topology arithmetic, routing
//! decisions and raw simulator stepping. These track the performance of the
//! building blocks independently of the full experiments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use torus_faults::{random_node_faults, FaultSet};
use torus_routing::{RoutingAlgorithm, SwBasedRouting};
use torus_sim::{SimConfig, Simulation, StopCondition};
use torus_topology::{dimension_order_path, AnyTopology, Network, NodeId};

fn topology_benches(c: &mut Criterion) {
    let torus = Network::torus(8, 3).expect("valid topology");
    let mut group = c.benchmark_group("topology");
    group.bench_function("coord_roundtrip_8ary3cube", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for id in 0..torus.num_nodes() as u32 {
                let node = NodeId(id);
                let coord = torus.coord(node);
                acc = acc.wrapping_add(torus.node(&coord).expect("roundtrip").0);
            }
            black_box(acc)
        });
    });
    group.bench_function("ecube_path_8ary3cube", |b| {
        let src = NodeId(0);
        let dest = NodeId(torus.num_nodes() as u32 - 1);
        b.iter(|| black_box(dimension_order_path(&torus, src, dest).len()));
    });
    group.finish();
}

fn routing_benches(c: &mut Criterion) {
    let torus = AnyTopology::torus(8, 3).expect("valid topology");
    let mut rng = StdRng::seed_from_u64(1);
    let faults = random_node_faults(&torus, 12, &mut rng).expect("connected placement");
    let mut group = c.benchmark_group("routing");
    for (name, algo) in [
        (
            "deterministic_route_decision",
            SwBasedRouting::deterministic(),
        ),
        ("adaptive_route_decision", SwBasedRouting::adaptive()),
    ] {
        group.bench_function(name, |b| {
            let src = NodeId(3);
            let dest = NodeId(400);
            b.iter(|| {
                let mut header = algo.make_header(&torus, src, dest);
                black_box(algo.route(&torus, &faults, &mut header, src, 10))
            });
        });
    }
    group.finish();
}

fn simulator_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("step_1000_cycles_8ary2cube_V6", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper(8, 2, 6, 32, 0.008);
            cfg.stop = StopCondition::Cycles(1_000);
            cfg.max_cycles = 1_000;
            let mut sim = Simulation::new(cfg, FaultSet::new(), SwBasedRouting::adaptive())
                .expect("valid config");
            black_box(sim.run().report.delivered_messages)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    topology_benches,
    routing_benches,
    simulator_benches
);
criterion_main!(benches);
