//! Criterion benchmarks of the cycles/sec suite: every point of
//! [`torus_bench::cycles::SUITE`] stepped on the active-set engine and on the
//! full-scan reference engine. `bench_cycles` (the binary) times the same
//! points over longer runs and records them in `BENCH_cycles.json`; this
//! bench keeps the suite wired into `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use torus_bench::cycles::SUITE;
use torus_routing::SwBasedRouting;
use torus_sim::{ReferenceSimulation, Simulation};

const BENCH_CYCLES: u64 = 2_000;

fn engine_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cycles");
    group.sample_size(10);
    for point in SUITE {
        group.bench_function(&format!("active/{}", point.name), |b| {
            b.iter(|| {
                let mut sim = Simulation::new(
                    point.sim_config(BENCH_CYCLES),
                    point.fault_set(),
                    SwBasedRouting::adaptive(),
                )
                .expect("valid suite config");
                black_box(sim.run().report.delivered_messages)
            });
        });
        group.bench_function(&format!("reference/{}", point.name), |b| {
            b.iter(|| {
                let mut sim = ReferenceSimulation::new(
                    point.sim_config(BENCH_CYCLES),
                    point.fault_set(),
                    SwBasedRouting::adaptive(),
                )
                .expect("valid suite config");
                black_box(sim.run().report.delivered_messages)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
