//! Property-based CDG acyclicity tests: for randomly drawn meshes the e-cube
//! channel dependency graph is acyclic with a *single* VC per class — the
//! dateline virtual channel is provably unnecessary when no dimension wraps —
//! while randomly drawn tori always need the dateline classes. The
//! negative-first turn-rule CDG gives the same guarantee for the turn-model
//! subsystem (acyclic on every open shape, cyclic as soon as a dimension
//! wraps, and cyclic without the turn prohibition).

use proptest::prelude::*;
use torus_routing::cdg::{build_ecube_cdg, build_turn_cdg, TurnRule, VcModel};
use torus_topology::Network;

/// Random mesh shapes: 1..=3 dimensions with mixed radices, no wraps.
fn arb_mesh() -> impl Strategy<Value = Network> {
    (1usize..=3, (2u16..6, 2u16..6, 2u16..6)).prop_map(|(n, (k0, k1, k2))| {
        let radices = [k0, k1, k2][..n].to_vec();
        Network::new(radices, vec![false; n]).unwrap()
    })
}

/// Random mixed shapes with at least one wrapped dimension of radix >= 4
/// (radix-2/3 rings do not close single-class cycles under minimal routing:
/// no minimal route crosses the wrap link in the same direction twice).
fn arb_wrapped() -> impl Strategy<Value = Network> {
    (2u16..6, 4u16..6, any::<bool>()).prop_map(|(k_open, k_ring, open_first)| {
        if open_first {
            Network::new(vec![k_open, k_ring], vec![false, true]).unwrap()
        } else {
            Network::new(vec![k_ring, k_open], vec![true, false]).unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite claim: on meshes a single VC per class suffices — the
    /// single-class e-cube CDG is acyclic for every mesh shape.
    #[test]
    fn mesh_single_class_cdg_is_acyclic(net in arb_mesh()) {
        let g = build_ecube_cdg(&net, VcModel::SingleClass);
        prop_assert!(
            g.is_acyclic(),
            "single-class CDG must be acyclic on mesh {net}"
        );
        // The dateline-class graph is acyclic too, trivially.
        prop_assert!(build_ecube_cdg(&net, VcModel::DatelineClasses).is_acyclic());
    }

    /// With the dateline classes every shape — wrapped, open or mixed — has
    /// an acyclic extended CDG.
    #[test]
    fn dateline_class_cdg_is_acyclic_on_wrapped_shapes(net in arb_wrapped()) {
        let g = build_ecube_cdg(&net, VcModel::DatelineClasses);
        prop_assert!(g.num_edges() > 0);
        prop_assert!(
            g.is_acyclic(),
            "dateline-class CDG must be acyclic on {net}"
        );
    }

    /// Conversely, a wrapped dimension of radix >= 4 closes a single-class
    /// cycle: the dateline VC is necessary exactly when a dimension wraps.
    #[test]
    fn wrapped_shapes_need_the_dateline_classes(net in arb_wrapped()) {
        let g = build_ecube_cdg(&net, VcModel::SingleClass);
        prop_assert!(
            !g.is_acyclic(),
            "single-class CDG on {net} (which has a wrapped ring) must contain cycles"
        );
    }

    /// The turn-model claim: on every mixed-radix mesh the negative-first
    /// turn-rule CDG — which over-approximates all permitted routes, minimal
    /// or not — is acyclic with a single virtual channel per physical
    /// channel. This is the reduced-VC-budget deadlock-freedom proof the
    /// simulator's `min_virtual_channels` relies on.
    #[test]
    fn negative_first_turn_cdg_is_acyclic_on_meshes(net in arb_mesh()) {
        let g = build_turn_cdg(&net, TurnRule::NegativeFirst);
        prop_assert!(
            g.is_acyclic(),
            "negative-first turn CDG must be acyclic on mesh {net}"
        );
    }

    /// On shapes with at least two dimensions the prohibition is load
    /// bearing: lifting it (all turns permitted) closes cycles on the same
    /// meshes the restricted graph proves acyclic.
    #[test]
    fn unrestricted_turns_are_cyclic_on_multidim_meshes(net in arb_mesh()) {
        prop_assume!(net.dims() >= 2);
        let g = build_turn_cdg(&net, TurnRule::Unrestricted);
        prop_assert!(
            !g.is_acyclic(),
            "unrestricted turn CDG on {net} must contain cycles"
        );
    }

    /// And a wrapped ring defeats the turn model entirely: the
    /// same-direction chain around the ring is a cycle no turn prohibition
    /// breaks — the reason both engines reject the turn model on wrapped
    /// dimensions with a typed error.
    #[test]
    fn negative_first_turn_cdg_is_cyclic_on_wrapped_shapes(net in arb_wrapped()) {
        let g = build_turn_cdg(&net, TurnRule::NegativeFirst);
        prop_assert!(
            !g.is_acyclic(),
            "negative-first turn CDG on wrapped {net} must contain cycles"
        );
    }
}
