//! Duato's Protocol fully adaptive output selection.
//!
//! Duato's Protocol (DP) partitions the virtual channels of every physical
//! channel into a small *escape* set — operated exactly like deadlock-free
//! e-cube routing with dateline classes — and a larger *adaptive* set that a
//! message may use on **any** minimal (productive) output. Because a blocked
//! message can always fall back to the escape sub-network, whose extended
//! channel-dependency graph is acyclic, the whole protocol is deadlock free
//! while permitting full minimal adaptivity.
//!
//! The escape layer is wrap-aware: wrapped dimensions reserve two escape
//! channels (one per dateline class) while a pure mesh needs only one, which
//! leaves one more channel in the adaptive pool.

use crate::decision::OutputCandidate;
use crate::ecube::{ecube_output, ecube_vc_class};
use crate::header::RouteHeader;
use torus_topology::{DatelinePolicy, Direction, Network, NodeId};

/// All minimal (productive) outputs towards the header's current target:
/// one `(dim, dir)` pair per dimension with a non-zero offset. Minimal hops
/// never leave an open dimension's extent, so every productive output is an
/// existing channel on meshes too.
pub fn productive_outputs(
    net: &Network,
    header: &RouteHeader,
    current: NodeId,
) -> Vec<(usize, Direction)> {
    let target = header.target();
    (0..net.dims())
        .filter_map(|dim| {
            let off = net.offset(current, target, dim);
            Direction::from_offset(off).map(|dir| (dim, dir))
        })
        .collect()
}

/// The adaptive-routing candidate list for a header at `current` under
/// Duato's Protocol with `v` virtual channels per physical channel:
/// every healthy productive output with the adaptive VC pool, followed by the
/// e-cube escape output (if healthy) restricted to its dateline-class escape
/// VC.
///
/// The `healthy` predicate decides whether the output channel `(dim, dir)` of
/// `current` is usable; candidates whose channel is faulty are omitted.
pub fn adaptive_candidates<F>(
    net: &Network,
    header: &RouteHeader,
    current: NodeId,
    v: usize,
    healthy: F,
) -> Vec<OutputCandidate>
where
    F: Fn(usize, Direction) -> bool,
{
    let policy = DatelinePolicy::new(net);
    let adaptive_vcs: Vec<usize> = policy.adaptive_range(v).collect();
    let mut candidates = Vec::new();
    for (dim, dir) in productive_outputs(net, header, current) {
        if healthy(dim, dir) {
            candidates.push(OutputCandidate::new(dim, dir, adaptive_vcs.clone()));
        }
    }
    if let Some((dim, dir)) = ecube_output(net, header, current) {
        if healthy(dim, dir) {
            let escape_vc = policy.escape_vc(dim, ecube_vc_class(header, dim));
            candidates.push(OutputCandidate::escape(dim, dir, escape_vc));
        }
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::RoutingFlavor;

    fn torus() -> Network {
        Network::torus(8, 3).unwrap()
    }

    #[test]
    fn productive_outputs_cover_all_unresolved_dimensions() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0, 0]).unwrap();
        let dest = t.node_from_digits(&[2, 0, 6]).unwrap();
        let h = RouteHeader::new(&t, src, dest, RoutingFlavor::Adaptive);
        let prods = productive_outputs(&t, &h, src);
        assert_eq!(prods.len(), 2);
        assert!(prods.contains(&(0, Direction::Plus)));
        assert!(prods.contains(&(2, Direction::Minus)));
    }

    #[test]
    fn no_productive_outputs_at_destination() {
        let t = torus();
        let dest = t.node_from_digits(&[1, 2, 3]).unwrap();
        let h = RouteHeader::new(&t, dest, dest, RoutingFlavor::Adaptive);
        assert!(productive_outputs(&t, &h, dest).is_empty());
    }

    #[test]
    fn mesh_productive_outputs_always_exist() {
        let m = Network::mesh(4, 2).unwrap();
        let corner = m.node_from_digits(&[0, 0]).unwrap();
        let far = m.node_from_digits(&[3, 3]).unwrap();
        let h = RouteHeader::new(&m, corner, far, RoutingFlavor::Adaptive);
        for (dim, dir) in productive_outputs(&m, &h, corner) {
            assert!(m.has_channel(corner, dim, dir));
        }
        let h = RouteHeader::new(&m, far, corner, RoutingFlavor::Adaptive);
        for (dim, dir) in productive_outputs(&m, &h, far) {
            assert!(m.has_channel(far, dim, dir));
        }
    }

    #[test]
    fn candidates_include_adaptive_and_escape() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0, 0]).unwrap();
        let dest = t.node_from_digits(&[3, 2, 0]).unwrap();
        let h = RouteHeader::new(&t, src, dest, RoutingFlavor::Adaptive);
        let cands = adaptive_candidates(&t, &h, src, 6, |_, _| true);
        // two productive dims -> two adaptive candidates + one escape
        assert_eq!(cands.len(), 3);
        assert_eq!(cands.iter().filter(|c| c.is_escape).count(), 1);
        let escape = cands.iter().find(|c| c.is_escape).unwrap();
        // escape follows e-cube: lowest unresolved dimension
        assert_eq!(escape.dim, 0);
        assert_eq!(escape.vcs, vec![0]);
        for c in cands.iter().filter(|c| !c.is_escape) {
            assert_eq!(c.vcs, vec![2, 3, 4, 5]);
        }
    }

    #[test]
    fn mesh_reserves_a_single_escape_channel() {
        // A pure mesh needs only one escape class, so with the same v the
        // adaptive pool is one channel larger than on a torus.
        let m = Network::mesh(8, 2).unwrap();
        let src = m.node_from_digits(&[0, 0]).unwrap();
        let dest = m.node_from_digits(&[3, 2]).unwrap();
        let h = RouteHeader::new(&m, src, dest, RoutingFlavor::Adaptive);
        let cands = adaptive_candidates(&m, &h, src, 6, |_, _| true);
        let escape = cands.iter().find(|c| c.is_escape).unwrap();
        assert_eq!(escape.vcs, vec![0]);
        for c in cands.iter().filter(|c| !c.is_escape) {
            assert_eq!(c.vcs, vec![1, 2, 3, 4, 5]);
        }
        // Two VCs suffice for Duato's protocol on a mesh.
        let cands = adaptive_candidates(&m, &h, src, 2, |_, _| true);
        assert!(!cands.is_empty());
    }

    #[test]
    fn escape_vc_switches_after_dateline() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0, 0]).unwrap();
        let dest = t.node_from_digits(&[3, 0, 0]).unwrap();
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Adaptive);
        h.crossed_dateline[0] = true;
        let cands = adaptive_candidates(&t, &h, src, 4, |_, _| true);
        let escape = cands.iter().find(|c| c.is_escape).unwrap();
        assert_eq!(escape.vcs, vec![1]);
    }

    #[test]
    fn faulty_outputs_are_filtered() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0, 0]).unwrap();
        let dest = t.node_from_digits(&[2, 3, 0]).unwrap();
        let h = RouteHeader::new(&t, src, dest, RoutingFlavor::Adaptive);
        // Dimension 0 plus is faulty: only the dimension 1 adaptive candidate
        // and no escape (escape would have been dim 0) ... the escape layer
        // follows e-cube, which is dim 0, so it disappears as well.
        let cands = adaptive_candidates(&t, &h, src, 6, |dim, _| dim != 0);
        assert_eq!(cands.len(), 1);
        assert!(!cands[0].is_escape);
        assert_eq!(cands[0].dim, 1);
        // Nothing healthy at all -> empty list (the caller absorbs).
        let none = adaptive_candidates(&t, &h, src, 6, |_, _| false);
        assert!(none.is_empty());
    }
}
