//! Turn-model routing (negative-first, west-first and north-last) for open
//! (non-wrap) topologies.
//!
//! The turn model (Glass & Ni) achieves deadlock freedom on meshes without
//! virtual-channel classes by *prohibiting turns* instead of splitting
//! channels: negative-first routing forbids every turn from a positive
//! (Plus) channel onto a negative (Minus) channel, which breaks all channel
//! dependency cycles on open dimensions (see [`crate::cdg::build_turn_cdg`]
//! for the explicit acyclicity proof the test-suite runs). A message first
//! takes all its negative hops — in any order — and then all its positive
//! hops; once it has moved in a positive direction it never moves negatively
//! again within the same network traversal.
//!
//! The implementation is parameterised over a [`TurnRule`], i.e. a
//! per-dimension *first direction*: negative-first routes Minus first in
//! every dimension, west-first routes Minus first in dimension 0 and Plus
//! first everywhere else, north-last the exact mirror (Plus first in
//! dimension 0, Minus first above). Any such assignment is a reflection
//! (relabelling of Plus/Minus) of negative-first, so the same acyclicity
//! argument applies; the phase discipline below ("first-phase hops before
//! second-phase hops") is rule-agnostic.
//!
//! This gives the SW-Based scheme a second deterministic/escape substrate on
//! meshes, hypercubes and mixed-radix open shapes:
//!
//! * **deterministic flavour** — the canonical negative-first order (negative
//!   hops in increasing dimension order, then positive hops in increasing
//!   dimension order). One virtual channel suffices: the negative-first CDG
//!   is acyclic with a single VC class.
//! * **adaptive flavour** — minimal adaptive routing restricted to the
//!   current negative-first phase (any productive Minus hop while negative
//!   offsets remain, any productive Plus hop afterwards) on the adaptive VC
//!   pool, with the canonical negative-first output as the escape channel on
//!   VC 0. Two virtual channels suffice (1 escape + >= 1 adaptive), versus
//!   three for Duato-over-e-cube on a torus.
//!
//! Because the turn restriction replaces the dateline argument, the model is
//! only sound where no dimension wraps: a ring's same-direction dependency
//! chain closes a cycle no turn prohibition can break. Both simulator engines
//! therefore reject the algorithm on wrapped dimensions at construction time
//! with a typed [`RoutingTopologyError`]. The same check rejects indirect
//! topologies outright — turn directions are grid offsets, which a fat-tree
//! does not have.
//!
//! **Fault handling** mirrors the SW-Based software layer (Fig. 2 of the
//! paper) minus rule 1: re-routing in the same dimension, opposite direction
//! only pays off on a wrapped ring, which this model never runs on, so an
//! absorbed message goes straight to the orthogonal detour (rule 2) and
//! falls back to an explicit fault-free path (rule 3) when the misroute
//! budget is exhausted. As with the SW-Based scheme, the detour legs of a
//! faulted message may violate the turn restriction across absorption
//! boundaries; the deadlock-freedom argument for the fault-free layer (the
//! CDG analysis) matches the scope of the paper's Section 4 argument for
//! e-cube.

use crate::adaptive::productive_outputs;
use crate::cdg::TurnRule;
use crate::decision::{OutputCandidate, RouteDecision};
use crate::header::{RouteHeader, RoutingFlavor};
use crate::swbased::{expect_grid, install_explicit_path, orthogonal_order, RoutingAlgorithm};
use serde::{Deserialize, Serialize};
use std::fmt;
use torus_faults::FaultSet;
use torus_topology::{AnyTopology, Direction, Network, NodeId};

/// Typed error for routing algorithms that cannot operate on a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoutingTopologyError {
    /// The algorithm requires every dimension to be open (non-wrap), but the
    /// network wraps in the named dimension.
    WrappedDimension {
        /// Human-readable algorithm name.
        algorithm: &'static str,
        /// Shape string of the offending topology (`Network` display form,
        /// e.g. `8x8` for a wrapped 8x8 torus), parseable as a topology spec.
        shape: String,
        /// First wrapped dimension encountered.
        dim: usize,
        /// Radix of that dimension.
        radix: u16,
    },
    /// The algorithm does not operate on this topology class at all (a
    /// grid-offset scheme handed an indirect fat-tree, or the up/down scheme
    /// handed a direct grid).
    UnsupportedTopology {
        /// Human-readable algorithm name.
        algorithm: &'static str,
        /// Display form of the offending topology, parseable as a topology
        /// spec (e.g. `8x8` or `ft:4,2`).
        topology: String,
        /// What the algorithm needs instead (human-readable).
        requires: &'static str,
    },
}

impl fmt::Display for RoutingTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingTopologyError::WrappedDimension {
                algorithm,
                shape,
                dim,
                radix,
            } => write!(
                f,
                "{algorithm} routing requires open dimensions, but topology \
                 '{shape}' wraps around in dimension {dim} (radix {radix}); \
                 use a mesh/hypercube topology or Duato-over-e-cube routing"
            ),
            RoutingTopologyError::UnsupportedTopology {
                algorithm,
                topology,
                requires,
            } => write!(
                f,
                "{algorithm} routing cannot operate on topology '{topology}': \
                 it requires {requires}"
            ),
        }
    }
}

impl std::error::Error for RoutingTopologyError {}

/// The canonical turn-rule output for a header at `current`: the lowest
/// dimension with a productive hop in its first-phase direction, else the
/// lowest dimension with a productive second-phase hop.
///
/// Returns `None` when the message is already at its current routing target,
/// and must not be called with [`TurnRule::Unrestricted`] (which orders no
/// dimension). Forced-direction overrides are never consulted: they are only
/// installed by software rule 1, which requires a wrapped dimension, and this
/// model runs exclusively on open topologies.
pub fn turn_rule_output(
    net: &Network,
    rule: TurnRule,
    header: &RouteHeader,
    current: NodeId,
) -> Option<(usize, Direction)> {
    let target = header.target();
    let mut second_phase = None;
    for dim in 0..net.dims() {
        let off = net.offset(current, target, dim);
        let Some(dir) = Direction::from_offset(off) else {
            continue;
        };
        let first = rule
            .first_direction(dim)
            .expect("turn_rule_output requires a rule that orders every dimension");
        if dir == first {
            return Some((dim, dir));
        }
        if second_phase.is_none() {
            second_phase = Some((dim, dir));
        }
    }
    second_phase
}

/// The canonical negative-first output: first-phase (Minus) hops in
/// increasing dimension order, then second-phase (Plus) hops.
pub fn negative_first_output(
    net: &Network,
    header: &RouteHeader,
    current: NodeId,
) -> Option<(usize, Direction)> {
    turn_rule_output(net, TurnRule::NegativeFirst, header, current)
}

/// Turn-model routing for open multidimensional networks, parameterised over
/// the turn rule (negative-first or west-first) and the routing flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TurnModelRouting {
    flavor: RoutingFlavor,
    rule: TurnRule,
}

impl TurnModelRouting {
    /// Deterministic (canonical negative-first order) routing.
    pub fn deterministic() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Deterministic,
            rule: TurnRule::NegativeFirst,
        }
    }

    /// Phase-adaptive negative-first routing with a negative-first escape
    /// channel.
    pub fn adaptive() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Adaptive,
            rule: TurnRule::NegativeFirst,
        }
    }

    /// Deterministic west-first routing (dimension 0 routes Minus first,
    /// every higher dimension Plus first).
    pub fn west_first_deterministic() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Deterministic,
            rule: TurnRule::WestFirst,
        }
    }

    /// Phase-adaptive west-first routing with a west-first escape channel.
    pub fn west_first_adaptive() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Adaptive,
            rule: TurnRule::WestFirst,
        }
    }

    /// Deterministic north-last routing (dimension 0 routes Plus first,
    /// every higher dimension Minus first — the mirror of west-first, so the
    /// northward hops of the higher dimensions come last).
    pub fn north_last_deterministic() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Deterministic,
            rule: TurnRule::NorthLast,
        }
    }

    /// Phase-adaptive north-last routing with a north-last escape channel.
    pub fn north_last_adaptive() -> Self {
        TurnModelRouting {
            flavor: RoutingFlavor::Adaptive,
            rule: TurnRule::NorthLast,
        }
    }

    /// Constructs the negative-first algorithm for a given flavour.
    pub fn with_flavor(flavor: RoutingFlavor) -> Self {
        TurnModelRouting {
            flavor,
            rule: TurnRule::NegativeFirst,
        }
    }

    /// The turn rule this instance routes under.
    pub fn rule(&self) -> TurnRule {
        self.rule
    }

    fn rule_label(&self) -> &'static str {
        match self.rule {
            TurnRule::WestFirst => "West-First",
            TurnRule::NorthLast => "North-Last",
            _ => "Negative-First",
        }
    }

    fn algorithm_label(&self) -> &'static str {
        match self.rule {
            TurnRule::WestFirst => "west-first turn-model",
            TurnRule::NorthLast => "north-last turn-model",
            _ => "negative-first turn-model",
        }
    }

    /// Deterministic-mode routing step shared by the deterministic flavour
    /// and by faulted messages of the adaptive flavour.
    fn route_deterministic(
        &self,
        net: &Network,
        faults: &FaultSet,
        header: &RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let Some((dim, dir)) = turn_rule_output(net, self.rule, header, current) else {
            // `route` already advanced through reached targets, so a missing
            // output means the final destination.
            return RouteDecision::Deliver;
        };
        if !faults.output_usable(net, current, dim, dir) {
            return RouteDecision::Absorb;
        }
        let (vcs, is_escape) = if header.flavor == RoutingFlavor::Adaptive {
            // Faulted adaptive-flavour messages travel on the turn-rule
            // escape channel, mirroring the SW-Based scheme's use of the
            // e-cube escape layer.
            (vec![0], true)
        } else {
            // No dateline class exists on open dimensions: the whole pool is
            // permitted, and a single VC suffices (the turn-rule CDG is
            // acyclic with one class).
            ((0..v).collect(), false)
        };
        RouteDecision::Forward(vec![OutputCandidate {
            dim,
            dir,
            vcs,
            is_escape,
        }])
    }
}

impl RoutingAlgorithm for TurnModelRouting {
    fn flavor(&self) -> RoutingFlavor {
        self.flavor
    }

    fn min_virtual_channels(&self, _net: &AnyTopology) -> usize {
        match self.flavor {
            // The turn restriction alone is deadlock free: one VC suffices.
            RoutingFlavor::Deterministic => 1,
            // One negative-first escape channel plus at least one adaptive
            // channel.
            RoutingFlavor::Adaptive => 2,
        }
    }

    fn supported_on(&self, net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        let Some(grid) = net.grid() else {
            return Err(RoutingTopologyError::UnsupportedTopology {
                algorithm: self.algorithm_label(),
                topology: net.to_string(),
                requires: "a direct open grid topology (mesh/hypercube); \
                           fat-trees route with the up/down scheme",
            });
        };
        for dim in 0..grid.dims() {
            if grid.wraps(dim) {
                return Err(RoutingTopologyError::WrappedDimension {
                    algorithm: self.algorithm_label(),
                    shape: grid.to_string(),
                    dim,
                    radix: grid.radix(dim),
                });
            }
        }
        Ok(())
    }

    fn deterministic_output(
        &self,
        net: &AnyTopology,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        turn_rule_output(expect_grid(net), self.rule, header, current)
    }

    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
        RouteHeader::new(net, src, dest, self.flavor)
    }

    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let net = expect_grid(net);
        // Advance through intermediate destinations that have been reached.
        while current == header.target() {
            if header.pending_via() > 0 {
                // Reached an intermediate via host: software forwarding, as
                // in the SW-Based scheme — absorb, release every held
                // channel, re-inject towards the next target. An in-flight
                // retarget here could chain a forbidden (second-phase →
                // first-phase) turn through the via node on the escape VC.
                return RouteDecision::Absorb;
            }
            if header.advance_target(current) {
                return RouteDecision::Deliver;
            }
        }
        if header.is_deterministic() {
            return self.route_deterministic(net, faults, header, current, v);
        }
        // Adaptive flavour, not yet faulted: any productive output of the
        // current turn-rule phase on the adaptive VC pool. While any
        // productive first-phase hop remains only first-phase hops are legal;
        // afterwards the remaining productive hops are all second-phase, so a
        // first-phase hop can never follow a second-phase hop towards the
        // same target (offsets shrink monotonically under minimal routing).
        let rule = self.rule;
        let in_first_phase = |&(dim, dir): &(usize, Direction)| {
            rule.first_direction(dim)
                .expect("turn-model rules order every dimension")
                == dir
        };
        let prods = productive_outputs(net, header, current);
        let first_phase = prods.iter().any(in_first_phase);
        let adaptive_vcs: Vec<usize> = (1..v).collect();
        let mut candidates: Vec<OutputCandidate> = prods
            .into_iter()
            .filter(|hop| !first_phase || in_first_phase(hop))
            .filter(|&(dim, dir)| faults.output_usable(net, current, dim, dir))
            .map(|(dim, dir)| OutputCandidate::new(dim, dir, adaptive_vcs.clone()))
            .collect();
        if let Some((dim, dir)) = turn_rule_output(net, rule, header, current) {
            if faults.output_usable(net, current, dim, dir) {
                candidates.push(OutputCandidate::escape(dim, dir, 0));
            }
        }
        if candidates.is_empty() {
            return RouteDecision::Absorb;
        }
        RouteDecision::Forward(candidates)
    }

    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        header.note_hop(net, from, dim, dir);
    }

    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        let net = expect_grid(net);
        // Software forwarding: absorbed at a reached intermediate via host,
        // not at a new fault — pop the reached target(s) and re-inject.
        if at == header.target() && header.pending_via() > 0 {
            header.absorptions += 1;
            while at == header.target() && header.pending_via() > 0 {
                header.advance_target(at);
            }
            return true;
        }

        header.absorptions += 1;
        header.faulted = true;

        // Rule 3 (fallback): out of budget, or already escorted yet absorbed
        // again — compute an explicit fault-free path.
        if header.escorted || header.misroute_budget == 0 {
            return install_explicit_path(net, faults, header, at);
        }
        header.misroute_budget -= 1;

        // Rule 1 (same dimension, opposite direction) is skipped outright:
        // it only reaches the target the "wrong way round" a ring, and this
        // model never runs on wrapped dimensions.

        // Rule 2: orthogonal detour to slide along the fault region.
        // `output_usable` is false for channels that do not exist, so mesh
        // edges are skipped naturally.
        let (blocked_dim, _) = blocked;
        for o in orthogonal_order(net.dims(), blocked_dim) {
            for cand_dir in Direction::BOTH {
                if !faults.output_usable(net, at, o, cand_dir) {
                    continue;
                }
                let via = net
                    .neighbor(at, o, cand_dir)
                    .expect("usable output leads to an existing neighbour");
                if faults.is_node_faulty(via) {
                    continue;
                }
                header.push_intermediate(via);
                return true;
            }
        }

        // Walled in except for the arrival channel: fall back to the explicit
        // path, which exists as long as the network is connected.
        install_explicit_path(net, faults, header, at)
    }

    fn name(&self) -> String {
        format!("{} ({})", self.rule_label(), self.flavor.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> AnyTopology {
        AnyTopology::mesh(8, 2).unwrap()
    }

    fn no_faults() -> FaultSet {
        FaultSet::new()
    }

    /// Node id from grid digits (tests only run the model on grids).
    fn node(t: &AnyTopology, digits: &[u16]) -> NodeId {
        t.grid().unwrap().node_from_digits(digits).unwrap()
    }

    /// Walks a message with the given algorithm, always taking the first
    /// candidate, and returns the nodes visited. Panics on Absorb.
    fn walk(
        net: &AnyTopology,
        faults: &FaultSet,
        algo: &TurnModelRouting,
        src: NodeId,
        dest: NodeId,
        v: usize,
    ) -> Vec<NodeId> {
        let mut header = algo.make_header(net, src, dest);
        let mut current = src;
        let mut visited = vec![src];
        for _ in 0..10_000 {
            match algo.route(net, faults, &mut header, current, v) {
                RouteDecision::Deliver => return visited,
                RouteDecision::Absorb => panic!("unexpected absorption at {current:?}"),
                RouteDecision::Forward(cands) => {
                    let c = &cands[0];
                    algo.note_hop(net, &mut header, current, c.dim, c.dir);
                    current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                    visited.push(current);
                }
            }
        }
        panic!("message did not arrive");
    }

    /// Asserts a hop sequence never takes a Minus hop after a Plus hop.
    fn assert_negative_first(net: &Network, visited: &[NodeId]) {
        let mut seen_plus = false;
        for pair in visited.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let dim = (0..net.dims())
                .find(|&d| net.position(from, d) != net.position(to, d))
                .expect("consecutive nodes differ in exactly one dimension");
            let plus = net.position(to, dim) > net.position(from, dim);
            if plus {
                seen_plus = true;
            } else {
                assert!(!seen_plus, "Minus hop after a Plus hop in {visited:?}");
            }
        }
    }

    #[test]
    fn canonical_output_routes_negative_phase_first() {
        let m = mesh();
        let g = m.grid().unwrap();
        let src = node(&m, &[3, 5]);
        let dest = node(&m, &[5, 2]);
        let h = RouteHeader::new(&m, src, dest, RoutingFlavor::Deterministic);
        // Offset is (+2, -3): the negative dimension-1 offset goes first.
        assert_eq!(
            negative_first_output(g, &h, src),
            Some((1, Direction::Minus))
        );
        let mid = node(&m, &[3, 2]);
        assert_eq!(
            negative_first_output(g, &h, mid),
            Some((0, Direction::Plus))
        );
        assert_eq!(negative_first_output(g, &h, dest), None);
    }

    #[test]
    fn deterministic_walk_is_minimal_and_obeys_the_turn_restriction() {
        let m = mesh();
        let algo = TurnModelRouting::deterministic();
        for (s, d) in [([1u16, 6], [6u16, 1]), ([7, 0], [0, 7]), ([2, 2], [5, 5])] {
            let src = node(&m, &s);
            let dest = node(&m, &d);
            let visited = walk(&m, &no_faults(), &algo, src, dest, 1);
            assert_eq!(visited.len() as u32 - 1, m.distance(src, dest));
            assert_eq!(*visited.last().unwrap(), dest);
            assert_negative_first(m.grid().unwrap(), &visited);
        }
    }

    #[test]
    fn adaptive_walk_is_minimal_and_obeys_the_turn_restriction() {
        let m = mesh();
        let algo = TurnModelRouting::adaptive();
        let src = node(&m, &[6, 5]);
        let dest = node(&m, &[1, 0]);
        let visited = walk(&m, &no_faults(), &algo, src, dest, 2);
        assert_eq!(visited.len() as u32 - 1, m.distance(src, dest));
        assert_negative_first(m.grid().unwrap(), &visited);
    }

    #[test]
    fn adaptive_candidates_restricted_to_the_negative_phase() {
        let m = mesh();
        let algo = TurnModelRouting::adaptive();
        let src = node(&m, &[3, 5]);
        let dest = node(&m, &[5, 2]);
        let mut h = algo.make_header(&m, src, dest);
        let d = algo.route(&m, &no_faults(), &mut h, src, 3);
        let cands = d.candidates();
        // Offset (+2, -3): while the negative offset remains, the productive
        // Plus hop in dimension 0 is forbidden.
        assert!(cands
            .iter()
            .all(|c| c.dim == 1 && c.dir == Direction::Minus));
        let escape = cands.iter().find(|c| c.is_escape).unwrap();
        assert_eq!(escape.vcs, vec![0]);
        for c in cands.iter().filter(|c| !c.is_escape) {
            assert_eq!(c.vcs, vec![1, 2]);
        }
        // Once the negative phase is done, Plus hops open up.
        let mid = node(&m, &[3, 2]);
        let d = algo.route(&m, &no_faults(), &mut h, mid, 3);
        assert!(d
            .candidates()
            .iter()
            .all(|c| c.dim == 0 && c.dir == Direction::Plus));
    }

    #[test]
    fn deterministic_flavor_uses_the_whole_pool() {
        let m = mesh();
        let algo = TurnModelRouting::deterministic();
        let src = node(&m, &[0, 0]);
        let dest = node(&m, &[3, 0]);
        let mut h = algo.make_header(&m, src, dest);
        let d = algo.route(&m, &no_faults(), &mut h, src, 4);
        let cands = d.candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].vcs, vec![0, 1, 2, 3]);
        assert!(!cands[0].is_escape);
    }

    #[test]
    fn faulted_adaptive_messages_ride_the_escape_channel() {
        let m = mesh();
        let algo = TurnModelRouting::adaptive();
        let src = node(&m, &[0, 0]);
        let dest = node(&m, &[4, 0]);
        let mut h = algo.make_header(&m, src, dest);
        h.faulted = true;
        let d = algo.route(&m, &no_faults(), &mut h, src, 3);
        match d {
            RouteDecision::Forward(cands) => {
                assert_eq!(cands.len(), 1);
                assert_eq!(cands[0].vcs, vec![0]);
                assert!(cands[0].is_escape);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn absorbs_at_fault_and_absorbs_only_when_all_phase_outputs_faulty() {
        let m = mesh();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[2, 0]));
        let det = TurnModelRouting::deterministic();
        let src = node(&m, &[1, 0]);
        let dest = node(&m, &[4, 0]);
        let mut h = det.make_header(&m, src, dest);
        assert!(det.route(&m, &faults, &mut h, src, 2).is_absorb());

        // The adaptive flavour still forwards while another phase-legal
        // productive output is healthy.
        let ada = TurnModelRouting::adaptive();
        let dest2 = node(&m, &[4, 2]);
        let mut h = ada.make_header(&m, src, dest2);
        let d = ada.route(&m, &faults, &mut h, src, 2);
        assert!(!d.candidates().is_empty());
        assert!(d
            .candidates()
            .iter()
            .all(|c| !(c.dim == 0 && c.dir == Direction::Plus && !c.is_escape)));
    }

    #[test]
    fn reroute_goes_straight_to_the_orthogonal_detour() {
        let m = mesh();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[2, 0]));
        let algo = TurnModelRouting::deterministic();
        let at = node(&m, &[1, 0]);
        let dest = node(&m, &[4, 0]);
        let mut header = algo.make_header(&m, at, dest);
        assert!(algo.reroute_on_fault(&m, &faults, &mut header, at, (0, Direction::Plus)));
        assert!(header.faulted);
        assert_eq!(header.absorptions, 1);
        // No rule-1 forced direction is ever installed on open dimensions.
        assert!(header.forced_dir.iter().all(Option::is_none));
        assert_eq!(header.pending_via(), 1);
        // From row 0 the only open orthogonal direction is Plus in dim 1.
        assert_eq!(header.target(), node(&m, &[1, 1]));
    }

    #[test]
    fn reroute_falls_back_to_explicit_path_when_budget_exhausted() {
        let m = mesh();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[3, 3]));
        let algo = TurnModelRouting::deterministic();
        let at = node(&m, &[3, 2]);
        let dest = node(&m, &[3, 5]);
        let mut header = algo.make_header(&m, at, dest);
        header.misroute_budget = 0;
        assert!(algo.reroute_on_fault(&m, &faults, &mut header, at, (1, Direction::Plus)));
        assert!(header.escorted);
    }

    #[test]
    fn routes_around_a_fault_end_to_end() {
        // Full software loop: route, absorb, re-route, re-inject until
        // delivery, on a mesh and on a hypercube. The faulty node sits on the
        // canonical negative-first path in each case.
        let cases = [
            (
                AnyTopology::mesh(8, 2).unwrap(),
                &[1u16, 0][..],
                &[4, 0][..],
                &[3, 0][..],
            ),
            (
                AnyTopology::hypercube(4).unwrap(),
                &[0, 0, 0, 0][..],
                &[1, 1, 0, 0][..],
                &[1, 0, 0, 0][..],
            ),
        ];
        for (net, src, dest, blocker) in cases {
            let mut faults = FaultSet::new();
            faults.fail_node(node(&net, blocker));
            for algo in [
                TurnModelRouting::deterministic(),
                TurnModelRouting::adaptive(),
            ] {
                let src = node(&net, src);
                let dest = node(&net, dest);
                let mut header = algo.make_header(&net, src, dest);
                let mut current = src;
                let mut steps = 0;
                loop {
                    steps += 1;
                    assert!(steps < 1000, "livelock: message never delivered");
                    match algo.route(&net, &faults, &mut header, current, 2) {
                        RouteDecision::Deliver => break,
                        RouteDecision::Forward(cands) => {
                            let c = &cands[0];
                            algo.note_hop(&net, &mut header, current, c.dim, c.dir);
                            current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                            assert!(!faults.is_node_faulty(current));
                        }
                        RouteDecision::Absorb => {
                            let blocked = algo
                                .deterministic_output(&net, &header, current)
                                .unwrap_or((0, Direction::Plus));
                            assert!(algo.reroute_on_fault(
                                &net,
                                &faults,
                                &mut header,
                                current,
                                blocked
                            ));
                            header.reset_for_injection();
                        }
                    }
                }
                assert_eq!(current, dest, "{}", algo.name());
            }
        }
    }

    #[test]
    fn supported_on_rejects_wrapped_dimensions() {
        let algo = TurnModelRouting::adaptive();
        assert_eq!(algo.supported_on(&AnyTopology::mesh(8, 2).unwrap()), Ok(()));
        assert_eq!(
            algo.supported_on(&AnyTopology::hypercube(6).unwrap()),
            Ok(())
        );
        let torus = AnyTopology::torus(8, 2).unwrap();
        assert_eq!(
            algo.supported_on(&torus),
            Err(RoutingTopologyError::WrappedDimension {
                algorithm: "negative-first turn-model",
                shape: "8x8".into(),
                dim: 0,
                radix: 8,
            })
        );
        // A single wrapped dimension anywhere is enough, and the error names
        // it precisely.
        let mixed =
            AnyTopology::Grid(Network::new(vec![4, 6, 3], vec![false, true, false]).unwrap());
        match algo.supported_on(&mixed) {
            Err(RoutingTopologyError::WrappedDimension {
                shape, dim, radix, ..
            }) => {
                assert_eq!((dim, radix), (1, 6));
                assert_eq!(shape, "4ox6x3o");
            }
            other => panic!("expected WrappedDimension, got {other:?}"),
        }
        // The message is self-describing: it names the topology shape and
        // the rejecting algorithm.
        let err = algo.supported_on(&torus).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("wraps around"));
        assert!(msg.contains("'8x8'"));
        assert!(msg.contains("negative-first turn-model"));
        let wf_err = TurnModelRouting::west_first_adaptive()
            .supported_on(&torus)
            .unwrap_err();
        assert!(format!("{wf_err}").contains("west-first turn-model"));
    }

    #[test]
    fn supported_on_rejects_fat_trees() {
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let err = TurnModelRouting::adaptive().supported_on(&ft).unwrap_err();
        match &err {
            RoutingTopologyError::UnsupportedTopology {
                algorithm,
                topology,
                ..
            } => {
                assert_eq!(*algorithm, "negative-first turn-model");
                assert_eq!(topology, "ft:4,2");
            }
            other => panic!("expected UnsupportedTopology, got {other:?}"),
        }
        let msg = format!("{err}");
        assert!(msg.contains("cannot operate on topology 'ft:4,2'"));
    }

    /// Asserts a hop sequence never takes a first-phase hop (under `rule`)
    /// after a second-phase hop.
    fn assert_obeys_rule(net: &Network, rule: TurnRule, visited: &[NodeId]) {
        let mut seen_second_phase = false;
        for pair in visited.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let dim = (0..net.dims())
                .find(|&d| net.position(from, d) != net.position(to, d))
                .expect("consecutive nodes differ in exactly one dimension");
            let dir = if net.position(to, dim) > net.position(from, dim) {
                Direction::Plus
            } else {
                Direction::Minus
            };
            if Some(dir) == rule.first_direction(dim) {
                assert!(
                    !seen_second_phase,
                    "first-phase hop after a second-phase hop in {visited:?}"
                );
            } else {
                seen_second_phase = true;
            }
        }
    }

    #[test]
    fn west_first_walks_are_minimal_and_obey_the_rule() {
        let m = mesh();
        for (algo, v) in [
            (TurnModelRouting::west_first_deterministic(), 1),
            (TurnModelRouting::west_first_adaptive(), 2),
        ] {
            for (s, d) in [([1u16, 6], [6u16, 1]), ([7, 0], [0, 7]), ([5, 5], [2, 2])] {
                let src = node(&m, &s);
                let dest = node(&m, &d);
                let visited = walk(&m, &no_faults(), &algo, src, dest, v);
                assert_eq!(visited.len() as u32 - 1, m.distance(src, dest));
                assert_eq!(*visited.last().unwrap(), dest);
                assert_obeys_rule(m.grid().unwrap(), TurnRule::WestFirst, &visited);
            }
        }
    }

    #[test]
    fn west_first_routes_west_before_everything_else() {
        let m = mesh();
        let algo = TurnModelRouting::west_first_deterministic();
        // Offset (-2, -3): west (dim 0 Minus) is first phase, south (dim 1
        // Minus) is second phase — dim 0 must be exhausted first.
        let src = node(&m, &[4, 5]);
        let dest = node(&m, &[2, 2]);
        let h = algo.make_header(&m, src, dest);
        assert_eq!(
            algo.deterministic_output(&m, &h, src),
            Some((0, Direction::Minus))
        );
        // Offset (+2, +3): both hops are eastward/northward; north (dim 1
        // Plus) is first phase under west-first, east (dim 0 Plus) second.
        let src2 = node(&m, &[2, 2]);
        let dest2 = node(&m, &[4, 5]);
        let h2 = algo.make_header(&m, src2, dest2);
        assert_eq!(
            algo.deterministic_output(&m, &h2, src2),
            Some((1, Direction::Plus))
        );
    }

    #[test]
    fn west_first_routes_around_a_fault() {
        let m = mesh();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[3, 0]));
        for algo in [
            TurnModelRouting::west_first_deterministic(),
            TurnModelRouting::west_first_adaptive(),
        ] {
            let src = node(&m, &[4, 0]);
            let dest = node(&m, &[1, 0]);
            let mut header = algo.make_header(&m, src, dest);
            let mut current = src;
            let mut steps = 0;
            loop {
                steps += 1;
                assert!(steps < 1000, "livelock: message never delivered");
                match algo.route(&m, &faults, &mut header, current, 2) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(&m, &mut header, current, c.dim, c.dir);
                        current = m.neighbor(current, c.dim, c.dir).expect("existing hop");
                        assert!(!faults.is_node_faulty(current));
                    }
                    RouteDecision::Absorb => {
                        let blocked = algo
                            .deterministic_output(&m, &header, current)
                            .unwrap_or((0, Direction::Plus));
                        assert!(algo.reroute_on_fault(&m, &faults, &mut header, current, blocked));
                        header.reset_for_injection();
                    }
                }
            }
            assert_eq!(current, dest, "{}", algo.name());
        }
    }

    #[test]
    fn north_last_walks_are_minimal_and_obey_the_rule() {
        let m = mesh();
        for (algo, v) in [
            (TurnModelRouting::north_last_deterministic(), 1),
            (TurnModelRouting::north_last_adaptive(), 2),
        ] {
            for (s, d) in [([1u16, 6], [6u16, 1]), ([7, 0], [0, 7]), ([5, 5], [2, 2])] {
                let src = node(&m, &s);
                let dest = node(&m, &d);
                let visited = walk(&m, &no_faults(), &algo, src, dest, v);
                assert_eq!(visited.len() as u32 - 1, m.distance(src, dest));
                assert_eq!(*visited.last().unwrap(), dest);
                assert_obeys_rule(m.grid().unwrap(), TurnRule::NorthLast, &visited);
            }
        }
    }

    #[test]
    fn north_last_routes_north_after_everything_else() {
        let m = mesh();
        let algo = TurnModelRouting::north_last_deterministic();
        // Offset (+2, +3): east (dim 0 Plus) is first phase under north-last,
        // north (dim 1 Plus) is second phase — dim 0 must be exhausted first.
        let src = node(&m, &[2, 2]);
        let dest = node(&m, &[4, 5]);
        let h = algo.make_header(&m, src, dest);
        assert_eq!(
            algo.deterministic_output(&m, &h, src),
            Some((0, Direction::Plus))
        );
        // Offset (-2, +3): west and north are both second phase; with no
        // first-phase hop available the lowest second-phase dimension (west)
        // goes first.
        let src2 = node(&m, &[4, 2]);
        let dest2 = node(&m, &[2, 5]);
        let h2 = algo.make_header(&m, src2, dest2);
        assert_eq!(
            algo.deterministic_output(&m, &h2, src2),
            Some((0, Direction::Minus))
        );
        // Offset (+2, -3): both east and south are first phase; lowest
        // dimension wins.
        let src3 = node(&m, &[2, 5]);
        let dest3 = node(&m, &[4, 2]);
        let h3 = algo.make_header(&m, src3, dest3);
        assert_eq!(
            algo.deterministic_output(&m, &h3, src3),
            Some((0, Direction::Plus))
        );
    }

    #[test]
    fn north_last_routes_around_a_fault() {
        let m = mesh();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[3, 0]));
        for algo in [
            TurnModelRouting::north_last_deterministic(),
            TurnModelRouting::north_last_adaptive(),
        ] {
            let src = node(&m, &[1, 0]);
            let dest = node(&m, &[4, 0]);
            let mut header = algo.make_header(&m, src, dest);
            let mut current = src;
            let mut steps = 0;
            loop {
                steps += 1;
                assert!(steps < 1000, "livelock: message never delivered");
                match algo.route(&m, &faults, &mut header, current, 2) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(&m, &mut header, current, c.dim, c.dir);
                        current = m.neighbor(current, c.dim, c.dir).expect("existing hop");
                        assert!(!faults.is_node_faulty(current));
                    }
                    RouteDecision::Absorb => {
                        let blocked = algo
                            .deterministic_output(&m, &header, current)
                            .unwrap_or((0, Direction::Plus));
                        assert!(algo.reroute_on_fault(&m, &faults, &mut header, current, blocked));
                        header.reset_for_injection();
                    }
                }
            }
            assert_eq!(current, dest, "{}", algo.name());
        }
    }

    #[test]
    fn min_virtual_channels_and_names() {
        let m = mesh();
        assert_eq!(
            TurnModelRouting::deterministic().min_virtual_channels(&m),
            1
        );
        assert_eq!(TurnModelRouting::adaptive().min_virtual_channels(&m), 2);
        assert_eq!(
            TurnModelRouting::deterministic().name(),
            "Negative-First (deterministic)"
        );
        assert_eq!(
            TurnModelRouting::adaptive().name(),
            "Negative-First (adaptive)"
        );
        assert_eq!(
            TurnModelRouting::west_first_deterministic().name(),
            "West-First (deterministic)"
        );
        assert_eq!(
            TurnModelRouting::west_first_adaptive().name(),
            "West-First (adaptive)"
        );
        assert_eq!(
            TurnModelRouting::west_first_adaptive().min_virtual_channels(&m),
            2
        );
        assert_eq!(
            TurnModelRouting::north_last_deterministic().name(),
            "North-Last (deterministic)"
        );
        assert_eq!(
            TurnModelRouting::north_last_adaptive().name(),
            "North-Last (adaptive)"
        );
        assert_eq!(
            TurnModelRouting::north_last_adaptive().rule(),
            TurnRule::NorthLast
        );
        assert_eq!(
            TurnModelRouting::north_last_deterministic().min_virtual_channels(&m),
            1
        );
        assert_eq!(
            TurnModelRouting::with_flavor(RoutingFlavor::Adaptive).flavor(),
            RoutingFlavor::Adaptive
        );
        assert_eq!(
            TurnModelRouting::with_flavor(RoutingFlavor::Adaptive).rule(),
            TurnRule::NegativeFirst
        );
        assert_eq!(
            TurnModelRouting::west_first_adaptive().rule(),
            TurnRule::WestFirst
        );
    }

    #[test]
    fn deterministic_output_hook_is_negative_first() {
        let m = mesh();
        let algo = TurnModelRouting::deterministic();
        let src = node(&m, &[3, 5]);
        let dest = node(&m, &[5, 2]);
        let h = algo.make_header(&m, src, dest);
        assert_eq!(
            algo.deterministic_output(&m, &h, src),
            Some((1, Direction::Minus))
        );
        // The e-cube output for the same header would be (0, Plus): the hook
        // matters for the blocked-output reported at absorption time.
        assert_eq!(
            crate::ecube::ecube_output(m.grid().unwrap(), &h, src),
            Some((0, Direction::Plus))
        );
    }
}
