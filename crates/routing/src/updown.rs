//! Up*/down* routing for k-ary l-level fat-trees.
//!
//! A fat-tree message first climbs ([`Direction::Plus`] hops) to the lowest
//! switch that is a common ancestor of source and destination, then descends
//! ([`Direction::Minus`] hops) along the unique down-path into the
//! destination's subtree. Because every legal route is of the form
//! `up* down*`, ordering all up-channels before all down-channels makes the
//! channel dependency graph acyclic — the classical up/down deadlock-freedom
//! argument, which the verifier re-establishes machine-checked through the
//! same exact-CDG pipeline used for the grid schemes.
//!
//! Two flavours mirror the SW-Based scheme's structure:
//!
//! * **deterministic flavour** ([`UpDownRouting::deterministic`]) — the
//!   ascent is pinned to the destination-aligned parent (the parent whose
//!   switch-index digit at the current level matches the destination's),
//!   yielding one canonical minimal path per pair. One virtual channel
//!   suffices: the up/down CDG is acyclic with a single VC class.
//! * **adaptive flavour** ([`UpDownRouting::adaptive`]) — *any* live parent
//!   is a valid ascent (every parent leads to some common ancestor at the
//!   same meeting level, so all up-choices are minimal); the descent is
//!   unique either way. Adaptive hops ride VCs `1..v` with the deterministic
//!   up/down output as the escape channel on VC 0, so two virtual channels
//!   suffice.
//!
//! **Fault handling** adapts the Software-Based rules to the indirect
//! topology. When the chosen output leads to a dead link or switch the
//! message is absorbed and the software layer rewrites the header:
//!
//! 1. *dead up-link or parent switch* — re-ascend through an alternate live
//!    parent (installed as an intermediate destination). This preserves the
//!    `up* down*` discipline: the message was still in its up-phase, and any
//!    parent is a valid ascent.
//! 2. *dead down-link or child switch* — re-ascending after a down-hop would
//!    break the up/down order, so the software layer immediately computes an
//!    explicit fault-free path (rule 3 of the paper's scheme); the escorted
//!    message is absorbed and re-injected at every via host, which releases
//!    all held channels and keeps the dependency chains acyclic.
//! 3. With the misroute budget exhausted, rule 3 applies directly; when the
//!    destination is unreachable (the fault set disconnects the tree —
//!    possible on fat-trees, where a leaf switch is a single point of
//!    failure), `reroute_on_fault` reports `false` and the message is
//!    dropped.
//!
//! Like the grid schemes rejecting fat-trees, [`UpDownRouting`] rejects
//! direct grids at construction time with a typed
//! [`RoutingTopologyError::UnsupportedTopology`].

use crate::decision::{OutputCandidate, RouteDecision};
use crate::header::{RouteHeader, RoutingFlavor};
use crate::swbased::{install_explicit_path, RoutingAlgorithm};
use crate::turnmodel::RoutingTopologyError;
use serde::{Deserialize, Serialize};
use torus_faults::FaultSet;
use torus_topology::{AnyTopology, Direction, FatTree, FatTreeNode, NodeId};

/// Downcast used by the up/down scheme after `supported_on` has validated
/// the topology at construction time.
fn expect_fat_tree(net: &AnyTopology) -> &FatTree {
    net.fat_tree().expect(
        "up/down routing invoked on a direct grid (supported_on rejects this at construction)",
    )
}

/// Destination-aligned digit: the base-k digit at `pos` of `node`'s switch
/// index (for endpoints, of the leaf switch's index). Drives the canonical
/// deterministic ascent.
fn aligned_digit(ft: &FatTree, node: NodeId, pos: u32) -> u32 {
    let k = u32::from(ft.arity());
    let index = match ft.classify(node) {
        FatTreeNode::Endpoint(p) => p / k,
        FatTreeNode::Switch { index, .. } => index,
    };
    (index / k.pow(pos)) % k
}

/// The unique down-port of `current` whose subtree contains `target`, when
/// `current` is an ancestor of `target` (in the [`FatTree::descends_to`]
/// sense) and not `target` itself.
fn down_port_towards(ft: &FatTree, current: NodeId, target: NodeId) -> Option<usize> {
    (0..ft.dims()).find(|&t| {
        ft.neighbor(current, t, Direction::Minus)
            .is_some_and(|child| ft.descends_to(child, target))
    })
}

/// The canonical deterministic up/down output for a header at `current`:
/// the unique down-port while `current` is an ancestor of the target, the
/// destination-aligned up-port otherwise. Returns `None` when the message is
/// already at its current routing target.
pub fn updown_output(
    ft: &FatTree,
    header: &RouteHeader,
    current: NodeId,
) -> Option<(usize, Direction)> {
    let target = header.target();
    if current == target {
        return None;
    }
    if ft.descends_to(current, target) {
        let t = down_port_towards(ft, current, target)
            .expect("an ancestor always has a down-port towards its descendant");
        return Some((t, Direction::Minus));
    }
    match ft.classify(current) {
        FatTreeNode::Endpoint(p) => {
            // The single up-port of an endpoint carries index p mod k.
            Some(((p % u32::from(ft.arity())) as usize, Direction::Plus))
        }
        FatTreeNode::Switch { level, index } => {
            // Ascend towards the parent whose digit at this level matches the
            // target's. Top switches descend to everything, so an up-port
            // always exists here.
            let k = u32::from(ft.arity());
            let w_lev = (index / k.pow(level)) % k;
            let t = ((w_lev + aligned_digit(ft, target, level)) % k) as usize;
            debug_assert!(ft.has_channel(current, t, Direction::Plus));
            Some((t, Direction::Plus))
        }
    }
}

/// Up*/down* routing on k-ary l-level fat-trees, in deterministic and
/// adaptive flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpDownRouting {
    flavor: RoutingFlavor,
}

impl UpDownRouting {
    /// Deterministic up/down routing (destination-aligned ascent).
    pub fn deterministic() -> Self {
        UpDownRouting {
            flavor: RoutingFlavor::Deterministic,
        }
    }

    /// Adaptive up/down routing (any live parent on the ascent) with a
    /// deterministic up/down escape channel.
    pub fn adaptive() -> Self {
        UpDownRouting {
            flavor: RoutingFlavor::Adaptive,
        }
    }

    /// Constructs the algorithm for a given flavour.
    pub fn with_flavor(flavor: RoutingFlavor) -> Self {
        UpDownRouting { flavor }
    }

    /// Deterministic-mode routing step shared by the deterministic flavour
    /// and by faulted messages of the adaptive flavour.
    fn route_deterministic(
        &self,
        ft: &FatTree,
        faults: &FaultSet,
        header: &RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let Some((dim, dir)) = updown_output(ft, header, current) else {
            // `route` already advanced through reached targets, so a missing
            // output means the final destination.
            return RouteDecision::Deliver;
        };
        if !faults.output_usable(ft, current, dim, dir) {
            return RouteDecision::Absorb;
        }
        let (vcs, is_escape) = if header.flavor == RoutingFlavor::Adaptive {
            // Faulted adaptive-flavour messages travel on the up/down escape
            // channel, mirroring the grid schemes' escape layers.
            (vec![0], true)
        } else {
            // The up/down order alone is deadlock free: the whole pool is
            // permitted with a single VC class.
            ((0..v).collect(), false)
        };
        RouteDecision::Forward(vec![OutputCandidate {
            dim,
            dir,
            vcs,
            is_escape,
        }])
    }
}

impl RoutingAlgorithm for UpDownRouting {
    fn flavor(&self) -> RoutingFlavor {
        self.flavor
    }

    fn min_virtual_channels(&self, _net: &AnyTopology) -> usize {
        match self.flavor {
            // The up*/down* channel order alone is deadlock free.
            RoutingFlavor::Deterministic => 1,
            // One up/down escape channel plus at least one adaptive channel.
            RoutingFlavor::Adaptive => 2,
        }
    }

    fn supported_on(&self, net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        if net.fat_tree().is_none() {
            return Err(RoutingTopologyError::UnsupportedTopology {
                algorithm: "up/down",
                topology: net.to_string(),
                requires: "an indirect fat-tree topology (ft:k,l); \
                           grids route with the SW-Based or turn-model schemes",
            });
        }
        Ok(())
    }

    fn deterministic_output(
        &self,
        net: &AnyTopology,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        updown_output(expect_fat_tree(net), header, current)
    }

    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
        RouteHeader::new(net, src, dest, self.flavor)
    }

    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let ft = expect_fat_tree(net);
        // Advance through intermediate destinations that have been reached.
        while current == header.target() {
            if header.pending_via() > 0 {
                // Reached an intermediate via target: software forwarding, as
                // in the grid schemes — absorb, release every held channel,
                // re-inject towards the next target. The release is what lets
                // an escorted fat-tree path alternate between descents and
                // ascents without closing an up/down dependency cycle.
                return RouteDecision::Absorb;
            }
            if header.advance_target(current) {
                return RouteDecision::Deliver;
            }
        }
        if header.is_deterministic() {
            return self.route_deterministic(ft, faults, header, current, v);
        }
        // Adaptive flavour, not yet faulted. On the descent the next hop is
        // unique; on the ascent every live parent is minimal (all parents
        // reach a common ancestor at the same meeting level).
        let target = header.target();
        let adaptive_vcs: Vec<usize> = (1..v).collect();
        let mut candidates: Vec<OutputCandidate> = if ft.descends_to(current, target) {
            down_port_towards(ft, current, target)
                .into_iter()
                .filter(|&t| faults.output_usable(ft, current, t, Direction::Minus))
                .map(|t| OutputCandidate::new(t, Direction::Minus, adaptive_vcs.clone()))
                .collect()
        } else {
            ft.parents(current)
                .into_iter()
                .filter(|&(t, parent)| {
                    faults.output_usable(ft, current, t, Direction::Plus)
                        && !faults.is_node_faulty(parent)
                })
                .map(|(t, _)| OutputCandidate::new(t, Direction::Plus, adaptive_vcs.clone()))
                .collect()
        };
        if let Some((dim, dir)) = updown_output(ft, header, current) {
            if faults.output_usable(ft, current, dim, dir) {
                candidates.push(OutputCandidate::escape(dim, dir, 0));
            }
        }
        if candidates.is_empty() {
            return RouteDecision::Absorb;
        }
        RouteDecision::Forward(candidates)
    }

    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        header.note_hop(net, from, dim, dir);
    }

    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        let ft = expect_fat_tree(net);
        // Software forwarding: absorbed at a reached intermediate via target,
        // not at a new fault — pop the reached target(s) and re-inject.
        if at == header.target() && header.pending_via() > 0 {
            header.absorptions += 1;
            while at == header.target() && header.pending_via() > 0 {
                header.advance_target(at);
            }
            return true;
        }

        header.absorptions += 1;
        header.faulted = true;

        // Rule 3 (fallback): out of budget, or already escorted yet absorbed
        // again — compute an explicit fault-free path.
        if header.escorted || header.misroute_budget == 0 {
            return install_explicit_path(ft, faults, header, at);
        }

        // Rule 1 (fat-tree form): a dead up-link or parent switch is survived
        // by re-ascending through any alternate live parent — the message is
        // still in its up-phase, so the up*/down* discipline is preserved.
        let (blocked_dim, blocked_dir) = blocked;
        if blocked_dir == Direction::Plus {
            header.misroute_budget -= 1;
            for (t, parent) in ft.parents(at) {
                if t == blocked_dim {
                    continue;
                }
                if !faults.output_usable(ft, at, t, Direction::Plus)
                    || faults.is_node_faulty(parent)
                {
                    continue;
                }
                header.push_intermediate(parent);
                return true;
            }
        }

        // Down-phase fault (re-ascending would break the up/down order), or
        // every alternate parent dead: explicit fault-free path, which exists
        // as long as the fault set leaves the tree connected.
        install_explicit_path(ft, faults, header, at)
    }

    fn name(&self) -> String {
        format!("Up/Down ({})", self.flavor.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft42() -> AnyTopology {
        AnyTopology::fat_tree_new(4, 2).unwrap()
    }

    fn no_faults() -> FaultSet {
        FaultSet::new()
    }

    /// Walks a message with the given algorithm, always taking the first
    /// candidate, and returns the nodes visited. Panics on Absorb.
    fn walk(
        net: &AnyTopology,
        faults: &FaultSet,
        algo: &UpDownRouting,
        src: NodeId,
        dest: NodeId,
        v: usize,
    ) -> Vec<NodeId> {
        let mut header = algo.make_header(net, src, dest);
        let mut current = src;
        let mut visited = vec![src];
        for _ in 0..10_000 {
            match algo.route(net, faults, &mut header, current, v) {
                RouteDecision::Deliver => return visited,
                RouteDecision::Absorb => panic!("unexpected absorption at {current:?}"),
                RouteDecision::Forward(cands) => {
                    let c = &cands[0];
                    algo.note_hop(net, &mut header, current, c.dim, c.dir);
                    current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                    visited.push(current);
                }
            }
        }
        panic!("message did not arrive");
    }

    /// Asserts a hop sequence never takes an up (Plus) hop after a down
    /// (Minus) hop — the up*/down* discipline.
    fn assert_up_then_down(net: &AnyTopology, visited: &[NodeId]) {
        let ft = net.fat_tree().unwrap();
        let level = |n: NodeId| match ft.classify(n) {
            FatTreeNode::Endpoint(_) => -1i64,
            FatTreeNode::Switch { level, .. } => i64::from(level),
        };
        let mut descending = false;
        for pair in visited.windows(2) {
            let up = level(pair[1]) > level(pair[0]);
            if up {
                assert!(!descending, "up hop after a down hop in {visited:?}");
            } else {
                descending = true;
            }
        }
    }

    #[test]
    fn deterministic_walks_are_minimal_up_down_paths() {
        for net in [ft42(), AnyTopology::fat_tree_new(2, 3).unwrap()] {
            let algo = UpDownRouting::deterministic();
            let e = net.num_endpoints() as u32;
            for (s, d) in [(0u32, 1u32), (0, e - 1), (3, e / 2), (e - 1, 0)] {
                let (src, dest) = (NodeId(s), NodeId(d));
                let visited = walk(&net, &no_faults(), &algo, src, dest, 1);
                assert_eq!(visited.len() as u32 - 1, net.distance(src, dest));
                assert_eq!(*visited.last().unwrap(), dest);
                assert_up_then_down(&net, &visited);
            }
        }
    }

    #[test]
    fn adaptive_walks_are_minimal_whatever_parent_is_taken() {
        let net = ft42();
        let algo = UpDownRouting::adaptive();
        let src = NodeId(0);
        let dest = NodeId(13);
        // First candidate each step — still minimal and up-then-down.
        let visited = walk(&net, &no_faults(), &algo, src, dest, 2);
        assert_eq!(visited.len() as u32 - 1, net.distance(src, dest));
        assert_up_then_down(&net, &visited);
    }

    #[test]
    fn adaptive_ascent_offers_every_parent_plus_escape() {
        let net = ft42();
        let ft = net.fat_tree().unwrap();
        let algo = UpDownRouting::adaptive();
        // At a leaf switch ascending: all 4 parents are candidates, plus the
        // destination-aligned escape on VC 0.
        let src = NodeId(0);
        let dest = NodeId(13); // different leaf: must ascend to the top
        let mut h = algo.make_header(&net, src, dest);
        let leaf = ft.leaf_of(src);
        let d = algo.route(&net, &no_faults(), &mut h, leaf, 3);
        let cands = d.candidates();
        let adaptive: Vec<_> = cands.iter().filter(|c| !c.is_escape).collect();
        assert_eq!(adaptive.len(), 4);
        for c in &adaptive {
            assert_eq!(c.dir, Direction::Plus);
            assert_eq!(c.vcs, vec![1, 2]);
        }
        let escape = cands.iter().find(|c| c.is_escape).unwrap();
        assert_eq!(escape.vcs, vec![0]);
        assert_eq!(escape.dir, Direction::Plus);
        // On the descent the choice collapses to the unique down-port.
        let top = ft
            .neighbor(leaf, escape.dim, Direction::Plus)
            .expect("escape ascends to a top switch");
        let d = algo.route(&net, &no_faults(), &mut h, top, 3);
        let cands = d.candidates();
        assert!(cands.iter().all(|c| c.dir == Direction::Minus));
        let dims: Vec<_> = cands.iter().map(|c| c.dim).collect();
        assert_eq!(dims.len(), 2); // one adaptive + one escape, same port
        assert_eq!(dims[0], dims[1]);
    }

    #[test]
    fn faulted_adaptive_messages_ride_the_escape_channel() {
        let net = ft42();
        let algo = UpDownRouting::adaptive();
        let mut h = algo.make_header(&net, NodeId(0), NodeId(13));
        h.faulted = true;
        let d = algo.route(&net, &no_faults(), &mut h, NodeId(0), 3);
        match d {
            RouteDecision::Forward(cands) => {
                assert_eq!(cands.len(), 1);
                assert_eq!(cands[0].vcs, vec![0]);
                assert!(cands[0].is_escape);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn dead_up_link_reroutes_through_an_alternate_parent() {
        let net = ft42();
        let ft = net.fat_tree().unwrap();
        let algo = UpDownRouting::deterministic();
        let src = NodeId(0);
        let dest = NodeId(13);
        let leaf = ft.leaf_of(src);
        let mut h = algo.make_header(&net, src, dest);
        // The canonical ascent from the leaf.
        let (t, dir) = updown_output(ft, &h, leaf).unwrap();
        assert_eq!(dir, Direction::Plus);
        let canonical_parent = ft.neighbor(leaf, t, Direction::Plus).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_node(canonical_parent);
        // Routing at the leaf now absorbs; the software layer re-ascends
        // through an alternate parent.
        assert!(algo.route(&net, &faults, &mut h, leaf, 1).is_absorb());
        assert!(algo.reroute_on_fault(&net, &faults, &mut h, leaf, (t, dir)));
        assert!(h.faulted);
        assert_eq!(h.pending_via(), 1);
        let via = h.target();
        assert_ne!(via, canonical_parent);
        assert!(ft.parents(leaf).iter().any(|&(_, p)| p == via));
        assert!(!faults.is_node_faulty(via));
    }

    #[test]
    fn routes_around_a_dead_top_switch_end_to_end() {
        let net = ft42();
        let ft = net.fat_tree().unwrap();
        for algo in [UpDownRouting::deterministic(), UpDownRouting::adaptive()] {
            let src = NodeId(0);
            let dest = NodeId(13);
            // Kill the top switch the canonical path ascends through.
            let h0 = algo.make_header(&net, src, dest);
            let leaf = ft.leaf_of(src);
            let (t, _) = updown_output(ft, &h0, leaf).unwrap();
            let blocked_top = ft.neighbor(leaf, t, Direction::Plus).unwrap();
            let mut faults = FaultSet::new();
            faults.fail_node(blocked_top);

            let mut header = algo.make_header(&net, src, dest);
            let mut current = src;
            let mut steps = 0;
            loop {
                steps += 1;
                assert!(steps < 1000, "livelock: message never delivered");
                match algo.route(&net, &faults, &mut header, current, 2) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(&net, &mut header, current, c.dim, c.dir);
                        current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                        assert!(!faults.is_node_faulty(current));
                    }
                    RouteDecision::Absorb => {
                        let blocked = algo
                            .deterministic_output(&net, &header, current)
                            .unwrap_or((0, Direction::Plus));
                        assert!(algo.reroute_on_fault(
                            &net,
                            &faults,
                            &mut header,
                            current,
                            blocked
                        ));
                        header.reset_for_injection();
                    }
                }
            }
            assert_eq!(current, dest, "{}", algo.name());
            assert!(header.absorptions >= 1 || algo.flavor() == RoutingFlavor::Adaptive);
        }
    }

    #[test]
    fn down_phase_fault_falls_back_to_an_explicit_path() {
        // ft:2,3 gives a two-hop descent, so a fault can sit strictly inside
        // the down-phase.
        let net = AnyTopology::fat_tree_new(2, 3).unwrap();
        let ft = net.fat_tree().unwrap();
        let algo = UpDownRouting::deterministic();
        let src = NodeId(0);
        let dest = NodeId(7);
        // The canonical descent to e7 passes its leaf switch s0.3; kill the
        // *link* between s1.3 (mid level) and s0.3 instead of the leaf (the
        // leaf is a single point of failure for e7).
        let mid = ft.switch_id(1, 3);
        let leaf = ft.switch_id(0, 3);
        let (t, _) = ft
            .neighbors(mid)
            .iter()
            .find_map(|&(ch, n)| (n == leaf).then_some((ch.dim, n)))
            .unwrap();
        let mut faults = FaultSet::new();
        faults.fail_link(ft, mid, t, Direction::Minus);

        let mut header = algo.make_header(&net, src, dest);
        let mut current = src;
        let mut steps = 0;
        let mut went_escorted = false;
        loop {
            steps += 1;
            assert!(steps < 1000, "livelock: message never delivered");
            match algo.route(&net, &faults, &mut header, current, 1) {
                RouteDecision::Deliver => break,
                RouteDecision::Forward(cands) => {
                    let c = &cands[0];
                    algo.note_hop(&net, &mut header, current, c.dim, c.dir);
                    current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                }
                RouteDecision::Absorb => {
                    let blocked = algo
                        .deterministic_output(&net, &header, current)
                        .unwrap_or((0, Direction::Plus));
                    assert!(algo.reroute_on_fault(&net, &faults, &mut header, current, blocked));
                    went_escorted |= header.escorted;
                    header.reset_for_injection();
                }
            }
        }
        assert_eq!(current, dest);
        if header.absorptions > 0 {
            assert!(
                went_escorted,
                "a down-phase fault must take the explicit-path rule"
            );
        }
    }

    #[test]
    fn unreachable_destination_is_reported() {
        // A leaf switch is a single point of failure for its endpoints.
        let net = ft42();
        let ft = net.fat_tree().unwrap();
        let algo = UpDownRouting::deterministic();
        let dest = NodeId(13);
        let mut faults = FaultSet::new();
        faults.fail_node(ft.leaf_of(dest));
        let mut header = algo.make_header(&net, NodeId(0), dest);
        header.misroute_budget = 0;
        assert!(!algo.reroute_on_fault(
            &net,
            &faults,
            &mut header,
            ft.leaf_of(NodeId(0)),
            (0, Direction::Plus)
        ));
    }

    #[test]
    fn supported_on_fat_trees_but_not_grids() {
        let algo = UpDownRouting::adaptive();
        assert_eq!(algo.supported_on(&ft42()), Ok(()));
        let torus = AnyTopology::torus(8, 2).unwrap();
        match algo.supported_on(&torus) {
            Err(RoutingTopologyError::UnsupportedTopology {
                algorithm,
                topology,
                ..
            }) => {
                assert_eq!(algorithm, "up/down");
                assert_eq!(topology, "8x8");
            }
            other => panic!("expected UnsupportedTopology, got {other:?}"),
        }
        let msg = format!("{}", algo.supported_on(&torus).unwrap_err());
        assert!(msg.contains("up/down"));
        assert!(msg.contains("'8x8'"));
        assert!(msg.contains("ft:k,l"));
    }

    #[test]
    fn min_virtual_channels_and_names() {
        let net = ft42();
        assert_eq!(UpDownRouting::deterministic().min_virtual_channels(&net), 1);
        assert_eq!(UpDownRouting::adaptive().min_virtual_channels(&net), 2);
        assert_eq!(
            UpDownRouting::deterministic().name(),
            "Up/Down (deterministic)"
        );
        assert_eq!(UpDownRouting::adaptive().name(), "Up/Down (adaptive)");
        assert_eq!(
            UpDownRouting::with_flavor(RoutingFlavor::Adaptive).flavor(),
            RoutingFlavor::Adaptive
        );
    }

    #[test]
    fn deterministic_output_is_destination_aligned() {
        let net = ft42();
        let ft = net.fat_tree().unwrap();
        let algo = UpDownRouting::deterministic();
        // e0 -> e13: ascend e0 -> s0.0 -> top, descend into leaf s0.3.
        let h = algo.make_header(&net, NodeId(0), NodeId(13));
        // Endpoint up-port is p mod k = 0.
        assert_eq!(updown_output(ft, &h, NodeId(0)), Some((0, Direction::Plus)));
        // From the leaf, the aligned top switch has digit 3 at position 0
        // (the destination's leaf index): port (0 + 3) mod 4 = 3.
        let leaf = ft.leaf_of(NodeId(0));
        assert_eq!(updown_output(ft, &h, leaf), Some((3, Direction::Plus)));
        let top = ft.neighbor(leaf, 3, Direction::Plus).unwrap();
        // The top switch descends: its down-port to leaf s0.3, then the
        // leaf's down-port to e13 (13 mod 4 = 1).
        let (t, dir) = updown_output(ft, &h, top).unwrap();
        assert_eq!(dir, Direction::Minus);
        assert_eq!(
            ft.neighbor(top, t, Direction::Minus),
            Some(ft.switch_id(0, 3))
        );
        let (t, dir) = updown_output(ft, &h, ft.switch_id(0, 3)).unwrap();
        assert_eq!(dir, Direction::Minus);
        assert_eq!(t, 1);
        // At the destination there is nothing left to do.
        assert_eq!(updown_output(ft, &h, NodeId(13)), None);
    }

    #[test]
    fn same_leaf_pairs_never_leave_the_leaf() {
        let net = ft42();
        let algo = UpDownRouting::deterministic();
        let visited = walk(&net, &no_faults(), &algo, NodeId(0), NodeId(3), 1);
        assert_eq!(visited.len(), 3); // e0 -> s0.0 -> e3
        assert_eq!(net.distance(NodeId(0), NodeId(3)), 2);
    }
}
