//! Channel-dependency-graph (CDG) analysis.
//!
//! The deadlock-freedom argument of the paper (Section 4) rests on the
//! classical result that a routing algorithm is deadlock free if its (extended)
//! channel dependency graph is acyclic. This module materialises that graph
//! for the deterministic / escape layer of the Software-Based scheme — the
//! layer that carries every faulted message — and checks acyclicity
//! explicitly, which the test-suite exercises for representative network
//! sizes. It can also build the *naive* dependency graph that ignores the
//! dateline virtual-channel classes, demonstrating that torus wrap-around
//! links do introduce cycles without them — and, conversely, that on meshes
//! (no wrapped dimension) the naive single-class graph is already acyclic,
//! i.e. the dateline VC is provably unnecessary there.

//!
//! For the negative-first turn model the module builds the *turn-rule* CDG
//! ([`build_turn_cdg`]): an over-approximation containing a dependency edge
//! for **every** pair of consecutive channels a turn-permitted route could
//! occupy, not just the pairs the canonical routes actually use. Acyclicity
//! of this graph therefore proves deadlock freedom for every routing function
//! obeying the turn rule — the deterministic negative-first order and the
//! phase-adaptive variant alike — with a single virtual channel per physical
//! channel.

use crate::ecube::ecube_output;
use crate::header::{RouteHeader, RoutingFlavor};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use torus_topology::{DirectedChannel, Direction, Network, VcClass};

/// A dependency graph over virtual-channel resources.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Number of resource vertices.
    num_vertices: usize,
    /// Adjacency list: `edges[a]` holds every `b` such that a message can hold
    /// resource `a` while requesting resource `b`.
    edges: Vec<Vec<usize>>,
    num_edges: usize,
    /// Dedup set so repeated [`DependencyGraph::add_edge`] calls are idempotent.
    seen: HashSet<(usize, usize)>,
}

impl DependencyGraph {
    /// Creates an edge-free graph over `num_vertices` resource vertices.
    pub fn new(num_vertices: usize) -> Self {
        DependencyGraph {
            num_vertices,
            edges: vec![Vec::new(); num_vertices],
            num_edges: 0,
            seen: HashSet::new(),
        }
    }

    /// Records the dependency `from -> to`. Duplicate edges and self-loops
    /// (a worm re-requesting the resource it already holds) are ignored.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if from != to && self.seen.insert((from, to)) {
            self.edges[from].push(to);
            self.num_edges += 1;
        }
    }

    /// Number of resource vertices in the graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (deduplicated) dependency edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the dependency `from -> to` has been recorded.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.seen.contains(&(from, to))
    }

    /// The recorded successors of `vertex` (resources it may be held against).
    pub fn edges_from(&self, vertex: usize) -> &[usize] {
        &self.edges[vertex]
    }

    /// Iterates over every recorded `(from, to)` dependency edge.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(from, succs)| succs.iter().map(move |&to| (from, to)))
    }

    /// True if the graph contains no directed cycle (iterative three-colour
    /// DFS).
    pub fn is_acyclic(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.num_vertices];
        for start in 0..self.num_vertices {
            if colour[start] != Colour::White {
                continue;
            }
            // Stack of (vertex, next-child-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = Colour::Grey;
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                if *idx < self.edges[v].len() {
                    let child = self.edges[v][*idx];
                    *idx += 1;
                    match colour[child] {
                        Colour::Grey => return false,
                        Colour::White => {
                            colour[child] = Colour::Grey;
                            stack.push((child, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[v] = Colour::Black;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Returns a directed cycle as a witness, or `None` if the graph is
    /// acyclic. The returned vertices `v0, v1, .., vk` are a closed walk:
    /// every consecutive pair `(vi, vi+1)` is a recorded edge, as is
    /// `(vk, v0)`.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.num_vertices];
        for start in 0..self.num_vertices {
            if colour[start] != Colour::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = Colour::Grey;
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                if *idx < self.edges[v].len() {
                    let child = self.edges[v][*idx];
                    *idx += 1;
                    match colour[child] {
                        Colour::Grey => {
                            // The DFS stack from `child` up to `v` is the cycle.
                            let pos = stack
                                .iter()
                                .position(|&(u, _)| u == child)
                                .expect("grey vertices are always on the DFS stack");
                            return Some(stack[pos..].iter().map(|&(u, _)| u).collect());
                        }
                        Colour::White => {
                            colour[child] = Colour::Grey;
                            stack.push((child, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[v] = Colour::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Resource granularity used when building the dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VcModel {
    /// Each physical channel contributes two resources, one per dateline
    /// class — the scheme actually used by the deterministic / escape layer
    /// on networks with wrapped dimensions.
    DatelineClasses,
    /// Each physical channel is a single resource (no virtual-channel
    /// classes). On a torus this graph is cyclic, which is exactly why the
    /// dateline classes are needed; on a mesh it is acyclic — one VC per
    /// class suffices when no dimension wraps.
    SingleClass,
}

fn resource_id(net: &Network, model: VcModel, ch: DirectedChannel, class: VcClass) -> usize {
    match model {
        VcModel::DatelineClasses => net.channel_id(ch).index() * 2 + class.index(),
        VcModel::SingleClass => net.channel_id(ch).index(),
    }
}

/// Resource vertices are allocated per channel *slot* of the dense id space,
/// so missing mesh-edge channels simply leave isolated (edge-free) vertices.
fn num_resources(net: &Network, model: VcModel) -> usize {
    match model {
        VcModel::DatelineClasses => net.channel_slots() * 2,
        VcModel::SingleClass => net.channel_slots(),
    }
}

/// Builds the channel dependency graph of dimension-order routing on the
/// fault-free network, walking every ordered (source, destination) pair and
/// recording the successive virtual-channel resources a message holds.
pub fn build_ecube_cdg(net: &Network, model: VcModel) -> DependencyGraph {
    let mut graph = DependencyGraph::new(num_resources(net, model));
    for src in net.nodes() {
        for dest in net.nodes() {
            if src == dest {
                continue;
            }
            let mut header = RouteHeader::new(net, src, dest, RoutingFlavor::Deterministic);
            let mut current = src;
            let mut previous: Option<usize> = None;
            while let Some((dim, dir)) = ecube_output(net, &header, current) {
                let class = if header.crossed_dateline[dim] {
                    VcClass::AfterDateline
                } else {
                    VcClass::BeforeDateline
                };
                let ch = DirectedChannel::new(current, dim, dir);
                let resource = resource_id(net, model, ch, class);
                if let Some(prev) = previous {
                    graph.add_edge(prev, resource);
                }
                previous = Some(resource);
                header.hops += 1;
                header.note_grid_bookkeeping(net, current, dim, dir);
                current = net
                    .neighbor(current, dim, dir)
                    .expect("e-cube hop always crosses an existing channel");
            }
        }
    }
    graph
}

/// Turn rule used by [`build_turn_cdg`] and the turn-model routing flavours.
///
/// Every restricted rule is a *per-dimension direction priority*: each
/// dimension names a "first" direction, and a hop against a dimension's first
/// direction (the second phase) may never be followed by a hop *in* any
/// dimension's first direction. Negative-first is the special case where
/// every dimension's first direction is Minus; west-first flips dimension 0.
/// Any such rule is a reflection (per-dimension relabelling of Plus/Minus) of
/// negative-first, so its turn CDG is acyclic on open shapes for exactly the
/// same reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TurnRule {
    /// Negative-first: a hop in the Minus direction may never follow a hop in
    /// the Plus direction. Breaks every dependency cycle on open dimensions.
    NegativeFirst,
    /// West-first: dimension 0 routes Minus ("west") in the first phase while
    /// every higher dimension routes Plus first. A reflection of
    /// negative-first in all dimensions but the first.
    WestFirst,
    /// North-last: dimension 0 routes Plus ("east") in the first phase while
    /// every higher dimension routes Minus first, so every Plus ("north")
    /// hop in the higher dimensions happens in the closing phase — the exact
    /// mirror of west-first, and another reflection of negative-first.
    NorthLast,
    /// Every turn is permitted (except U-turns) — the unrestricted adaptive
    /// baseline, cyclic on any mesh with at least two dimensions.
    Unrestricted,
}

impl TurnRule {
    /// The direction `dim` routes during the first phase, or `None` when the
    /// rule imposes no ordering (unrestricted).
    #[inline]
    pub fn first_direction(self, dim: usize) -> Option<Direction> {
        match self {
            TurnRule::NegativeFirst => Some(Direction::Minus),
            TurnRule::WestFirst => Some(if dim == 0 {
                Direction::Minus
            } else {
                Direction::Plus
            }),
            TurnRule::NorthLast => Some(if dim == 0 {
                Direction::Plus
            } else {
                Direction::Minus
            }),
            TurnRule::Unrestricted => None,
        }
    }

    /// Whether a message holding a channel along `held` (dimension,
    /// direction) may next request a channel along `next` under this rule: a
    /// second-phase hop may never be followed by a first-phase hop.
    #[inline]
    pub fn permits(self, held: (usize, Direction), next: (usize, Direction)) -> bool {
        let Some(held_first) = self.first_direction(held.0) else {
            return true;
        };
        let next_first = self
            .first_direction(next.0)
            .expect("restricted rules order every dimension");
        !(held.1 == held_first.opposite() && next.1 == next_first)
    }
}

/// Builds the single-VC-class channel dependency graph of **all** routes
/// permitted by `rule`: one edge per pair of channels `(held, requested)`
/// such that `requested` starts where `held` ends, is not the U-turn back
/// along `held`, and the turn is legal under the rule.
///
/// This over-approximates every concrete routing function obeying the rule
/// (minimal or not), so acyclicity here implies deadlock freedom for the
/// negative-first subsystem with one virtual channel. Conversely, on a
/// wrapped dimension the same-direction dependency chain around the ring
/// closes a cycle no turn prohibition can break — which is exactly why the
/// turn model is rejected on wrapped dimensions.
pub fn build_turn_cdg(net: &Network, rule: TurnRule) -> DependencyGraph {
    let mut graph = DependencyGraph::new(net.channel_slots());
    for held in net.channels() {
        let mid = net
            .channel_dest(held)
            .expect("channels() yields only existing channels");
        let from = net.channel_id(held).index();
        for dim in 0..net.dims() {
            for dir in Direction::BOTH {
                if dim == held.dim && dir == held.dir.opposite() {
                    continue; // U-turn
                }
                if !rule.permits((held.dim, held.dir), (dim, dir)) {
                    continue;
                }
                if !net.has_channel(mid, dim, dir) {
                    continue;
                }
                let to = net.channel_id(DirectedChannel::new(mid, dim, dir)).index();
                graph.add_edge(from, to);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecube_with_dateline_classes_is_acyclic() {
        for (k, n) in [(4u16, 2u32), (5, 2), (8, 2), (4, 3)] {
            let t = Network::torus(k, n).unwrap();
            let g = build_ecube_cdg(&t, VcModel::DatelineClasses);
            assert!(g.num_edges() > 0);
            assert!(
                g.is_acyclic(),
                "e-cube with dateline classes must be deadlock free on {k}-ary {n}-cube"
            );
        }
    }

    #[test]
    fn ecube_without_vc_classes_has_cycles_on_tori() {
        // The wrap-around links close a cycle in every ring when virtual
        // channel classes are ignored (k >= 4 so that a ring has at least
        // four channels in each direction).
        for (k, n) in [(4u16, 2u32), (8, 2)] {
            let t = Network::torus(k, n).unwrap();
            let g = build_ecube_cdg(&t, VcModel::SingleClass);
            assert!(
                !g.is_acyclic(),
                "single-class e-cube on a {k}-ary {n}-cube torus must contain cycles"
            );
        }
    }

    #[test]
    fn ecube_on_meshes_is_acyclic_even_without_vc_classes() {
        // The dateline VC exists solely because of wrap-around links: on a
        // mesh the single-class (one VC per class) dependency graph is already
        // acyclic, so deterministic routing needs only one virtual channel.
        for (k, n) in [(4u16, 2u32), (8, 2), (4, 3)] {
            let m = Network::mesh(k, n).unwrap();
            let g = build_ecube_cdg(&m, VcModel::SingleClass);
            assert!(g.num_edges() > 0);
            assert!(
                g.is_acyclic(),
                "single-class e-cube on a {k}-ary {n}-mesh must be acyclic"
            );
        }
    }

    #[test]
    fn ecube_on_hypercubes_is_acyclic_without_vc_classes() {
        for n in [3u32, 4, 5] {
            let h = Network::hypercube(n).unwrap();
            let g = build_ecube_cdg(&h, VcModel::SingleClass);
            assert!(g.num_edges() > 0);
            assert!(
                g.is_acyclic(),
                "single-class e-cube on the {n}-hypercube must be acyclic"
            );
        }
    }

    #[test]
    fn mixed_radix_networks_stay_acyclic_with_dateline_classes() {
        // A wrapped 4x4 plane with an open third dimension: the wrapped plane
        // still needs the dateline classes, and with them the whole mixed
        // shape is deadlock free.
        let net = Network::new(vec![4, 4, 3], vec![true, true, false]).unwrap();
        let g = build_ecube_cdg(&net, VcModel::DatelineClasses);
        assert!(g.is_acyclic());
        // Without classes the wrapped plane closes cycles.
        let naive = build_ecube_cdg(&net, VcModel::SingleClass);
        assert!(!naive.is_acyclic());
    }

    #[test]
    fn dependency_graph_counts() {
        let t = Network::torus(4, 2).unwrap();
        let g = build_ecube_cdg(&t, VcModel::DatelineClasses);
        assert_eq!(g.num_vertices(), t.channel_slots() * 2);
        let g1 = build_ecube_cdg(&t, VcModel::SingleClass);
        assert_eq!(g1.num_vertices(), t.channel_slots());
        assert!(g1.num_edges() <= g.num_edges() * 2);
    }

    #[test]
    fn fault_free_ecube_cdg_acyclic_across_dimensionalities() {
        // The deadlock-freedom argument must hold in n dimensions, not just
        // the 2-D cases the other tests cover: SW-Based-nD sends every
        // faulted message over this escape layer.
        for (k, n) in [(4u16, 1u32), (9, 1), (3, 3), (3, 4)] {
            let t = Network::torus(k, n).unwrap();
            let g = build_ecube_cdg(&t, VcModel::DatelineClasses);
            assert!(g.num_edges() > 0);
            assert!(
                g.is_acyclic(),
                "fault-free e-cube CDG must be acyclic on the {k}-ary {n}-cube"
            );
        }
    }

    #[test]
    fn negative_first_turn_cdg_is_acyclic_on_open_shapes() {
        // The tentpole claim: with the Plus->Minus turn prohibited, the
        // *complete* dependency graph of all permitted routes is acyclic with
        // a single VC class — on meshes, hypercubes and mixed-radix open
        // shapes alike. West-first and north-last are per-dimension
        // reflections of the same rule and must stay acyclic for the same
        // reason.
        for net in [
            Network::mesh(4, 2).unwrap(),
            Network::mesh(8, 2).unwrap(),
            Network::mesh(3, 3).unwrap(),
            Network::hypercube(5).unwrap(),
            Network::new(vec![6, 3, 2], vec![false, false, false]).unwrap(),
        ] {
            for rule in [
                TurnRule::NegativeFirst,
                TurnRule::WestFirst,
                TurnRule::NorthLast,
            ] {
                let g = build_turn_cdg(&net, rule);
                assert!(g.num_edges() > 0);
                assert!(g.is_acyclic(), "{rule:?} turn CDG must be acyclic on {net}");
            }
        }
    }

    #[test]
    fn unrestricted_turns_close_cycles_on_meshes() {
        // Without the turn restriction even a mesh deadlocks: the four turns
        // of any 2-D plane close a cycle. This is why the adaptive flavour
        // restricts its candidates to the current negative-first phase.
        for net in [
            Network::mesh(2, 2).unwrap(),
            Network::mesh(4, 2).unwrap(),
            Network::hypercube(3).unwrap(),
        ] {
            let g = build_turn_cdg(&net, TurnRule::Unrestricted);
            assert!(
                !g.is_acyclic(),
                "unrestricted turn CDG on {net} must contain cycles"
            );
        }
        // A 1-D line has no turns at all; even unrestricted it is acyclic.
        let line = Network::mesh(8, 1).unwrap();
        assert!(build_turn_cdg(&line, TurnRule::Unrestricted).is_acyclic());
    }

    #[test]
    fn negative_first_turn_cdg_is_cyclic_on_wrapped_dimensions() {
        // The reason the turn model is rejected on tori: a ring's
        // same-direction chain is a cycle no turn prohibition breaks.
        for net in [
            Network::torus(4, 2).unwrap(),
            Network::torus(8, 1).unwrap(),
            Network::new(vec![4, 3], vec![true, false]).unwrap(),
        ] {
            for rule in [
                TurnRule::NegativeFirst,
                TurnRule::WestFirst,
                TurnRule::NorthLast,
            ] {
                let g = build_turn_cdg(&net, rule);
                assert!(
                    !g.is_acyclic(),
                    "{rule:?} turn CDG on wrapped {net} must contain cycles"
                );
            }
        }
    }

    #[test]
    fn turn_rule_permits_table() {
        use Direction::{Minus, Plus};
        // Negative-first ignores the dimensions: only second-phase (Plus)
        // followed by first-phase (Minus) is forbidden.
        for (held_dim, next_dim) in [(0usize, 1usize), (1, 0), (0, 2)] {
            assert!(TurnRule::NegativeFirst.permits((held_dim, Minus), (next_dim, Minus)));
            assert!(TurnRule::NegativeFirst.permits((held_dim, Minus), (next_dim, Plus)));
            assert!(TurnRule::NegativeFirst.permits((held_dim, Plus), (next_dim, Plus)));
            assert!(!TurnRule::NegativeFirst.permits((held_dim, Plus), (next_dim, Minus)));
        }
        // West-first flips dimension 0: its first phase is Minus (west) while
        // every higher dimension routes Plus first.
        assert_eq!(TurnRule::WestFirst.first_direction(0), Some(Minus));
        assert_eq!(TurnRule::WestFirst.first_direction(1), Some(Plus));
        assert_eq!(TurnRule::WestFirst.first_direction(5), Some(Plus));
        // East (second phase of dim 0) may not be followed by west or north.
        assert!(!TurnRule::WestFirst.permits((0, Plus), (0, Minus)));
        assert!(!TurnRule::WestFirst.permits((0, Plus), (1, Plus)));
        // South (second phase of dim 1) may not be followed by west or north.
        assert!(!TurnRule::WestFirst.permits((1, Minus), (0, Minus)));
        assert!(!TurnRule::WestFirst.permits((1, Minus), (2, Plus)));
        // First-phase hops may be followed by anything.
        assert!(TurnRule::WestFirst.permits((0, Minus), (1, Minus)));
        assert!(TurnRule::WestFirst.permits((1, Plus), (0, Plus)));
        assert!(TurnRule::WestFirst.permits((1, Plus), (2, Minus)));
        // North-last mirrors west-first: dimension 0 routes Plus (east) first
        // while every higher dimension routes Minus first, so northward (Plus)
        // hops in the higher dimensions come last.
        assert_eq!(TurnRule::NorthLast.first_direction(0), Some(Plus));
        assert_eq!(TurnRule::NorthLast.first_direction(1), Some(Minus));
        assert_eq!(TurnRule::NorthLast.first_direction(5), Some(Minus));
        // West (second phase of dim 0) may not be followed by east or south.
        assert!(!TurnRule::NorthLast.permits((0, Minus), (0, Plus)));
        assert!(!TurnRule::NorthLast.permits((0, Minus), (1, Minus)));
        // North (second phase of dim 1) may not be followed by east or south.
        assert!(!TurnRule::NorthLast.permits((1, Plus), (0, Plus)));
        assert!(!TurnRule::NorthLast.permits((1, Plus), (2, Minus)));
        // First-phase hops may be followed by anything.
        assert!(TurnRule::NorthLast.permits((0, Plus), (1, Plus)));
        assert!(TurnRule::NorthLast.permits((1, Minus), (0, Minus)));
        assert!(TurnRule::NorthLast.permits((1, Minus), (2, Plus)));
        for held in Direction::BOTH {
            for next in Direction::BOTH {
                assert!(TurnRule::Unrestricted.permits((0, held), (1, next)));
            }
        }
    }

    #[test]
    fn turn_cdg_vertex_space_matches_channel_slots() {
        let m = Network::mesh(4, 2).unwrap();
        let g = build_turn_cdg(&m, TurnRule::NegativeFirst);
        assert_eq!(g.num_vertices(), m.channel_slots());
        // The restricted graph is a strict subgraph of the unrestricted one.
        let u = build_turn_cdg(&m, TurnRule::Unrestricted);
        assert!(g.num_edges() < u.num_edges());
    }

    #[test]
    fn artificial_cycle_is_rejected() {
        // A hand-built dependency cycle a -> b -> c -> a must be caught
        // regardless of how many acyclic vertices surround it.
        let mut g = DependencyGraph::new(6);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        assert!(g.is_acyclic());
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(!g.is_acyclic(), "a 3-cycle must be detected");
    }

    #[test]
    fn two_vertex_cycle_is_rejected() {
        let mut g = DependencyGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(!g.is_acyclic(), "a 2-cycle must be detected");
    }

    #[test]
    fn cycle_unreachable_from_low_vertices_is_still_found() {
        // The DFS restarts from every white vertex, so a cycle confined to
        // the high-numbered vertices must not be missed.
        let mut g = DependencyGraph::new(8);
        for v in 0..4 {
            g.add_edge(v, v + 1);
        }
        g.add_edge(6, 7);
        g.add_edge(7, 6);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn self_loops_are_not_recorded_as_edges() {
        // `add_edge` drops a == b pairs: a worm re-requesting the resource it
        // already holds is not a dependency. The graph must stay acyclic.
        let mut g = DependencyGraph::new(2);
        g.add_edge(0, 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_acyclic());
    }

    #[test]
    fn long_chain_is_acyclic_and_diamond_reconvergence_is_not_a_cycle() {
        // Reconverging paths (0 -> 1 -> 3, 0 -> 2 -> 3) share a sink but
        // contain no directed cycle; three-colour DFS must not confuse a
        // Black revisit with a Grey back-edge.
        let mut g = DependencyGraph::new(1000);
        for v in 0..999 {
            g.add_edge(v, v + 1);
        }
        assert!(g.is_acyclic());
        let mut d = DependencyGraph::new(4);
        d.add_edge(0, 1);
        d.add_edge(0, 2);
        d.add_edge(1, 3);
        d.add_edge(2, 3);
        assert!(d.is_acyclic(), "diamond reconvergence is not a cycle");
    }

    #[test]
    fn cycle_witness_is_genuine_on_naive_torus_cdg() {
        // The known-cyclic case: the dateline-free (single-class) torus CDG.
        // A reported witness must be a genuine closed walk — every
        // consecutive pair, including the wrap-around back to the start, must
        // be a recorded edge — with no repeated vertex.
        let t = Network::torus(8, 2).unwrap();
        let g = build_ecube_cdg(&t, VcModel::SingleClass);
        let witness = g
            .find_cycle()
            .expect("dateline-free torus CDG must yield a cycle witness");
        assert!(witness.len() >= 2, "a cycle visits at least two resources");
        for i in 0..witness.len() {
            let from = witness[i];
            let to = witness[(i + 1) % witness.len()];
            assert!(
                g.has_edge(from, to),
                "witness edge {from} -> {to} is not in the extracted graph"
            );
        }
        let distinct: HashSet<usize> = witness.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            witness.len(),
            "a simple cycle witness must not repeat vertices"
        );
        // Consistency with the boolean check, and no witness on the provably
        // acyclic dateline-class graph.
        assert!(!g.is_acyclic());
        let datelined = build_ecube_cdg(&t, VcModel::DatelineClasses);
        assert!(datelined.find_cycle().is_none());
        assert!(datelined.is_acyclic());
    }

    #[test]
    fn edge_queries_and_iteration_agree() {
        let mut g = DependencyGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 1); // duplicate ignored
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edges_from(0), &[1]);
        let all: Vec<(usize, usize)> = g.iter_edges().collect();
        assert_eq!(all, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn trivial_graph_properties() {
        let g = DependencyGraph::new(3);
        assert!(g.is_acyclic());
        let mut g = DependencyGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 1); // duplicate ignored
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
    }
}
