//! The Software-Based fault-tolerant routing algorithm (SW-Based-nD).
//!
//! This module is the direct counterpart of Fig. 2 of the paper. A
//! [`SwBasedRouting`] instance encapsulates:
//!
//! * **normal-case routing** — dimension-order e-cube for the deterministic
//!   flavour, Duato's Protocol for the adaptive flavour (in a fault-free
//!   network the two flavours are *identical* to those baselines);
//! * **fault handling** — when the chosen output channel leads to a faulty
//!   node or link the message is absorbed ([`RouteDecision::Absorb`]) and the
//!   message-passing software rewrites the header via
//!   [`SwBasedRouting::reroute_on_fault`]:
//!   1. first re-route in the *same dimension, opposite direction* (a
//!      non-minimal traversal of the ring installed as a forced direction) —
//!      this rule only applies to wrapped dimensions: on an open (mesh)
//!      dimension the opposite direction leads away from the target and off
//!      the edge, so the scheme falls through to rule 2 directly,
//!   2. if another fault is encountered, route in an *orthogonal dimension*
//!      (an intermediate destination one hop to the side of the fault
//!      region),
//!   3. if the misroute budget is exhausted, compute an explicit fault-free
//!      intermediate-node path (the capability granted by assumption (i)(ii)
//!      of the paper), which bounds livelock;
//! * **post-fault behaviour** — once a message has been absorbed it is routed
//!   deterministically for the rest of its journey (Section 4: "from this
//!   point, faulted messages are always routed using detRouting2D").
//!
//! The scheme's offsets, datelines and orthogonal detours are grid concepts,
//! so [`RoutingAlgorithm::supported_on`] rejects indirect topologies with a
//! typed error; fat-trees route with
//! [`UpDownRouting`](crate::updown::UpDownRouting) instead.

use crate::adaptive::adaptive_candidates;
use crate::decision::{OutputCandidate, RouteDecision};
use crate::ecube::{deterministic_vcs, ecube_output, ecube_vc_class};
use crate::header::{RouteHeader, RoutingFlavor};
use crate::turnmodel::RoutingTopologyError;
use serde::{Deserialize, Serialize};
use torus_faults::FaultSet;
use torus_topology::{
    AnyTopology, DatelinePolicy, Direction, HealthyGraph, Network, NodeId, Topology,
};

/// Interface between the router pipeline / software layer and a routing
/// algorithm.
///
/// Every method takes the topology as an [`AnyTopology`]; algorithms that
/// only operate on one backend (the grid-offset based schemes, the fat-tree
/// up/down scheme) reject the other at construction time through
/// [`RoutingAlgorithm::supported_on`] and may downcast unconditionally
/// afterwards.
pub trait RoutingAlgorithm {
    /// The flavour this algorithm routes with in the absence of faults.
    fn flavor(&self) -> RoutingFlavor;

    /// Minimum number of virtual channels per physical channel this algorithm
    /// needs for deadlock freedom on the given network.
    fn min_virtual_channels(&self, net: &AnyTopology) -> usize;

    /// Checks that the algorithm can operate on `net` at all. Both simulator
    /// engines call this at construction time and surface the error as a
    /// typed configuration failure. Defaults to "supported everywhere"; the
    /// negative-first turn model overrides it to reject wrapped dimensions,
    /// the grid-offset schemes reject indirect topologies and the fat-tree
    /// up/down scheme rejects grids.
    fn supported_on(&self, _net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        Ok(())
    }

    /// The deterministic-layer output this algorithm steers `header` towards
    /// at `current` — the output the simulator reports as `blocked` to
    /// [`RoutingAlgorithm::reroute_on_fault`] when a message is absorbed.
    /// Defaults to the e-cube output on grids; the turn model overrides it
    /// with the negative-first output and the up/down scheme with the
    /// deterministic up/down output.
    fn deterministic_output(
        &self,
        net: &AnyTopology,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        net.grid()
            .and_then(|grid| ecube_output(grid, header, current))
    }

    /// Builds the header of a newly generated message.
    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader;

    /// Routing decision for a header flit of `header` currently at `current`,
    /// with `v` virtual channels per physical channel.
    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision;

    /// Header bookkeeping when the message advances one hop.
    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    );

    /// Software-layer header rewrite after the message was absorbed at `at`
    /// because output `blocked` led to a fault. Returns `false` only when the
    /// destination is unreachable (disconnected network), in which case the
    /// message must be dropped.
    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool;

    /// Human-readable name used in reports.
    fn name(&self) -> String;
}

/// Downcast used by the grid-only algorithms after `supported_on` has
/// validated the topology at construction time.
pub(crate) fn expect_grid(net: &AnyTopology) -> &Network {
    net.grid()
        .expect("grid-only routing algorithm invoked on an indirect topology (supported_on rejects this at construction)")
}

/// The Software-Based fault-tolerant routing algorithm for n-dimensional
/// networks (tori, meshes, hypercubes and mixed-radix shapes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwBasedRouting {
    flavor: RoutingFlavor,
}

impl SwBasedRouting {
    /// Deterministic (e-cube based) Software-Based routing.
    pub fn deterministic() -> Self {
        SwBasedRouting {
            flavor: RoutingFlavor::Deterministic,
        }
    }

    /// Fully adaptive (Duato's-Protocol based) Software-Based routing.
    pub fn adaptive() -> Self {
        SwBasedRouting {
            flavor: RoutingFlavor::Adaptive,
        }
    }

    /// Constructs the algorithm for a given flavour.
    pub fn with_flavor(flavor: RoutingFlavor) -> Self {
        SwBasedRouting { flavor }
    }

    /// Deterministic-mode routing step shared by the deterministic flavour and
    /// by faulted messages of the adaptive flavour.
    fn route_deterministic(
        &self,
        net: &Network,
        faults: &FaultSet,
        header: &RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let Some((dim, dir)) = ecube_output(net, header, current) else {
            // No remaining offset towards the current target; `route` already
            // handled target advancement, so this is the final destination.
            return RouteDecision::Deliver;
        };
        if !faults.output_usable(net, current, dim, dir) {
            return RouteDecision::Absorb;
        }
        let vcs = if header.flavor == RoutingFlavor::Adaptive {
            // Faulted messages of the adaptive flavour travel on the escape
            // layer (the embedded e-cube network) to preserve Duato's
            // deadlock-freedom argument.
            let policy = DatelinePolicy::new(net);
            vec![policy.escape_vc(dim, ecube_vc_class(header, dim))]
        } else {
            deterministic_vcs(net, header, dim, v)
        };
        RouteDecision::Forward(vec![OutputCandidate {
            dim,
            dir,
            vcs,
            is_escape: header.flavor == RoutingFlavor::Adaptive,
        }])
    }

    /// Dimensions to try for the orthogonal detour (rule 2), preferring the
    /// partner dimension of the current dimension pair as in the SW-Based-nD
    /// formulation of Fig. 2.
    fn orthogonal_order(dims: usize, blocked_dim: usize) -> Vec<usize> {
        orthogonal_order(dims, blocked_dim)
    }
}

/// Installs an explicit fault-free path from `at` to the header's final
/// destination (rule 3 / assumption (i)(ii) of the paper). Shared between the
/// SW-Based scheme, the turn-model subsystem and the fat-tree up/down scheme,
/// whose software layers apply the same fallback. Returns `false` only when
/// the destination is unreachable.
pub(crate) fn install_explicit_path<T: Topology + ?Sized>(
    net: &T,
    faults: &FaultSet,
    header: &mut RouteHeader,
    at: NodeId,
) -> bool {
    let graph = HealthyGraph::new(net, faults);
    let Some(path) = graph.shortest_path(at, header.final_dest) else {
        return false;
    };
    let nodes = path.nodes(net);
    header.set_via_chain(nodes.into_iter().skip(1));
    header.escorted = true;
    for forced in &mut header.forced_dir {
        *forced = None;
    }
    true
}

/// Dimensions to try for the orthogonal detour (rule 2), preferring the
/// partner dimension of the blocked dimension's pair as in the SW-Based-nD
/// formulation of Fig. 2. Shared with the turn-model software layer.
pub(crate) fn orthogonal_order(dims: usize, blocked_dim: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(dims.saturating_sub(1));
    if blocked_dim + 1 < dims {
        order.push(blocked_dim + 1);
    } else if blocked_dim > 0 {
        order.push(blocked_dim - 1);
    }
    for d in 0..dims {
        if d != blocked_dim && !order.contains(&d) {
            order.push(d);
        }
    }
    order
}

impl RoutingAlgorithm for SwBasedRouting {
    fn flavor(&self) -> RoutingFlavor {
        self.flavor
    }

    fn min_virtual_channels(&self, net: &AnyTopology) -> usize {
        let policy = DatelinePolicy::new(expect_grid(net));
        match self.flavor {
            RoutingFlavor::Deterministic => policy.min_deterministic_vcs(),
            RoutingFlavor::Adaptive => policy.min_adaptive_vcs(),
        }
    }

    fn supported_on(&self, net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        if net.grid().is_none() {
            return Err(RoutingTopologyError::UnsupportedTopology {
                algorithm: "SW-Based-nD",
                topology: net.to_string(),
                requires: "a direct grid topology (torus/mesh/hypercube); \
                           fat-trees route with the up/down scheme",
            });
        }
        Ok(())
    }

    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
        RouteHeader::new(net, src, dest, self.flavor)
    }

    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        let net = expect_grid(net);
        // Advance through intermediate destinations that have been reached.
        while current == header.target() {
            if header.pending_via() > 0 {
                // Reached an intermediate via host: the message is delivered
                // to the local software layer and re-injected towards the
                // next target (software forwarding, Section 3). Releasing
                // every held channel here is what keeps the escape-layer
                // dependency chains acyclic — an in-flight retarget could
                // chain a forbidden turn through the via node.
                return RouteDecision::Absorb;
            }
            if header.advance_target(current) {
                return RouteDecision::Deliver;
            }
        }
        if header.is_deterministic() {
            return self.route_deterministic(net, faults, header, current, v);
        }
        // Adaptive flavour, not yet faulted: Duato's Protocol over the healthy
        // productive outputs. The message is absorbed only when *all*
        // productive outputs lead to faults (Section 5: "a message is
        // delivered to current node when all available paths are faulty").
        let candidates = adaptive_candidates(net, header, current, v, |dim, dir| {
            faults.output_usable(net, current, dim, dir)
        });
        if candidates.is_empty() {
            return RouteDecision::Absorb;
        }
        RouteDecision::Forward(candidates)
    }

    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        header.note_hop(net, from, dim, dir);
    }

    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        let net = expect_grid(net);
        // Software forwarding: the message was absorbed because it reached an
        // intermediate via host, not because of a new fault. Pop the reached
        // target(s) and re-inject unchanged.
        if at == header.target() && header.pending_via() > 0 {
            header.absorptions += 1;
            while at == header.target() && header.pending_via() > 0 {
                header.advance_target(at);
            }
            return true;
        }

        header.absorptions += 1;
        header.faulted = true;

        // Rule 3 (fallback): out of budget, or already escorted yet absorbed
        // again (which can only happen if the fault set changed) — compute an
        // explicit fault-free path.
        if header.escorted || header.misroute_budget == 0 {
            return install_explicit_path(net, faults, header, at);
        }
        header.misroute_budget -= 1;

        let (dim, dir) = blocked;

        // Rule 1: re-route in the same dimension, opposite direction. Only a
        // wrapped dimension can reach the target the "wrong way round"; on an
        // open dimension the opposite direction walks away from the target
        // and dead-ends at the edge, so the rule is skipped there.
        if net.wraps(dim) && header.forced_dir[dim].is_none() {
            let opposite = dir.opposite();
            if faults.output_usable(net, at, dim, opposite)
                && net.offset(at, header.target(), dim) != 0
            {
                header.forced_dir[dim] = Some(opposite);
                return true;
            }
        }

        // Rule 2: route in an orthogonal dimension to slide along the fault
        // region, then resume towards the destination. `output_usable` is
        // false for channels that do not exist, so mesh edges are skipped
        // naturally.
        for o in Self::orthogonal_order(net.dims(), dim) {
            for cand_dir in Direction::BOTH {
                if !faults.output_usable(net, at, o, cand_dir) {
                    continue;
                }
                let via = net
                    .neighbor(at, o, cand_dir)
                    .expect("usable output leads to an existing neighbour");
                if faults.is_node_faulty(via) {
                    continue;
                }
                header.forced_dir[dim] = None;
                header.push_intermediate(via);
                return true;
            }
        }

        // Every neighbouring move is faulty (the node is walled in except for
        // the channel the message arrived on) — fall back to the explicit
        // path, which exists as long as the network is connected.
        install_explicit_path(net, faults, header, at)
    }

    fn name(&self) -> String {
        format!("SW-Based-nD ({})", self.flavor.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus() -> AnyTopology {
        AnyTopology::torus(8, 2).unwrap()
    }

    fn no_faults() -> FaultSet {
        FaultSet::new()
    }

    /// Node id from grid digits (tests only run on grid topologies).
    fn node(t: &AnyTopology, digits: &[u16]) -> NodeId {
        t.grid().unwrap().node_from_digits(digits).unwrap()
    }

    /// Walks a message through the network with the given algorithm, always
    /// taking the first candidate, and returns the nodes visited. Panics on
    /// Absorb (tests that expect absorption handle it themselves).
    fn walk(
        net: &AnyTopology,
        faults: &FaultSet,
        algo: &SwBasedRouting,
        src: NodeId,
        dest: NodeId,
    ) -> Vec<NodeId> {
        let mut header = algo.make_header(net, src, dest);
        let mut current = src;
        let mut visited = vec![src];
        for _ in 0..10_000 {
            match algo.route(net, faults, &mut header, current, 4) {
                RouteDecision::Deliver => return visited,
                RouteDecision::Absorb => {
                    panic!("unexpected absorption at {current:?}");
                }
                RouteDecision::Forward(cands) => {
                    let c = &cands[0];
                    algo.note_hop(net, &mut header, current, c.dim, c.dir);
                    current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                    visited.push(current);
                }
            }
        }
        panic!("message did not arrive");
    }

    #[test]
    fn fault_free_deterministic_is_ecube() {
        let t = torus();
        let algo = SwBasedRouting::deterministic();
        let src = node(&t, &[1, 1]);
        let dest = node(&t, &[5, 3]);
        let visited = walk(&t, &no_faults(), &algo, src, dest);
        let expected: Vec<NodeId> =
            torus_topology::dimension_order_path(t.grid().unwrap(), src, dest).nodes(&t);
        assert_eq!(visited, expected);
    }

    #[test]
    fn fault_free_deterministic_is_ecube_on_meshes_and_hypercubes() {
        for net in [
            AnyTopology::mesh(8, 2).unwrap(),
            AnyTopology::hypercube(5).unwrap(),
        ] {
            let algo = SwBasedRouting::deterministic();
            let src = NodeId(1);
            let dest = NodeId(net.num_nodes() as u32 - 2);
            let visited = walk(&net, &no_faults(), &algo, src, dest);
            let expected: Vec<NodeId> =
                torus_topology::dimension_order_path(net.grid().unwrap(), src, dest).nodes(&net);
            assert_eq!(visited, expected);
        }
    }

    #[test]
    fn fault_free_adaptive_reaches_destination_minimally() {
        let t = torus();
        let algo = SwBasedRouting::adaptive();
        let src = node(&t, &[0, 0]);
        let dest = node(&t, &[3, 6]);
        let visited = walk(&t, &no_faults(), &algo, src, dest);
        assert_eq!(visited.len() as u32 - 1, t.distance(src, dest));
        assert_eq!(*visited.last().unwrap(), dest);
    }

    #[test]
    fn deterministic_absorbs_at_fault() {
        let t = torus();
        let mut faults = FaultSet::new();
        // Fault directly on the e-cube path.
        faults.fail_node(node(&t, &[2, 0]));
        let algo = SwBasedRouting::deterministic();
        let src = node(&t, &[0, 0]);
        let dest = node(&t, &[4, 0]);
        let mut header = algo.make_header(&t, src, dest);
        // Walk to the node adjacent to the fault.
        let one = node(&t, &[1, 0]);
        let d = algo.route(&t, &faults, &mut header, one, 4);
        assert!(d.is_absorb());
    }

    #[test]
    fn adaptive_does_not_absorb_while_alternatives_exist() {
        let t = torus();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&t, &[2, 1]));
        let algo = SwBasedRouting::adaptive();
        let src = node(&t, &[1, 1]);
        let dest = node(&t, &[3, 3]);
        let mut header = algo.make_header(&t, src, dest);
        let d = algo.route(&t, &faults, &mut header, src, 6);
        // dim 0 plus is faulty but dim 1 plus is healthy: still forwarding.
        match d {
            RouteDecision::Forward(cands) => {
                assert!(cands
                    .iter()
                    .all(|c| !(c.dim == 0 && c.dir == Direction::Plus)));
                assert!(!cands.is_empty());
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_absorbs_only_when_all_productive_paths_faulty() {
        let t = torus();
        let mut faults = FaultSet::new();
        // Message needs +1 in dim 0 and +1 in dim 1; block both neighbours.
        faults.fail_node(node(&t, &[2, 1]));
        faults.fail_node(node(&t, &[1, 2]));
        let algo = SwBasedRouting::adaptive();
        let src = node(&t, &[1, 1]);
        let dest = node(&t, &[2, 2]);
        let mut header = algo.make_header(&t, src, dest);
        let d = algo.route(&t, &faults, &mut header, src, 6);
        assert!(d.is_absorb());
    }

    #[test]
    fn reroute_rule1_forces_opposite_direction() {
        let t = torus();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&t, &[2, 0]));
        let algo = SwBasedRouting::deterministic();
        let src = node(&t, &[1, 0]);
        let dest = node(&t, &[4, 0]);
        let mut header = algo.make_header(&t, src, dest);
        assert!(algo.reroute_on_fault(&t, &faults, &mut header, src, (0, Direction::Plus)));
        assert!(header.faulted);
        assert_eq!(header.absorptions, 1);
        assert_eq!(header.forced_dir[0], Some(Direction::Minus));
    }

    #[test]
    fn reroute_rule1_skipped_on_open_dimensions() {
        // On a mesh the opposite direction cannot wrap around to the target,
        // so the software layer must go straight to the orthogonal rule.
        let m = AnyTopology::mesh(8, 2).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&m, &[2, 0]));
        let algo = SwBasedRouting::deterministic();
        let at = node(&m, &[1, 0]);
        let dest = node(&m, &[4, 0]);
        let mut header = algo.make_header(&m, at, dest);
        assert!(algo.reroute_on_fault(&m, &faults, &mut header, at, (0, Direction::Plus)));
        assert!(header.forced_dir.iter().all(Option::is_none));
        assert_eq!(header.pending_via(), 1);
        // The orthogonal via node sits one hop away in dimension 1 (the only
        // open direction from row 0 is Plus).
        assert_eq!(header.target(), node(&m, &[1, 1]));
    }

    #[test]
    fn reroute_rule2_detours_orthogonally_when_both_directions_blocked() {
        let t = torus();
        let mut faults = FaultSet::new();
        // Block both dimension-0 neighbours of the absorbing node.
        faults.fail_node(node(&t, &[2, 0]));
        faults.fail_node(node(&t, &[0, 0]));
        let algo = SwBasedRouting::deterministic();
        let at = node(&t, &[1, 0]);
        let dest = node(&t, &[4, 0]);
        let mut header = algo.make_header(&t, at, dest);
        assert!(algo.reroute_on_fault(&t, &faults, &mut header, at, (0, Direction::Plus)));
        // An orthogonal intermediate destination (one hop in dimension 1) was
        // installed.
        assert_eq!(header.pending_via(), 1);
        let via = header.target();
        let grid = t.grid().unwrap();
        assert_eq!(grid.coord(via).get(0), 1);
        assert_ne!(grid.coord(via).get(1), 0);
    }

    #[test]
    fn reroute_rule1_skipped_when_dimension_already_resolved() {
        // If the blocked dimension has zero offset to the target, forcing the
        // opposite direction cannot help; the software layer must fall through
        // to the orthogonal rule.
        let t = torus();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&t, &[1, 1]));
        let algo = SwBasedRouting::deterministic();
        let at = node(&t, &[1, 0]);
        let mut header = algo.make_header(&t, at, node(&t, &[1, 4]));
        // Dimension 0 offset to the target is zero.
        assert!(algo.reroute_on_fault(&t, &faults, &mut header, at, (0, Direction::Plus)));
        assert!(header.forced_dir.iter().all(Option::is_none));
        assert_eq!(header.pending_via(), 1);
        // The orthogonal detour avoids the faulty node [1,1].
        assert_ne!(header.target(), node(&t, &[1, 1]));
    }

    #[test]
    fn reroute_falls_back_to_explicit_path_when_budget_exhausted() {
        let t = torus();
        let mut faults = FaultSet::new();
        faults.fail_node(node(&t, &[3, 3]));
        let algo = SwBasedRouting::deterministic();
        let at = node(&t, &[3, 2]);
        let dest = node(&t, &[3, 5]);
        let mut header = algo.make_header(&t, at, dest);
        header.misroute_budget = 0;
        assert!(algo.reroute_on_fault(&t, &faults, &mut header, at, (1, Direction::Plus)));
        assert!(header.escorted);
        // The explicit path must avoid the faulty node and end at the
        // destination.
        let mut current = at;
        let mut hops = 0;
        while current != dest {
            match algo.route(&t, &faults, &mut header, current, 4) {
                RouteDecision::Deliver => break,
                RouteDecision::Forward(cands) => {
                    let c = &cands[0];
                    algo.note_hop(&t, &mut header, current, c.dim, c.dir);
                    current = t.neighbor(current, c.dim, c.dir).expect("existing hop");
                    assert!(!faults.is_node_faulty(current));
                }
                RouteDecision::Absorb => {
                    // Escorted hops are software-forwarded through every via
                    // host: absorbed and re-injected towards the next one.
                    let blocked = ecube_output(t.grid().unwrap(), &header, current)
                        .unwrap_or((0, Direction::Plus));
                    assert!(
                        algo.reroute_on_fault(&t, &faults, &mut header, current, blocked),
                        "escorted message must always forward"
                    );
                    header.reset_for_injection();
                }
            }
            hops += 1;
            assert!(hops < 100);
        }
    }

    #[test]
    fn deterministic_message_routes_around_single_fault_end_to_end() {
        // Full software loop: route, absorb, re-route, re-inject (conceptually)
        // until delivery, mirroring what the simulator does — on a torus and
        // on the matching mesh.
        for net in [
            AnyTopology::torus(8, 2).unwrap(),
            AnyTopology::mesh(8, 2).unwrap(),
        ] {
            let mut faults = FaultSet::new();
            faults.fail_node(node(&net, &[3, 0]));
            let algo = SwBasedRouting::deterministic();
            let src = node(&net, &[1, 0]);
            let dest = node(&net, &[4, 0]);

            let mut header = algo.make_header(&net, src, dest);
            let mut current = src;
            let mut absorptions = 0;
            let mut steps = 0;
            loop {
                steps += 1;
                assert!(steps < 1000, "livelock: message never delivered");
                match algo.route(&net, &faults, &mut header, current, 4) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(&net, &mut header, current, c.dim, c.dir);
                        current = net.neighbor(current, c.dim, c.dir).expect("existing hop");
                        assert!(!faults.is_node_faulty(current));
                    }
                    RouteDecision::Absorb => {
                        absorptions += 1;
                        // Determine the blocked output exactly as the router
                        // does; a via host at its reached target has none.
                        let blocked = algo
                            .deterministic_output(&net, &header, current)
                            .unwrap_or((0, Direction::Plus));
                        assert!(algo.reroute_on_fault(
                            &net,
                            &faults,
                            &mut header,
                            current,
                            blocked
                        ));
                        header.reset_for_injection();
                    }
                }
            }
            assert_eq!(current, dest);
            assert!(absorptions >= 1, "the fault lies on the e-cube path");
            assert_eq!(header.absorptions, absorptions);
        }
    }

    #[test]
    fn adaptive_flavor_faulted_message_uses_escape_vcs() {
        let t = torus();
        let algo = SwBasedRouting::adaptive();
        let src = node(&t, &[0, 0]);
        let dest = node(&t, &[4, 0]);
        let mut header = algo.make_header(&t, src, dest);
        header.faulted = true;
        let d = algo.route(&t, &no_faults(), &mut header, src, 6);
        match d {
            RouteDecision::Forward(cands) => {
                assert_eq!(cands.len(), 1);
                assert_eq!(cands[0].vcs, vec![0]);
                assert!(cands[0].is_escape);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn min_virtual_channels_and_names() {
        let t = torus();
        let m = AnyTopology::mesh(8, 2).unwrap();
        let mixed = AnyTopology::Grid(Network::new(vec![8, 4], vec![true, false]).unwrap());
        assert_eq!(SwBasedRouting::deterministic().min_virtual_channels(&t), 2);
        assert_eq!(SwBasedRouting::adaptive().min_virtual_channels(&t), 3);
        // Meshes need no dateline VC: one deterministic VC, two for Duato.
        assert_eq!(SwBasedRouting::deterministic().min_virtual_channels(&m), 1);
        assert_eq!(SwBasedRouting::adaptive().min_virtual_channels(&m), 2);
        // One wrapped dimension is enough to require the full split.
        assert_eq!(
            SwBasedRouting::deterministic().min_virtual_channels(&mixed),
            2
        );
        assert_eq!(
            SwBasedRouting::deterministic().name(),
            "SW-Based-nD (deterministic)"
        );
        assert_eq!(
            SwBasedRouting::with_flavor(RoutingFlavor::Adaptive).flavor(),
            RoutingFlavor::Adaptive
        );
    }

    #[test]
    fn supported_on_grids_but_not_fat_trees() {
        let algo = SwBasedRouting::deterministic();
        assert_eq!(algo.supported_on(&torus()), Ok(()));
        assert_eq!(algo.supported_on(&AnyTopology::mesh(4, 3).unwrap()), Ok(()));
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        match algo.supported_on(&ft) {
            Err(RoutingTopologyError::UnsupportedTopology {
                algorithm,
                topology,
                ..
            }) => {
                assert_eq!(algorithm, "SW-Based-nD");
                assert_eq!(topology, "ft:4,2");
            }
            other => panic!("expected UnsupportedTopology, got {other:?}"),
        }
        let msg = format!("{}", algo.supported_on(&ft).unwrap_err());
        assert!(msg.contains("SW-Based-nD"));
        assert!(msg.contains("'ft:4,2'"));
        assert!(msg.contains("up/down"));
    }

    #[test]
    fn orthogonal_order_prefers_pair_partner() {
        assert_eq!(SwBasedRouting::orthogonal_order(3, 0), vec![1, 2]);
        assert_eq!(SwBasedRouting::orthogonal_order(3, 1), vec![2, 0]);
        assert_eq!(SwBasedRouting::orthogonal_order(3, 2), vec![1, 0]);
        assert_eq!(SwBasedRouting::orthogonal_order(2, 1), vec![0]);
        assert_eq!(SwBasedRouting::orthogonal_order(1, 0), Vec::<usize>::new());
    }
}
