//! # torus-routing
//!
//! Routing algorithms for wormhole-switched multidimensional networks —
//! tori, meshes, hypercubes and mixed-radix shapes — implementing the
//! algorithms evaluated by Safaei et al. (IPDPS 2006):
//!
//! * **Dimension-order (e-cube) routing** — the deterministic baseline
//!   (Dally & Seitz), made deadlock-free on wrapped dimensions with two
//!   dateline virtual-channel classes; open (mesh) dimensions need no split
//!   and may use the whole VC pool ([`ecube`]).
//! * **Duato's Protocol (DP) fully adaptive routing** — minimal adaptive
//!   routing over the "adaptive" virtual channels with an e-cube escape layer
//!   ([`adaptive`]).
//! * **Software-Based fault-tolerant routing**, the paper's contribution,
//!   extended from 2-D (Suh et al., IEEE TPDS 2000) to n dimensions
//!   ([`swbased`]): in the absence of faults it behaves exactly like e-cube
//!   (deterministic flavour) or DP (adaptive flavour); when a message's
//!   outgoing channel leads to a faulty component the message is *absorbed*
//!   at the local node, its header is rewritten by the message-passing
//!   software (same dimension opposite direction first, then an orthogonal
//!   dimension, finally an explicit fault-free intermediate-node path), and it
//!   is re-injected with priority. Once faulted, a message stays
//!   deterministic.
//! * **Turn-model routing** ([`turnmodel`]) — the classic low-VC alternative
//!   on open (non-wrap) topologies: deadlock freedom via prohibited turns
//!   instead of dateline channel classes, with the same SW-Based
//!   software-layer fault handling. Parameterised over the turn rule
//!   (negative-first or west-first); one VC suffices deterministic, two
//!   adaptive; the algorithm is rejected with a typed error on wrapped
//!   dimensions.
//! * **Up*/down* routing** ([`updown`]) — the standard deadlock-free scheme
//!   for the indirect k-ary l-level fat-trees the topology crate also
//!   models: climb to a common ancestor, then descend. Deterministic
//!   (destination-aligned ascent, one VC) and adaptive (any live parent,
//!   deterministic escape on VC 0) flavours, with the SW-Based software
//!   layer adapted to the tree: a dead up-link re-ascends through an
//!   alternate parent, a dead down-link falls back to an explicit
//!   fault-free path. Grid-only algorithms reject fat-trees — and up/down
//!   rejects grids — with a typed [`RoutingTopologyError`].
//! * **Channel-dependency-graph analysis** ([`cdg`]) — builds the extended
//!   CDG of the deterministic / escape layer and verifies acyclicity, the
//!   deadlock-freedom argument of Section 4 of the paper (and, on meshes,
//!   that a single VC class suffices: the dateline VC is only needed where a
//!   dimension wraps). The turn-rule CDG does the same for the turn-model
//!   subsystem, and [`cdg::DependencyGraph::find_cycle`] extracts a concrete
//!   cycle witness when acyclicity fails.
//!
//! The simulator drives a [`SwBasedRouting`] instance through the
//! [`RoutingAlgorithm`] interface: `route` for head-flit routing decisions,
//! `note_hop` for header bookkeeping as flits advance, and `reroute_on_fault`
//! for the software layer's header rewrite at absorption time.

pub mod adaptive;
pub mod cdg;
pub mod decision;
pub mod dispatch;
pub mod ecube;
pub mod header;
pub mod swbased;
pub mod turnmodel;
pub mod updown;

pub use cdg::{DependencyGraph, TurnRule};
pub use decision::{OutputCandidate, RouteDecision};
pub use dispatch::AnyRouting;
pub use header::{RouteHeader, RoutingFlavor};
pub use swbased::{RoutingAlgorithm, SwBasedRouting};
pub use turnmodel::{RoutingTopologyError, TurnModelRouting};
pub use updown::UpDownRouting;

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::cdg::{DependencyGraph, TurnRule};
    pub use crate::decision::{OutputCandidate, RouteDecision};
    pub use crate::dispatch::AnyRouting;
    pub use crate::header::{RouteHeader, RoutingFlavor};
    pub use crate::swbased::{RoutingAlgorithm, SwBasedRouting};
    pub use crate::turnmodel::{RoutingTopologyError, TurnModelRouting};
    pub use crate::updown::UpDownRouting;
}
