//! Runtime dispatch over the routing subsystems.
//!
//! The simulator engines are generic over [`RoutingAlgorithm`], which is
//! ideal for tests and benchmarks that know their algorithm statically. The
//! experiment harness, however, selects the algorithm from configuration at
//! runtime; [`AnyRouting`] is the closed enum it dispatches through — a
//! zero-allocation alternative to trait objects that keeps the engines
//! monomorphised.

use crate::decision::RouteDecision;
use crate::header::{RouteHeader, RoutingFlavor};
use crate::swbased::{RoutingAlgorithm, SwBasedRouting};
use crate::turnmodel::{RoutingTopologyError, TurnModelRouting};
use crate::updown::UpDownRouting;
use torus_faults::FaultSet;
use torus_topology::{AnyTopology, Direction, NodeId};

/// Any routing subsystem behind one dispatchable value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnyRouting {
    /// The Software-Based scheme over e-cube / Duato's protocol (all direct
    /// grid topologies).
    SwBased(SwBasedRouting),
    /// The negative-first turn model (open grid topologies only).
    TurnModel(TurnModelRouting),
    /// Up*/down* routing (fat-trees only).
    UpDown(UpDownRouting),
}

impl From<SwBasedRouting> for AnyRouting {
    fn from(algo: SwBasedRouting) -> Self {
        AnyRouting::SwBased(algo)
    }
}

impl From<TurnModelRouting> for AnyRouting {
    fn from(algo: TurnModelRouting) -> Self {
        AnyRouting::TurnModel(algo)
    }
}

impl From<UpDownRouting> for AnyRouting {
    fn from(algo: UpDownRouting) -> Self {
        AnyRouting::UpDown(algo)
    }
}

macro_rules! delegate {
    ($self:ident, $algo:ident => $body:expr) => {
        match $self {
            AnyRouting::SwBased($algo) => $body,
            AnyRouting::TurnModel($algo) => $body,
            AnyRouting::UpDown($algo) => $body,
        }
    };
}

impl RoutingAlgorithm for AnyRouting {
    fn flavor(&self) -> RoutingFlavor {
        delegate!(self, a => a.flavor())
    }

    fn min_virtual_channels(&self, net: &AnyTopology) -> usize {
        delegate!(self, a => a.min_virtual_channels(net))
    }

    fn supported_on(&self, net: &AnyTopology) -> Result<(), RoutingTopologyError> {
        delegate!(self, a => a.supported_on(net))
    }

    fn deterministic_output(
        &self,
        net: &AnyTopology,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        delegate!(self, a => a.deterministic_output(net, header, current))
    }

    fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
        delegate!(self, a => a.make_header(net, src, dest))
    }

    fn route(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        delegate!(self, a => a.route(net, faults, header, current, v))
    }

    fn note_hop(
        &self,
        net: &AnyTopology,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        delegate!(self, a => a.note_hop(net, header, from, dim, dir));
    }

    fn reroute_on_fault(
        &self,
        net: &AnyTopology,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        delegate!(self, a => a.reroute_on_fault(net, faults, header, at, blocked))
    }

    fn name(&self) -> String {
        delegate!(self, a => a.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_to_the_wrapped_algorithm() {
        let mesh = AnyTopology::mesh(8, 2).unwrap();
        let torus = AnyTopology::torus(8, 2).unwrap();
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let sw: AnyRouting = SwBasedRouting::adaptive().into();
        let tm: AnyRouting = TurnModelRouting::adaptive().into();
        let ud: AnyRouting = UpDownRouting::adaptive().into();
        assert_eq!(sw.flavor(), RoutingFlavor::Adaptive);
        assert_eq!(sw.min_virtual_channels(&torus), 3);
        assert_eq!(tm.min_virtual_channels(&mesh), 2);
        assert_eq!(ud.min_virtual_channels(&ft), 2);
        assert_eq!(sw.supported_on(&torus), Ok(()));
        assert!(tm.supported_on(&torus).is_err());
        assert_eq!(ud.supported_on(&ft), Ok(()));
        assert!(ud.supported_on(&torus).is_err());
        assert!(sw.supported_on(&ft).is_err());
        assert_eq!(sw.name(), "SW-Based-nD (adaptive)");
        assert_eq!(tm.name(), "Negative-First (adaptive)");
        assert_eq!(ud.name(), "Up/Down (adaptive)");
    }

    #[test]
    fn deterministic_output_matches_the_subsystem() {
        let mesh = AnyTopology::mesh(8, 2).unwrap();
        let grid = mesh.grid().unwrap();
        let src = grid.node_from_digits(&[3, 5]).unwrap();
        let dest = grid.node_from_digits(&[5, 2]).unwrap();
        let sw: AnyRouting = SwBasedRouting::deterministic().into();
        let tm: AnyRouting = TurnModelRouting::deterministic().into();
        let h = sw.make_header(&mesh, src, dest);
        // e-cube goes lowest-dimension first (+2 in dim 0); negative-first
        // clears the negative dim-1 offset first.
        assert_eq!(
            sw.deterministic_output(&mesh, &h, src),
            Some((0, Direction::Plus))
        );
        assert_eq!(
            tm.deterministic_output(&mesh, &h, src),
            Some((1, Direction::Minus))
        );
        // Up/down on a fat-tree: an endpoint ascends through its only up-port.
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let ud: AnyRouting = UpDownRouting::deterministic().into();
        let h = ud.make_header(&ft, NodeId(1), NodeId(13));
        assert_eq!(
            ud.deterministic_output(&ft, &h, NodeId(1)),
            Some((1, Direction::Plus))
        );
    }

    #[test]
    fn routes_end_to_end_through_the_dispatcher() {
        let faults = FaultSet::new();
        let mesh = AnyTopology::mesh(4, 2).unwrap();
        let grid = mesh.grid().unwrap();
        let ft = AnyTopology::fat_tree_new(4, 2).unwrap();
        let mesh_src = grid.node_from_digits(&[0, 3]).unwrap();
        let mesh_dest = grid.node_from_digits(&[3, 0]).unwrap();
        for (net, algo, src, dest) in [
            (
                &mesh,
                AnyRouting::SwBased(SwBasedRouting::deterministic()),
                mesh_src,
                mesh_dest,
            ),
            (
                &mesh,
                AnyRouting::TurnModel(TurnModelRouting::deterministic()),
                mesh_src,
                mesh_dest,
            ),
            (
                &ft,
                AnyRouting::UpDown(UpDownRouting::deterministic()),
                NodeId(0),
                NodeId(13),
            ),
        ] {
            let mut header = algo.make_header(net, src, dest);
            let mut current = src;
            let mut hops = 0u32;
            loop {
                match algo.route(net, &faults, &mut header, current, 2) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(net, &mut header, current, c.dim, c.dir);
                        current = net.neighbor(current, c.dim, c.dir).unwrap();
                        hops += 1;
                        assert!(hops <= 6);
                    }
                    other => panic!("unexpected {other:?} from {}", algo.name()),
                }
            }
            assert_eq!(current, dest);
            assert_eq!(hops, net.distance(src, dest));
        }
    }
}
