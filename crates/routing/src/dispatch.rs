//! Runtime dispatch over the routing subsystems.
//!
//! The simulator engines are generic over [`RoutingAlgorithm`], which is
//! ideal for tests and benchmarks that know their algorithm statically. The
//! experiment harness, however, selects the algorithm from configuration at
//! runtime; [`AnyRouting`] is the closed enum it dispatches through — a
//! zero-allocation alternative to trait objects that keeps the engines
//! monomorphised.

use crate::decision::RouteDecision;
use crate::header::{RouteHeader, RoutingFlavor};
use crate::swbased::{RoutingAlgorithm, SwBasedRouting};
use crate::turnmodel::{RoutingTopologyError, TurnModelRouting};
use torus_faults::FaultSet;
use torus_topology::{Direction, Network, NodeId};

/// Either routing subsystem behind one dispatchable value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnyRouting {
    /// The Software-Based scheme over e-cube / Duato's protocol (all
    /// topologies).
    SwBased(SwBasedRouting),
    /// The negative-first turn model (open topologies only).
    TurnModel(TurnModelRouting),
}

impl From<SwBasedRouting> for AnyRouting {
    fn from(algo: SwBasedRouting) -> Self {
        AnyRouting::SwBased(algo)
    }
}

impl From<TurnModelRouting> for AnyRouting {
    fn from(algo: TurnModelRouting) -> Self {
        AnyRouting::TurnModel(algo)
    }
}

macro_rules! delegate {
    ($self:ident, $algo:ident => $body:expr) => {
        match $self {
            AnyRouting::SwBased($algo) => $body,
            AnyRouting::TurnModel($algo) => $body,
        }
    };
}

impl RoutingAlgorithm for AnyRouting {
    fn flavor(&self) -> RoutingFlavor {
        delegate!(self, a => a.flavor())
    }

    fn min_virtual_channels(&self, net: &Network) -> usize {
        delegate!(self, a => a.min_virtual_channels(net))
    }

    fn supported_on(&self, net: &Network) -> Result<(), RoutingTopologyError> {
        delegate!(self, a => a.supported_on(net))
    }

    fn deterministic_output(
        &self,
        net: &Network,
        header: &RouteHeader,
        current: NodeId,
    ) -> Option<(usize, Direction)> {
        delegate!(self, a => a.deterministic_output(net, header, current))
    }

    fn make_header(&self, net: &Network, src: NodeId, dest: NodeId) -> RouteHeader {
        delegate!(self, a => a.make_header(net, src, dest))
    }

    fn route(
        &self,
        net: &Network,
        faults: &FaultSet,
        header: &mut RouteHeader,
        current: NodeId,
        v: usize,
    ) -> RouteDecision {
        delegate!(self, a => a.route(net, faults, header, current, v))
    }

    fn note_hop(
        &self,
        net: &Network,
        header: &mut RouteHeader,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        delegate!(self, a => a.note_hop(net, header, from, dim, dir));
    }

    fn reroute_on_fault(
        &self,
        net: &Network,
        faults: &FaultSet,
        header: &mut RouteHeader,
        at: NodeId,
        blocked: (usize, Direction),
    ) -> bool {
        delegate!(self, a => a.reroute_on_fault(net, faults, header, at, blocked))
    }

    fn name(&self) -> String {
        delegate!(self, a => a.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_to_the_wrapped_algorithm() {
        let mesh = Network::mesh(8, 2).unwrap();
        let torus = Network::torus(8, 2).unwrap();
        let sw: AnyRouting = SwBasedRouting::adaptive().into();
        let tm: AnyRouting = TurnModelRouting::adaptive().into();
        assert_eq!(sw.flavor(), RoutingFlavor::Adaptive);
        assert_eq!(sw.min_virtual_channels(&torus), 3);
        assert_eq!(tm.min_virtual_channels(&mesh), 2);
        assert_eq!(sw.supported_on(&torus), Ok(()));
        assert!(tm.supported_on(&torus).is_err());
        assert_eq!(sw.name(), "SW-Based-nD (adaptive)");
        assert_eq!(tm.name(), "Negative-First (adaptive)");
    }

    #[test]
    fn deterministic_output_matches_the_subsystem() {
        let mesh = Network::mesh(8, 2).unwrap();
        let src = mesh.node_from_digits(&[3, 5]).unwrap();
        let dest = mesh.node_from_digits(&[5, 2]).unwrap();
        let sw: AnyRouting = SwBasedRouting::deterministic().into();
        let tm: AnyRouting = TurnModelRouting::deterministic().into();
        let h = sw.make_header(&mesh, src, dest);
        // e-cube goes lowest-dimension first (+2 in dim 0); negative-first
        // clears the negative dim-1 offset first.
        assert_eq!(
            sw.deterministic_output(&mesh, &h, src),
            Some((0, Direction::Plus))
        );
        assert_eq!(
            tm.deterministic_output(&mesh, &h, src),
            Some((1, Direction::Minus))
        );
    }

    #[test]
    fn routes_end_to_end_through_the_dispatcher() {
        let mesh = Network::mesh(4, 2).unwrap();
        let faults = FaultSet::new();
        for algo in [
            AnyRouting::SwBased(SwBasedRouting::deterministic()),
            AnyRouting::TurnModel(TurnModelRouting::deterministic()),
        ] {
            let src = mesh.node_from_digits(&[0, 3]).unwrap();
            let dest = mesh.node_from_digits(&[3, 0]).unwrap();
            let mut header = algo.make_header(&mesh, src, dest);
            let mut current = src;
            let mut hops = 0u32;
            loop {
                match algo.route(&mesh, &faults, &mut header, current, 2) {
                    RouteDecision::Deliver => break,
                    RouteDecision::Forward(cands) => {
                        let c = &cands[0];
                        algo.note_hop(&mesh, &mut header, current, c.dim, c.dir);
                        current = mesh.neighbor(current, c.dim, c.dir).unwrap();
                        hops += 1;
                        assert!(hops <= 6);
                    }
                    other => panic!("unexpected {other:?} from {}", algo.name()),
                }
            }
            assert_eq!(current, dest);
            assert_eq!(hops, mesh.distance(src, dest));
        }
    }
}
