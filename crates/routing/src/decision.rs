//! Routing decisions returned to the router pipeline.

use serde::{Deserialize, Serialize};
use torus_topology::Direction;

/// One admissible output for a header flit: a physical output port plus the
/// set of virtual channels the deadlock-avoidance scheme permits on it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutputCandidate {
    /// Dimension of the output physical channel.
    pub dim: usize,
    /// Direction of the output physical channel.
    pub dir: Direction,
    /// Permitted virtual-channel indices on that physical channel, in no
    /// particular order (the VC allocator picks a free one at random, per the
    /// paper's assumption (e)).
    pub vcs: Vec<usize>,
    /// True when this candidate is an escape channel of Duato's protocol
    /// (used only when no adaptive candidate has a free VC).
    pub is_escape: bool,
}

impl OutputCandidate {
    /// Creates an adaptive/ordinary candidate.
    pub fn new(dim: usize, dir: Direction, vcs: Vec<usize>) -> Self {
        OutputCandidate {
            dim,
            dir,
            vcs,
            is_escape: false,
        }
    }

    /// Creates an escape-channel candidate.
    pub fn escape(dim: usize, dir: Direction, vc: usize) -> Self {
        OutputCandidate {
            dim,
            dir,
            vcs: vec![vc],
            is_escape: true,
        }
    }
}

/// Decision taken by the routing function for a header flit at a node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteDecision {
    /// Forward the message over one of the listed candidates (in decreasing
    /// preference order between groups; within a group the VC allocator picks
    /// randomly among free VCs).
    Forward(Vec<OutputCandidate>),
    /// The message has reached its final destination; eject it to the local
    /// PE.
    Deliver,
    /// Every useful output leads to a faulty component: absorb the message at
    /// this node and hand it to the message-passing software for re-routing
    /// (the Software-Based mechanism).
    Absorb,
}

impl RouteDecision {
    /// Convenience accessor: the forwarding candidates, if any.
    pub fn candidates(&self) -> &[OutputCandidate] {
        match self {
            RouteDecision::Forward(c) => c,
            _ => &[],
        }
    }

    /// True if the decision is to deliver locally.
    pub fn is_deliver(&self) -> bool {
        matches!(self, RouteDecision::Deliver)
    }

    /// True if the decision is to absorb the message.
    pub fn is_absorb(&self) -> bool {
        matches!(self, RouteDecision::Absorb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_constructors() {
        let c = OutputCandidate::new(1, Direction::Minus, vec![2, 3, 4]);
        assert!(!c.is_escape);
        assert_eq!(c.vcs, vec![2, 3, 4]);
        let e = OutputCandidate::escape(0, Direction::Plus, 1);
        assert!(e.is_escape);
        assert_eq!(e.vcs, vec![1]);
    }

    #[test]
    fn decision_accessors() {
        let d = RouteDecision::Forward(vec![OutputCandidate::new(0, Direction::Plus, vec![0])]);
        assert_eq!(d.candidates().len(), 1);
        assert!(!d.is_deliver());
        assert!(!d.is_absorb());
        assert!(RouteDecision::Deliver.is_deliver());
        assert!(RouteDecision::Absorb.is_absorb());
        assert!(RouteDecision::Deliver.candidates().is_empty());
    }
}
