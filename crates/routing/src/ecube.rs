//! Dimension-order (e-cube) output selection.
//!
//! E-cube routing nullifies the offset to the destination one dimension at a
//! time, in increasing dimension order. The Software-Based scheme reuses this
//! selection both as the deterministic flavour and as the escape layer of the
//! adaptive flavour, extended with the per-dimension *forced direction*
//! overrides installed by the software layer when it re-routes an absorbed
//! message the "wrong way" around a ring.
//!
//! Virtual-channel classes are wrap-aware: a hop in a wrapped dimension must
//! use the dateline class the header has earned, while a hop in an open
//! (mesh) dimension needs no dateline split and may use the whole VC pool.

use crate::header::RouteHeader;
use torus_topology::{Direction, Network, NodeId, VcClass};

/// The e-cube output (dimension, direction) for a header at `current`, taking
/// the header's forced-direction overrides into account.
///
/// Returns `None` when the message is already at its current routing target.
pub fn ecube_output(
    net: &Network,
    header: &RouteHeader,
    current: NodeId,
) -> Option<(usize, Direction)> {
    let target = header.target();
    for dim in 0..net.dims() {
        let off = net.offset(current, target, dim);
        if let Some(forced) = header.forced_dir[dim] {
            // A forced dimension is routed (possibly non-minimally) in the
            // stored direction until its offset is nullified.
            if off != 0 {
                return Some((dim, forced));
            }
            // Offset already nullified: fall through to the next dimension
            // (the override is cleared by `RouteHeader::note_hop`).
            continue;
        }
        if off != 0 {
            return Some((dim, Direction::from_offset(off).expect("non-zero offset")));
        }
    }
    None
}

/// The dateline virtual-channel class the deterministic scheme requires for a
/// hop in `dim`, given the header's dateline-crossing history. (Headers never
/// record a crossing in an open dimension, so the class is always
/// [`VcClass::BeforeDateline`] there.)
pub fn ecube_vc_class(header: &RouteHeader, dim: usize) -> VcClass {
    if header.crossed_dateline[dim] {
        VcClass::AfterDateline
    } else {
        VcClass::BeforeDateline
    }
}

/// Permitted virtual channels for a deterministic hop in `dim` when `v`
/// virtual channels are configured per physical channel: on a wrapped
/// dimension, the half of the VC pool assigned to the header's current
/// dateline class; on an open dimension, the whole pool (no dateline exists,
/// so no split is needed).
pub fn deterministic_vcs(net: &Network, header: &RouteHeader, dim: usize, v: usize) -> Vec<usize> {
    let policy = torus_topology::DatelinePolicy::new(net);
    policy
        .deterministic_range(v, dim, ecube_vc_class(header, dim))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::RoutingFlavor;

    fn torus() -> Network {
        Network::torus(8, 2).unwrap()
    }

    #[test]
    fn routes_lowest_dimension_first() {
        let t = torus();
        let src = t.node_from_digits(&[1, 1]).unwrap();
        let dest = t.node_from_digits(&[3, 5]).unwrap();
        let h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        assert_eq!(ecube_output(&t, &h, src), Some((0, Direction::Plus)));
        // Once dimension 0 is resolved, dimension 1 is routed.
        let mid = t.node_from_digits(&[3, 1]).unwrap();
        assert_eq!(ecube_output(&t, &h, mid), Some((1, Direction::Plus)));
        assert_eq!(ecube_output(&t, &h, dest), None);
    }

    #[test]
    fn picks_shorter_ring_direction() {
        let t = torus();
        let src = t.node_from_digits(&[1, 0]).unwrap();
        let dest = t.node_from_digits(&[6, 0]).unwrap();
        let h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        assert_eq!(ecube_output(&t, &h, src), Some((0, Direction::Minus)));
    }

    #[test]
    fn mesh_routes_straight_without_wrap_shortcut() {
        let m = Network::mesh(8, 2).unwrap();
        let src = m.node_from_digits(&[1, 0]).unwrap();
        let dest = m.node_from_digits(&[6, 0]).unwrap();
        let h = RouteHeader::new(&m, src, dest, RoutingFlavor::Deterministic);
        // On the torus the minimal direction is Minus (3 hops over the wrap);
        // on the mesh the only way is Plus (5 hops).
        assert_eq!(ecube_output(&m, &h, src), Some((0, Direction::Plus)));
    }

    #[test]
    fn forced_direction_overrides_minimal_choice() {
        let t = torus();
        let src = t.node_from_digits(&[1, 0]).unwrap();
        let dest = t.node_from_digits(&[3, 0]).unwrap();
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        h.forced_dir[0] = Some(Direction::Minus);
        assert_eq!(ecube_output(&t, &h, src), Some((0, Direction::Minus)));
        // With the offset nullified the forced dimension is skipped.
        assert_eq!(ecube_output(&t, &h, dest), None);
    }

    #[test]
    fn forced_dimension_with_zero_offset_is_skipped() {
        let t = torus();
        let src = t.node_from_digits(&[2, 1]).unwrap();
        let dest = t.node_from_digits(&[2, 5]).unwrap();
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        h.forced_dir[0] = Some(Direction::Plus);
        // Dimension 0 has no offset, so routing proceeds in dimension 1.
        assert_eq!(ecube_output(&t, &h, src), Some((1, Direction::Plus)));
    }

    #[test]
    fn routes_toward_intermediate_target_first() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0]).unwrap();
        let dest = t.node_from_digits(&[4, 0]).unwrap();
        let via = t.node_from_digits(&[0, 2]).unwrap();
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        h.push_intermediate(via);
        assert_eq!(ecube_output(&t, &h, src), Some((1, Direction::Plus)));
    }

    #[test]
    fn vc_class_follows_dateline_history() {
        let t = torus();
        let src = t.node_from_digits(&[0, 0]).unwrap();
        let dest = t.node_from_digits(&[5, 0]).unwrap();
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        assert_eq!(ecube_vc_class(&h, 0), VcClass::BeforeDateline);
        assert_eq!(deterministic_vcs(&t, &h, 0, 4), vec![0, 1]);
        h.crossed_dateline[0] = true;
        assert_eq!(ecube_vc_class(&h, 0), VcClass::AfterDateline);
        assert_eq!(deterministic_vcs(&t, &h, 0, 4), vec![2, 3]);
        // other dimensions are unaffected
        assert_eq!(deterministic_vcs(&t, &h, 1, 6), vec![0, 1, 2]);
    }

    #[test]
    fn mesh_hops_use_the_whole_vc_pool() {
        let m = Network::mesh(8, 2).unwrap();
        let src = m.node_from_digits(&[0, 0]).unwrap();
        let dest = m.node_from_digits(&[5, 0]).unwrap();
        let h = RouteHeader::new(&m, src, dest, RoutingFlavor::Deterministic);
        // No dateline split on open dimensions: every VC is permitted, and a
        // single VC suffices.
        assert_eq!(deterministic_vcs(&m, &h, 0, 4), vec![0, 1, 2, 3]);
        assert_eq!(deterministic_vcs(&m, &h, 1, 1), vec![0]);
        // Mixed shape: the wrapped dimension still splits.
        let mixed = Network::new(vec![8, 4], vec![true, false]).unwrap();
        let h = RouteHeader::new(
            &mixed,
            mixed.node_from_digits(&[0, 0]).unwrap(),
            mixed.node_from_digits(&[5, 3]).unwrap(),
            RoutingFlavor::Deterministic,
        );
        assert_eq!(deterministic_vcs(&mixed, &h, 0, 4), vec![0, 1]);
        assert_eq!(deterministic_vcs(&mixed, &h, 1, 4), vec![0, 1, 2, 3]);
    }
}
