//! Per-message routing state carried in the message header.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use torus_topology::{AnyTopology, Direction, NodeId, Topology};

/// The two flavours of Software-Based routing evaluated in the paper.
///
/// In a fault-free network the deterministic flavour is identical to
/// dimension-order (e-cube) routing and the adaptive flavour is identical to
/// Duato's Protocol fully adaptive routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingFlavor {
    /// Deterministic (e-cube based) Software-Based routing.
    Deterministic,
    /// Fully adaptive (Duato's Protocol based) Software-Based routing.
    Adaptive,
}

impl RoutingFlavor {
    /// Short label used in result tables ("deterministic" / "adaptive").
    pub fn label(&self) -> &'static str {
        match self {
            RoutingFlavor::Deterministic => "deterministic",
            RoutingFlavor::Adaptive => "adaptive",
        }
    }
}

/// Routing state carried in a message header.
///
/// Besides the destination this records everything the Software-Based scheme
/// rewrites when the message-passing software re-routes an absorbed message:
/// the chain of intermediate destinations, per-dimension direction overrides
/// (rule 1: "re-route in the same dimension in the opposite direction"), the
/// `faulted` flag that pins the message to deterministic routing after its
/// first fault encounter, and the remaining misroute budget that bounds
/// livelock.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteHeader {
    /// Node that generated the message.
    pub source: NodeId,
    /// Final destination (the node whose PE must receive the message).
    pub final_dest: NodeId,
    /// Chain of routing targets; the front is the node routing currently aims
    /// for, the back is always [`RouteHeader::final_dest`].
    via: VecDeque<NodeId>,
    /// Flavour the message was injected with.
    pub flavor: RoutingFlavor,
    /// Set once the message has encountered a fault; from then on it is
    /// routed deterministically (Section 4 of the paper).
    pub faulted: bool,
    /// Per-dimension forced direction overrides installed by the software
    /// layer (rule 1). A forced dimension is routed non-minimally in the
    /// stored direction until its offset towards the current target reaches
    /// zero.
    pub forced_dir: Vec<Option<Direction>>,
    /// Per-dimension "crossed the dateline" flags for the current network
    /// traversal, used to select the dateline virtual-channel class.
    pub crossed_dateline: Vec<bool>,
    /// Number of times this message has been absorbed due to faults.
    pub absorptions: u32,
    /// Remaining misroute budget before the software layer computes an
    /// explicit fault-free path (guaranteeing livelock freedom).
    pub misroute_budget: u32,
    /// Total network hops taken so far (across all injections).
    pub hops: u32,
    /// True once the software layer has installed an explicit fault-free path
    /// (rule 3); such a message needs no further re-routing.
    pub escorted: bool,
}

impl RouteHeader {
    /// Creates the header of a freshly generated message.
    pub fn new<T: Topology + ?Sized>(
        net: &T,
        source: NodeId,
        dest: NodeId,
        flavor: RoutingFlavor,
    ) -> Self {
        let n = net.dims();
        let mut via = VecDeque::with_capacity(2);
        via.push_back(dest);
        RouteHeader {
            source,
            final_dest: dest,
            via,
            flavor,
            faulted: false,
            forced_dir: vec![None; n],
            crossed_dateline: vec![false; n],
            absorptions: 0,
            misroute_budget: default_misroute_budget(net),
            hops: 0,
            escorted: false,
        }
    }

    /// The node routing is currently aiming for (an intermediate destination
    /// or the final destination).
    pub fn target(&self) -> NodeId {
        *self
            .via
            .front()
            .expect("via chain always contains at least the final destination")
    }

    /// Number of intermediate destinations still ahead (excluding the final
    /// destination).
    pub fn pending_via(&self) -> usize {
        self.via.len() - 1
    }

    /// Called when the header reaches its current target: advances to the next
    /// via node. Returns `true` if the message has arrived at its final
    /// destination and must be delivered.
    pub fn advance_target(&mut self, at: NodeId) -> bool {
        debug_assert_eq!(at, self.target());
        if self.via.len() > 1 {
            self.via.pop_front();
            false
        } else {
            true
        }
    }

    /// Replaces the whole via chain (software re-route, rule 3). The final
    /// destination is appended automatically if missing.
    pub fn set_via_chain<I: IntoIterator<Item = NodeId>>(&mut self, chain: I) {
        self.via = chain.into_iter().collect();
        if self.via.back() != Some(&self.final_dest) {
            self.via.push_back(self.final_dest);
        }
        if self.via.is_empty() {
            self.via.push_back(self.final_dest);
        }
    }

    /// Prepends one intermediate destination before the current target
    /// (software re-route, rule 2: orthogonal detour).
    pub fn push_intermediate(&mut self, node: NodeId) {
        if self.target() != node {
            self.via.push_front(node);
        }
    }

    /// Resets the per-traversal state when the message is (re-)injected into
    /// the network: a re-injected message starts a fresh traversal, so its
    /// dateline-crossing flags are cleared.
    pub fn reset_for_injection(&mut self) {
        for c in &mut self.crossed_dateline {
            *c = false;
        }
    }

    /// Whether the message must currently be routed deterministically: either
    /// it was injected deterministic, or it has already encountered a fault.
    pub fn is_deterministic(&self) -> bool {
        self.faulted || self.flavor == RoutingFlavor::Deterministic
    }

    /// Records that the header moved one hop along `dim` in direction `dir`
    /// from ring position `from_pos`, updating dateline and forced-direction
    /// bookkeeping. Datelines and forced-direction release are grid concepts;
    /// on indirect topologies only the hop counter advances.
    pub fn note_hop(&mut self, net: &AnyTopology, from: NodeId, dim: usize, dir: Direction) {
        self.hops += 1;
        if let Some(grid) = net.grid() {
            self.note_grid_bookkeeping(grid, from, dim, dir);
        }
    }

    /// The grid-specific part of [`RouteHeader::note_hop`], usable directly by
    /// analyses that walk a [`Network`](torus_topology::Network) (the CDG
    /// builders). Does **not** advance the hop counter.
    pub fn note_grid_bookkeeping(
        &mut self,
        grid: &torus_topology::Network,
        from: NodeId,
        dim: usize,
        dir: Direction,
    ) {
        let from_pos = grid.position(from, dim);
        if grid.crosses_dateline(dim, from_pos, dir) {
            self.crossed_dateline[dim] = true;
        }
        // A forced (non-minimal) dimension is released as soon as the offset
        // towards the current target is nullified.
        let next = grid
            .neighbor(from, dim, dir)
            .expect("a recorded hop always crosses an existing channel");
        if self.forced_dir[dim].is_some() && grid.offset(next, self.target(), dim) == 0 {
            self.forced_dir[dim] = None;
        }
    }
}

/// Default misroute budget: allows a message to be re-routed by the simple
/// table rules a couple of times per dimension before the software layer
/// computes an explicit fault-free path. `4 + 2n` absorptions is far more than
/// the fault patterns of the paper ever require, yet small enough to bound
/// worst-case livelock tightly. (On a fat-tree `n` is the switch arity, so
/// the budget scales with the number of alternate parents.)
pub fn default_misroute_budget<T: Topology + ?Sized>(net: &T) -> u32 {
    4 + 2 * net.dims() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus() -> AnyTopology {
        AnyTopology::torus(8, 2).unwrap()
    }

    fn node(t: &AnyTopology, digits: &[u16]) -> NodeId {
        t.grid().unwrap().node_from_digits(digits).unwrap()
    }

    #[test]
    fn new_header_targets_final_destination() {
        let t = torus();
        let h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Adaptive);
        assert_eq!(h.target(), NodeId(9));
        assert_eq!(h.pending_via(), 0);
        assert!(!h.faulted);
        assert!(!h.is_deterministic());
        assert_eq!(h.absorptions, 0);
    }

    #[test]
    fn deterministic_flavor_is_always_deterministic() {
        let t = torus();
        let h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Deterministic);
        assert!(h.is_deterministic());
        let mut h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Adaptive);
        h.faulted = true;
        assert!(h.is_deterministic());
    }

    #[test]
    fn advance_target_walks_the_via_chain() {
        let t = torus();
        let mut h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Deterministic);
        h.push_intermediate(NodeId(3));
        assert_eq!(h.target(), NodeId(3));
        assert_eq!(h.pending_via(), 1);
        assert!(!h.advance_target(NodeId(3)));
        assert_eq!(h.target(), NodeId(9));
        assert!(h.advance_target(NodeId(9)));
    }

    #[test]
    fn push_intermediate_ignores_duplicate_target() {
        let t = torus();
        let mut h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Deterministic);
        h.push_intermediate(NodeId(9));
        assert_eq!(h.pending_via(), 0);
    }

    #[test]
    fn set_via_chain_appends_final_destination() {
        let t = torus();
        let mut h = RouteHeader::new(&t, NodeId(0), NodeId(9), RoutingFlavor::Deterministic);
        h.set_via_chain([NodeId(1), NodeId(2)]);
        assert_eq!(h.target(), NodeId(1));
        assert_eq!(h.pending_via(), 2);
        h.set_via_chain([NodeId(5), NodeId(9)]);
        assert_eq!(h.pending_via(), 1);
        h.set_via_chain(std::iter::empty());
        assert_eq!(h.target(), NodeId(9));
    }

    #[test]
    fn note_hop_tracks_datelines_and_hops() {
        let t = torus();
        let src = node(&t, &[7, 0]);
        let mut h = RouteHeader::new(&t, src, node(&t, &[1, 0]), RoutingFlavor::Deterministic);
        assert!(!h.crossed_dateline[0]);
        h.note_hop(&t, src, 0, Direction::Plus); // 7 -> 0 crosses the dateline
        assert!(h.crossed_dateline[0]);
        assert!(!h.crossed_dateline[1]);
        assert_eq!(h.hops, 1);
    }

    #[test]
    fn forced_direction_released_when_offset_nullified() {
        let t = torus();
        let src = node(&t, &[3, 0]);
        let dest = node(&t, &[4, 0]);
        let mut h = RouteHeader::new(&t, src, dest, RoutingFlavor::Deterministic);
        // Force the "wrong way round" in dimension 0.
        h.forced_dir[0] = Some(Direction::Minus);
        // Walk 3 -> 2 -> 1 -> 0 -> 7 -> 6 -> 5 -> 4 the long way (7 hops); the
        // override must persist until the hop that lands on the target column.
        let mut cur = src;
        for _ in 0..7 {
            assert!(h.forced_dir[0].is_some());
            h.note_hop(&t, cur, 0, Direction::Minus);
            cur = t.neighbor(cur, 0, Direction::Minus).unwrap();
        }
        assert_eq!(cur, dest);
        assert!(h.forced_dir[0].is_none());
    }

    #[test]
    fn reset_for_injection_clears_dateline_flags() {
        let t = torus();
        let mut h = RouteHeader::new(&t, NodeId(0), NodeId(20), RoutingFlavor::Adaptive);
        h.crossed_dateline[1] = true;
        h.hops = 5;
        h.reset_for_injection();
        assert!(!h.crossed_dateline[1]);
        assert_eq!(h.hops, 5, "hop count persists across re-injection");
    }

    #[test]
    fn misroute_budget_scales_with_dimensionality() {
        assert_eq!(
            default_misroute_budget(&AnyTopology::torus(8, 2).unwrap()),
            8
        );
        assert_eq!(
            default_misroute_budget(&AnyTopology::torus(8, 3).unwrap()),
            10
        );
        // Fat-tree: dims == arity, so budget scales with parent fan-out.
        assert_eq!(
            default_misroute_budget(&AnyTopology::fat_tree_new(4, 2).unwrap()),
            12
        );
    }
}
