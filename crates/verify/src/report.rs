//! Rendering of matrix runs: machine-readable `VERIFY.json` and the
//! human-readable console summary.
//!
//! The JSON is hand-rolled (the workspace's vendored `serde` is a derive
//! stub without a format backend), matching the idiom of the figure and
//! bench reports. Strings that can carry arbitrary error text are escaped.

use crate::epochs::{EpochReport, ScheduleOutcome};
use crate::matrix::{CaseResult, MatrixReport, Verdict};

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let body = items
        .iter()
        .map(|s| format!("{indent}  \"{}\"", json_escape(s)))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n{indent}]")
}

/// Serialises one epoch of a schedule case as a compact JSON object.
fn epoch_json(e: &EpochReport, indent: &str) -> String {
    format!(
        "{indent}{{\"cycle\": {}, \"new_faults\": {}, \"faulty_nodes\": {}, \
         \"faulty_links\": {}, \"pairs\": {}, \"routable\": {}, \"rerouted\": {}, \
         \"disconnected\": {}, \"endpoint_faulty\": {}, \"rewalked\": {}, \
         \"reused\": {}, \"cdg_edges\": {}, \"acyclic\": {}, \"states\": {}, \
         \"wall_ms\": {}, \"witness\": {}}}",
        e.cycle,
        json_string_array(&e.new_faults, indent),
        e.faulty_nodes,
        e.faulty_links,
        e.pairs,
        e.routable,
        e.rerouted,
        e.disconnected,
        e.endpoint_faulty,
        e.rewalked,
        e.reused,
        e.cdg_edges,
        e.acyclic,
        e.states,
        e.wall_ms,
        json_string_array(&e.witness, indent),
    )
}

fn epochs_json(epochs: &[EpochReport], indent: &str) -> String {
    if epochs.is_empty() {
        return "[]".to_string();
    }
    let body = epochs
        .iter()
        .map(|e| epoch_json(e, &format!("{indent}  ")))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n{indent}]")
}

/// Serialises a matrix report to the `VERIFY.json` schema (v3: per-case
/// `epochs` array with pair-fate counts and re-walked/reused tallies for
/// fault-schedule cases).
pub fn to_json(report: &MatrixReport) -> String {
    let (proved, rejected, failed) = report.tallies();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"swbft-verify-v3\",\n");
    out.push_str(&format!("  \"matrix\": \"{}\",\n", report.kind.name()));
    out.push_str(&format!("  \"jobs\": {},\n", report.jobs));
    out.push_str(&format!("  \"wall_clock_ms\": {},\n", report.wall_clock_ms));
    out.push_str(&format!("  \"cases\": {},\n", report.cases.len()));
    out.push_str(&format!("  \"proved\": {proved},\n"));
    out.push_str(&format!("  \"rejected\": {rejected},\n"));
    out.push_str(&format!("  \"failed\": {failed},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in report.cases.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"topology\": \"{}\",\n",
            json_escape(&c.topology)
        ));
        out.push_str(&format!(
            "      \"routing\": \"{}\",\n",
            json_escape(&c.routing)
        ));
        out.push_str(&format!(
            "      \"virtual_channels\": {},\n",
            c.virtual_channels
        ));
        out.push_str(&format!(
            "      \"faults\": \"{}\",\n",
            json_escape(&c.faults)
        ));
        out.push_str(&format!("      \"verdict\": \"{}\",\n", c.verdict.name()));
        out.push_str(&format!("      \"cdg_vertices\": {},\n", c.cdg_vertices));
        out.push_str(&format!("      \"cdg_edges\": {},\n", c.cdg_edges));
        out.push_str(&format!("      \"pairs\": {},\n", c.pairs));
        out.push_str(&format!("      \"delivered\": {},\n", c.delivered));
        out.push_str(&format!("      \"states\": {},\n", c.states));
        out.push_str(&format!(
            "      \"detail\": \"{}\",\n",
            json_escape(&c.detail)
        ));
        out.push_str(&format!(
            "      \"witness\": {},\n",
            json_string_array(&c.witness, "      ")
        ));
        out.push_str(&format!(
            "      \"epochs\": {}\n",
            epochs_json(&c.epochs, "      ")
        ));
        out.push_str(if i + 1 == report.cases.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One console line per case, e.g.
/// `torus:4x2  deterministic    v=2 nf=0      proved  (112 pairs, 64 edges)`.
pub fn case_line(c: &CaseResult) -> String {
    let mark = match c.verdict {
        Verdict::Proved => "proved  ",
        Verdict::Rejected => "rejected",
        Verdict::Failed => "FAILED  ",
    };
    let stats = match c.verdict {
        Verdict::Rejected => String::new(),
        _ => format!(
            " ({} pairs, {} edges, {} states)",
            c.pairs, c.cdg_edges, c.states
        ),
    };
    format!(
        "{:<12} {:<16} v={} {:<12} {mark}{stats}",
        c.topology, c.routing, c.virtual_channels, c.faults
    )
}

/// One console line per epoch of a schedule case, e.g.
/// `epoch@100 [node@8] 110 pairs: 98 routable / 8 rerouted / 4 disconnected
/// (12 re-walked, 98 reused), acyclic`.
pub fn epoch_line(e: &EpochReport) -> String {
    format!(
        "epoch@{} [{}] {} pairs: {} routable / {} rerouted / {} disconnected \
         ({} re-walked, {} reused), {}",
        e.cycle,
        e.new_faults.join("+"),
        e.pairs,
        e.routable,
        e.rerouted,
        e.disconnected,
        e.rewalked,
        e.reused,
        if e.acyclic { "acyclic" } else { "CYCLIC" },
    )
}

/// Renders a standalone schedule verification (the `verify --schedule`
/// path): one line per epoch, witnesses, and the verdict.
pub fn render_schedule_text(outcome: &ScheduleOutcome) -> String {
    let mut out = String::new();
    for e in &outcome.epochs {
        out.push_str(&format!("  {}\n", epoch_line(e)));
        if let Some(failure) = &e.failure {
            out.push_str(&format!("    violation: {failure}\n"));
        }
        for line in &e.witness {
            out.push_str(&format!("    {line}\n"));
        }
    }
    for d in &outcome.divergences {
        out.push_str(&format!("  divergence: {d}\n"));
    }
    out.push_str(&format!(
        "schedule: {}\n",
        if outcome.failed() { "FAILED" } else { "proved" }
    ));
    out
}

/// Renders the full console report, including witnesses of every failed
/// case and the final tally line.
pub fn render_text(report: &MatrixReport) -> String {
    let mut out = String::new();
    for c in &report.cases {
        out.push_str(&case_line(c));
        out.push('\n');
        if c.verdict == Verdict::Failed {
            out.push_str(&format!("  violation: {}\n", c.detail));
            for line in &c.witness {
                out.push_str(&format!("  {line}\n"));
            }
            for e in &c.epochs {
                out.push_str(&format!("  {}\n", epoch_line(e)));
            }
        }
    }
    let (proved, rejected, failed) = report.tallies();
    out.push_str(&format!(
        "matrix {}: {} cases — {proved} proved, {rejected} rejected, {failed} failed \
         ({} ms on {} thread{})\n",
        report.kind.name(),
        report.cases.len(),
        report.wall_clock_ms,
        report.jobs,
        if report.jobs == 1 { "" } else { "s" }
    ));
    out
}
