//! Static reachability and progress checking over the routing relation.
//!
//! For every (source, destination) pair the checker inspects the pair's
//! complete state graph ([`RelationWalk`]) and proves one of:
//!
//! * **Delivers** — every maximal path through the relation ends in delivery
//!   at the final destination, regardless of which permitted candidate the
//!   virtual-channel allocator picks at each hop. This is the static
//!   counterpart of the simulator's "no message is ever dropped" invariant,
//!   and it covers *all* adversarial schedules at once.
//! * **Dead end** — some reachable state absorbs the message and the
//!   software layer finds no route (`reroute_on_fault` returns `false`),
//!   with the hop-by-hop witness path from injection.
//! * **Livelock** — the state graph contains a reachable cycle: some
//!   schedule routes the message forever without delivering, again with a
//!   concrete witness (the node cycle).
//!
//! Because the walk enumerates header states exactly, a cycle here is a real
//! property of the routing relation, not a sampling artefact; conversely an
//! acyclic state graph whose sinks are all deliveries *proves* progress for
//! the pair.

use crate::relation::{walk_pair, RelationWalk, StateBudgetExceeded, Step, Terminal};
use torus_faults::FaultSet;
use torus_routing::RoutingAlgorithm;
use torus_topology::{AnyTopology, NodeId};

/// Typed verdict for one (source, destination) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairVerdict {
    /// Every schedule delivers the message.
    Delivers,
    /// A reachable state is a dead end; the witness is the node path from
    /// injection to the dead state (consecutive entries may repeat a node
    /// across an absorb/re-inject boundary).
    DeadEnd {
        /// Node path from the injection state to the dead state.
        path: Vec<NodeId>,
    },
    /// The state graph has a reachable cycle; the witness is the node cycle.
    Livelock {
        /// Nodes of the cyclic run of states.
        cycle: Vec<NodeId>,
    },
}

/// First failing pair of a reachability sweep.
#[derive(Clone, Debug)]
pub struct PairFailure {
    /// Source node of the failing pair.
    pub src: NodeId,
    /// Destination node of the failing pair.
    pub dest: NodeId,
    /// The failing verdict (never [`PairVerdict::Delivers`]).
    pub verdict: PairVerdict,
}

/// Summary of a whole-network reachability sweep.
#[derive(Clone, Debug, Default)]
pub struct ReachReport {
    /// Ordered healthy pairs checked.
    pub pairs: usize,
    /// Pairs proved to deliver under every schedule.
    pub delivered: usize,
    /// Pairs with a reachable dead end.
    pub dead_ends: usize,
    /// Pairs with a reachable livelock cycle.
    pub livelocks: usize,
    /// Total states enumerated.
    pub states_explored: usize,
    /// Largest single-pair state graph.
    pub max_states_per_pair: usize,
    /// First failure encountered, with its witness.
    pub first_failure: Option<PairFailure>,
}

/// Returns each step's successor state ids.
fn successors(steps: &[Step]) -> impl Iterator<Item = usize> + '_ {
    steps.iter().map(|s| match s {
        Step::Hop { next, .. } | Step::Reinject { next } => *next,
    })
}

/// Classifies one pair's state graph. Dead ends take precedence over
/// livelocks in the verdict (both are reported in sweep counts via separate
/// pairs, but a single pair gets its most actionable witness).
pub fn check_pair(walk: &RelationWalk) -> PairVerdict {
    // Breadth-first search with parents: find a dead terminal.
    let mut parent: Vec<Option<usize>> = vec![None; walk.len()];
    let mut seen = vec![false; walk.len()];
    let mut queue = std::collections::VecDeque::new();
    seen[walk.start()] = true;
    queue.push_back(walk.start());
    while let Some(s) = queue.pop_front() {
        let state = walk.state(s);
        if state.terminal == Some(Terminal::Dead) {
            let mut path = vec![state.node];
            let mut at = s;
            while let Some(p) = parent[at] {
                path.push(walk.state(p).node);
                at = p;
            }
            path.reverse();
            return PairVerdict::DeadEnd { path };
        }
        for next in successors(&state.steps) {
            if !seen[next] {
                seen[next] = true;
                parent[next] = Some(s);
                queue.push_back(next);
            }
        }
    }

    // Three-colour DFS: find a cycle (livelock) and extract its node run.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; walk.len()];
    let mut stack: Vec<(usize, usize)> = vec![(walk.start(), 0)];
    colour[walk.start()] = Colour::Grey;
    while let Some(&mut (s, ref mut idx)) = stack.last_mut() {
        let succs: Vec<usize> = successors(&walk.state(s).steps).collect();
        if *idx < succs.len() {
            let child = succs[*idx];
            *idx += 1;
            match colour[child] {
                Colour::Grey => {
                    let pos = stack
                        .iter()
                        .position(|&(u, _)| u == child)
                        .expect("grey states are always on the DFS stack");
                    let cycle = stack[pos..]
                        .iter()
                        .map(|&(u, _)| walk.state(u).node)
                        .collect();
                    return PairVerdict::Livelock { cycle };
                }
                Colour::White => {
                    colour[child] = Colour::Grey;
                    stack.push((child, 0));
                }
                Colour::Black => {}
            }
        } else {
            colour[s] = Colour::Black;
            stack.pop();
        }
    }
    PairVerdict::Delivers
}

/// Sweeps every ordered pair of healthy endpoints (on a grid every node is
/// an endpoint; on a fat-tree switches neither inject nor consume), proving
/// delivery or collecting the first witnessed failure.
pub fn check_reachability<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
    state_budget: usize,
) -> Result<ReachReport, StateBudgetExceeded> {
    let mut report = ReachReport::default();
    for src in net.endpoints() {
        if faults.is_node_faulty(src) {
            continue;
        }
        for dest in net.endpoints() {
            if dest == src || faults.is_node_faulty(dest) {
                continue;
            }
            let walk = walk_pair(net, algo, faults, v, src, dest, state_budget)?;
            record_pair(&mut report, &walk, src, dest);
        }
    }
    Ok(report)
}

/// Folds one pair's verdict into a sweep report (shared with the matrix
/// driver, which interleaves reachability with CDG accumulation over a
/// single walk per pair).
pub fn record_pair(report: &mut ReachReport, walk: &RelationWalk, src: NodeId, dest: NodeId) {
    report.pairs += 1;
    report.states_explored += walk.len();
    report.max_states_per_pair = report.max_states_per_pair.max(walk.len());
    match check_pair(walk) {
        PairVerdict::Delivers => report.delivered += 1,
        verdict @ PairVerdict::DeadEnd { .. } => {
            report.dead_ends += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some(PairFailure { src, dest, verdict });
            }
        }
        verdict @ PairVerdict::Livelock { .. } => {
            report.livelocks += 1;
            if report.first_failure.is_none() {
                report.first_failure = Some(PairFailure { src, dest, verdict });
            }
        }
    }
}
