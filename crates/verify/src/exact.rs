//! Exact channel-dependency-graph extraction from the routing relation.
//!
//! Unlike the hand-derived graphs in `torus_routing::cdg` — which re-encode
//! what the routing functions *should* do — this module extracts the
//! dependency graph from the actual `(channel held, header state) → channel
//! requested` transitions of a [`RoutingAlgorithm`], as enumerated by
//! [`walk_pair`]. The analysed resources are the virtual channels of the
//! deterministic / escape layer:
//!
//! * for a **deterministic-flavour** algorithm every candidate is tracked —
//!   the whole VC pool belongs to the layer whose acyclicity proves deadlock
//!   freedom;
//! * for an **adaptive-flavour** algorithm only the escape candidates are
//!   tracked, per Duato's theory: adaptive channels may sit on cycles as long
//!   as the *extended* dependency graph of the escape subfunction — direct
//!   dependencies between consecutive escape channels plus **indirect**
//!   dependencies bridged by any run of adaptive hops — stays acyclic.
//!
//! Indirect dependencies fall out of a small dataflow: every state carries
//! the set of tracked resources the message may still hold on arrival. A
//! tracked hop emits `held × requested` edges and replaces the set with the
//! hop's own resources; an adaptive hop propagates the set unchanged (the
//! escape channel stays held by the worm's tail while the head advances); an
//! absorption clears it (the software layer drains the message and releases
//! every channel before re-injection — exactly why the paper's Section 4
//! argument survives faults).
//!
//! With [`Granularity::PerChannel`] the same walk is projected onto whole
//! physical channels, ignoring the virtual-channel split. On a torus this
//! reproduces the classic dateline cycle from the *real* routing relation —
//! the negative control the `verify` binary demonstrates.

use crate::relation::{walk_pair, RelationWalk, StateBudgetExceeded, Step};
use std::collections::{HashSet, VecDeque};
use torus_faults::FaultSet;
use torus_routing::cdg::DependencyGraph;
use torus_routing::RoutingAlgorithm;
use torus_topology::{AnyTopology, DirectedChannel, Direction, NodeId};

/// Resource granularity of the extracted graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// One resource per (physical channel, virtual channel) pair — the real
    /// resource structure the algorithms are deadlock-free over.
    PerVc,
    /// One resource per physical channel, merging all its virtual channels —
    /// the "no VC classes" projection. On wrapped dimensions this is the
    /// known-cyclic dateline-free model.
    PerChannel,
}

/// An exact dependency graph extracted from a routing relation.
#[derive(Clone, Debug)]
pub struct ExactCdg {
    /// The extracted graph over tracked (escape-layer) resources.
    pub graph: DependencyGraph,
    /// Virtual channels per physical channel the relation was walked with.
    pub virtual_channels: usize,
    /// Resource granularity of the graph's vertex space.
    pub granularity: Granularity,
    /// Total states enumerated across all pairs.
    pub states_explored: usize,
    /// Number of (source, destination) pairs walked.
    pub pairs: usize,
}

/// Number of resource vertices for a network at the given granularity.
/// Resources are allocated per channel *slot* of the dense id space, so
/// missing mesh-edge channels leave isolated vertices, mirroring
/// `torus_routing::cdg`.
pub fn resource_count(net: &AnyTopology, v: usize, granularity: Granularity) -> usize {
    match granularity {
        Granularity::PerVc => net.channel_slots() * v,
        Granularity::PerChannel => net.channel_slots(),
    }
}

/// The resource id of virtual channel `vc` on the channel leaving `node`
/// along `(dim, dir)`.
pub fn resource_id(
    net: &AnyTopology,
    node: NodeId,
    dim: usize,
    dir: Direction,
    vc: usize,
    v: usize,
    granularity: Granularity,
) -> usize {
    let slot = net.channel_id(DirectedChannel::new(node, dim, dir)).index();
    match granularity {
        Granularity::PerVc => slot * v + vc,
        Granularity::PerChannel => slot,
    }
}

/// Folds one pair's [`RelationWalk`] into `graph`: a worklist dataflow over
/// the sets of tracked resources possibly held on arrival in each state.
/// Monotone (sets only grow), so it terminates at the least fixpoint; edge
/// emission is re-run whenever a state's set grows, and the graph
/// deduplicates.
pub fn accumulate_cdg(
    net: &AnyTopology,
    walk: &RelationWalk,
    v: usize,
    granularity: Granularity,
    graph: &mut DependencyGraph,
) {
    let n = walk.len();
    let mut incoming: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut visited = vec![false; n];
    let mut queued = vec![false; n];
    let mut work: VecDeque<usize> = VecDeque::new();
    visited[walk.start()] = true;
    queued[walk.start()] = true;
    work.push_back(walk.start());

    while let Some(s) = work.pop_front() {
        queued[s] = false;
        let state = walk.state(s);
        let held: Vec<usize> = incoming[s].iter().copied().collect();
        for step in &state.steps {
            match step {
                Step::Hop {
                    dim,
                    dir,
                    vcs,
                    tracked,
                    next,
                } => {
                    let (next, propagated): (usize, Vec<usize>) = if *tracked {
                        let requested: Vec<usize> = vcs
                            .iter()
                            .map(|&vc| resource_id(net, state.node, *dim, *dir, vc, v, granularity))
                            .collect();
                        for &h in &held {
                            for &r in &requested {
                                graph.add_edge(h, r);
                            }
                        }
                        // After the hop the message holds one of `requested`.
                        (*next, requested)
                    } else {
                        // Adaptive hop: the tracked resources stay held while
                        // the head advances — Duato's indirect dependencies.
                        (*next, held.clone())
                    };
                    let mut changed = !visited[next];
                    visited[next] = true;
                    for r in propagated {
                        changed |= incoming[next].insert(r);
                    }
                    if changed && !queued[next] {
                        queued[next] = true;
                        work.push_back(next);
                    }
                }
                Step::Reinject { next } => {
                    // Absorption releases every held channel.
                    if !visited[*next] {
                        visited[*next] = true;
                        if !queued[*next] {
                            queued[*next] = true;
                            work.push_back(*next);
                        }
                    }
                }
            }
        }
    }
}

/// Extracts the exact dependency graph of `algo` on `net` under `faults`,
/// walking every ordered pair of healthy endpoints (the only nodes that
/// inject traffic — switches of an indirect topology are transit-only).
/// `state_budget` bounds the states of any single pair's walk.
pub fn extract_exact_cdg<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
    granularity: Granularity,
    state_budget: usize,
) -> Result<ExactCdg, StateBudgetExceeded> {
    let mut graph = DependencyGraph::new(resource_count(net, v, granularity));
    let mut states_explored = 0;
    let mut pairs = 0;
    for src in net.endpoints() {
        if faults.is_node_faulty(src) {
            continue;
        }
        for dest in net.endpoints() {
            if dest == src || faults.is_node_faulty(dest) {
                continue;
            }
            let walk = walk_pair(net, algo, faults, v, src, dest, state_budget)?;
            states_explored += walk.len();
            pairs += 1;
            accumulate_cdg(net, &walk, v, granularity, &mut graph);
        }
    }
    Ok(ExactCdg {
        graph,
        virtual_channels: v,
        granularity,
        states_explored,
        pairs,
    })
}
