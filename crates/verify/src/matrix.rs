//! The whole-matrix verification driver.
//!
//! Sweeps the supported (topology × routing × virtual-channel × fault)
//! matrix, running both static checks — exact CDG acyclicity and
//! reachability — for every combination, and collecting per-case verdicts
//! into a [`MatrixReport`] that renders to text and to `VERIFY.json`
//! ([`crate::report`]). Alongside the static fault sets, each supported
//! (topology, routing) pair also verifies fault *schedules* (`sched@...`
//! cases) epoch-differentially via [`crate::epochs`], always with the
//! paranoid from-scratch cross-check enabled.
//!
//! Verdicts are three-valued:
//!
//! * **proved** — the escape-layer CDG is acyclic and every healthy pair
//!   delivers under every schedule;
//! * **rejected** — the routing algorithm refuses the topology up front with
//!   a typed, self-describing error (e.g. a turn model on wrapped
//!   dimensions); a rejection is a correct outcome, not a violation;
//! * **failed** — a check found a violation; the case carries a concrete
//!   witness (the dependency cycle's channels, or the path to a dead
//!   end/livelock).

use crate::epochs::{verify_schedule, EpochReport};
use crate::exact::{accumulate_cdg, resource_count, ExactCdg, Granularity};
use crate::reach::{record_pair, ReachReport};
use crate::relation::walk_pair;
use crate::witness::{describe_cycle, describe_pair_verdict};
use std::time::Instant;
use swbft_core::{run_pool, Jobs, RoutingChoice};
use torus_faults::{FaultEvent, FaultRegion, FaultSchedule, FaultSet, RegionShape};
use torus_routing::cdg::DependencyGraph;
use torus_routing::{AnyRouting, RoutingAlgorithm, TurnModelRouting};
use torus_topology::{AnyTopology, Direction, FatTree, Network, NodeId, TopologySpec};

/// Default per-pair state budget. Far above anything the supported shapes
/// produce (the largest full-matrix walks stay in the low thousands), so
/// hitting it indicates a blown-up relation — reported as a failure, not a
/// panic.
pub const STATE_BUDGET: usize = 1 << 20;

/// Which slice of the matrix to verify.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixKind {
    /// Small shapes, minimal VC configs, one fault case — the CI gate.
    Smoke,
    /// Every supported shape of the figure matrix, minimal and +1 VC
    /// configs, several enumerated fault sets.
    Full,
}

impl MatrixKind {
    /// Parses `smoke` / `full`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "smoke" => Ok(MatrixKind::Smoke),
            "full" => Ok(MatrixKind::Full),
            other => Err(format!("unknown matrix '{other}' (use smoke|full)")),
        }
    }

    /// Lower-case name ("smoke" / "full").
    pub fn name(self) -> &'static str {
        match self {
            MatrixKind::Smoke => "smoke",
            MatrixKind::Full => "full",
        }
    }
}

/// Verdict of one matrix case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Acyclicity and delivery proved.
    Proved,
    /// The routing rejects the topology with a typed error.
    Rejected,
    /// A check found a violation (witness attached).
    Failed,
}

impl Verdict {
    /// Lower-case name ("proved" / "rejected" / "failed").
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Proved => "proved",
            Verdict::Rejected => "rejected",
            Verdict::Failed => "failed",
        }
    }
}

/// Outcome of one (topology, routing, V, faults) combination.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Topology spec-string (e.g. `torus:8x2`).
    pub topology: String,
    /// Routing label (e.g. `deterministic`, `west-first`).
    pub routing: String,
    /// Virtual channels per physical channel (0 for rejected cases, which
    /// never reach VC selection).
    pub virtual_channels: usize,
    /// Fault-case label (e.g. `nf=0`, `node@12`).
    pub faults: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Vertices of the extracted escape-layer graph.
    pub cdg_vertices: usize,
    /// Edges of the extracted escape-layer graph.
    pub cdg_edges: usize,
    /// Healthy ordered pairs checked for reachability.
    pub pairs: usize,
    /// Pairs proved to deliver.
    pub delivered: usize,
    /// Total relation states enumerated.
    pub states: usize,
    /// Human-readable detail: the rejection message, or the failure reason.
    pub detail: String,
    /// Witness lines on failure (dependency-cycle channels or a path).
    pub witness: Vec<String>,
    /// Per-epoch reports for fault-schedule (`sched@...`) cases; empty for
    /// static fault cases.
    pub epochs: Vec<EpochReport>,
}

/// A complete matrix run.
#[derive(Clone, Debug)]
pub struct MatrixReport {
    /// Which matrix was run.
    pub kind: MatrixKind,
    /// Per-case outcomes, in sweep order (deterministic regardless of
    /// `jobs` — parallel runs are reassembled into enumeration order).
    pub cases: Vec<CaseResult>,
    /// Wall-clock duration of the whole sweep, in milliseconds.
    pub wall_clock_ms: u64,
    /// Worker threads the sweep ran on.
    pub jobs: usize,
}

impl MatrixReport {
    /// Number of failed cases (rejections are not violations).
    pub fn violations(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.verdict == Verdict::Failed)
            .count()
    }

    /// Counts per verdict: (proved, rejected, failed).
    pub fn tallies(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in &self.cases {
            match c.verdict {
                Verdict::Proved => t.0 += 1,
                Verdict::Rejected => t.1 += 1,
                Verdict::Failed => t.2 += 1,
            }
        }
        t
    }
}

/// The topology slice of a matrix.
pub fn matrix_topologies(kind: MatrixKind) -> Vec<TopologySpec> {
    let mut specs = vec![
        "torus:4x2",
        "mesh:4x2",
        "hypercube:3",
        "mixed:4,3o",
        "ft:4,2",
    ];
    if kind == MatrixKind::Full {
        specs.extend([
            "torus:5x2",
            "torus:4x3",
            "torus:8x2",
            "mesh:8x2",
            "mesh:3x3",
            "hypercube:4",
            "hypercube:5",
            "mixed:4,4,3o",
            "mixed:8,4o",
            "ft:2,3",
        ]);
    }
    specs
        .into_iter()
        .map(|s| TopologySpec::parse(s).expect("matrix topology specs are valid"))
        .collect()
}

/// The routing slice: every [`RoutingChoice`] plus the west-first and
/// north-last turn-model flavours, which prove the extractor is not
/// negative-first-specific.
pub fn matrix_routings() -> Vec<(String, AnyRouting)> {
    let mut out: Vec<(String, AnyRouting)> = RoutingChoice::ALL
        .iter()
        .map(|c| (c.label().to_string(), c.algorithm()))
        .collect();
    out.push((
        "west-first".to_string(),
        AnyRouting::TurnModel(TurnModelRouting::west_first_adaptive()),
    ));
    out.push((
        "west-first-det".to_string(),
        AnyRouting::TurnModel(TurnModelRouting::west_first_deterministic()),
    ));
    out.push((
        "north-last".to_string(),
        AnyRouting::TurnModel(TurnModelRouting::north_last_adaptive()),
    ));
    out.push((
        "north-last-det".to_string(),
        AnyRouting::TurnModel(TurnModelRouting::north_last_deterministic()),
    ));
    out
}

/// Enumerated fault cases for a topology: always the fault-free network,
/// plus deterministically chosen node-fault sets, link-fault sets and (on
/// grids) clustered fault regions that preserve connectivity (sets that
/// would disconnect the network are skipped — the delivery proof is only
/// meaningful on a connected healthy subnetwork). Fat-trees get their own
/// role-aware enumeration: failed endpoints, failed switches and failed
/// up-links.
pub fn matrix_fault_cases(net: &AnyTopology, kind: MatrixKind) -> Vec<(String, FaultSet)> {
    let mut cases = vec![("nf=0".to_string(), FaultSet::new())];
    if let Some(ft) = net.fat_tree() {
        push_fat_tree_cases(net, ft, kind, &mut cases);
        return cases;
    }
    let grid = net.grid().expect("direct matrix topologies are grids");
    let n = grid.num_nodes() as u32;
    let picks: Vec<Vec<u32>> = match kind {
        MatrixKind::Smoke => vec![vec![n / 2]],
        MatrixKind::Full => vec![vec![n / 2], vec![n / 3], vec![n / 4, (3 * n) / 4]],
    };
    for nodes in picks {
        let mut uniq: Vec<u32> = nodes;
        uniq.sort_unstable();
        uniq.dedup();
        let mut faults = FaultSet::new();
        for &id in &uniq {
            faults.fail_node(NodeId(id));
        }
        if faults.num_faulty_nodes() == 0 || !faults.preserves_connectivity(grid) {
            continue;
        }
        let label = format!(
            "nodes@{}",
            uniq.iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join("+")
        );
        if !cases.iter().any(|(l, _)| *l == label) {
            cases.push((label, faults));
        }
    }
    push_link_cases(grid, kind, &mut cases);
    push_region_cases(grid, kind, &mut cases);
    cases
}

/// Pushes a fault case after the shared guards: non-empty, connectivity
/// preserving, label not already taken.
fn push_case<T: torus_topology::Topology + ?Sized>(
    net: &T,
    label: String,
    faults: FaultSet,
    cases: &mut Vec<(String, FaultSet)>,
) {
    if faults.num_faulty_nodes() == 0 && faults.num_faulty_links() == 0 {
        return;
    }
    if !faults.preserves_connectivity(net) {
        return;
    }
    if !cases.iter().any(|(l, _)| *l == label) {
        cases.push((label, faults));
    }
}

/// Adds fat-tree fault cases: a failed compute endpoint, a failed top
/// switch (the tree re-ascends via the remaining roots) and a failed leaf
/// up-link always; the full matrix adds a middle-level switch (on trees
/// deep enough to have one), an endpoint+switch pair and a two-up-link set
/// across distinct leaves. Placements that would disconnect endpoints —
/// a dead leaf switch, an endpoint's only up-link — are filtered by the
/// same connectivity guard as the grid cases.
fn push_fat_tree_cases(
    net: &AnyTopology,
    ft: &FatTree,
    kind: MatrixKind,
    cases: &mut Vec<(String, FaultSet)>,
) {
    let top_level = ft.levels() - 1;
    let last_switch = ft.switches_per_level() as u32 - 1;

    let e = ft.endpoint_id(ft.num_endpoints() as u32 / 2);
    let mut f = FaultSet::new();
    f.fail_node(e);
    push_case(net, format!("node@{}", ft.node_label(e)), f, cases);

    let top = ft.switch_id(top_level, 0);
    let mut f = FaultSet::new();
    f.fail_node(top);
    push_case(net, format!("node@{}", ft.node_label(top)), f, cases);

    let leaf = ft.switch_id(0, 0);
    if let Some(&(port, _)) = ft.parents(leaf).first() {
        let mut f = FaultSet::new();
        f.fail_link(net, leaf, port, Direction::Plus);
        push_case(
            net,
            format!("links@{}:d{port}+", ft.node_label(leaf)),
            f,
            cases,
        );
    }

    if kind == MatrixKind::Full {
        if ft.levels() >= 3 {
            let mid = ft.switch_id(1, last_switch.min(1));
            let mut f = FaultSet::new();
            f.fail_node(mid);
            push_case(net, format!("node@{}", ft.node_label(mid)), f, cases);
        }

        let mut f = FaultSet::new();
        f.fail_node(ft.endpoint_id(1));
        f.fail_node(ft.switch_id(top_level, last_switch));
        push_case(
            net,
            format!(
                "nodes@{}+{}",
                ft.node_label(ft.endpoint_id(1)),
                ft.node_label(ft.switch_id(top_level, last_switch))
            ),
            f,
            cases,
        );

        let mut f = FaultSet::new();
        let mut parts = Vec::new();
        for (i, &lf) in [leaf, ft.switch_id(0, last_switch)].iter().enumerate() {
            let parents = ft.parents(lf);
            if let Some(&(port, _)) = parents.get(i.min(parents.len().saturating_sub(1))) {
                f.fail_link(net, lf, port, Direction::Plus);
                parts.push(format!("{}:d{port}+", ft.node_label(lf)));
            }
        }
        push_case(net, format!("links@{}", parts.join("+")), f, cases);
    }
}

/// Adds link-fault cases: one mid-network failed link always, plus a
/// two-link set on the full matrix. `fail_link` silently ignores channels
/// that do not exist (open-mesh edges), so a pick that lands on a missing
/// channel produces no faults and is dropped by the `num_faulty_links`
/// guard rather than mislabelled as fault-free.
fn push_link_cases(net: &Network, kind: MatrixKind, cases: &mut Vec<(String, FaultSet)>) {
    let n = net.num_nodes() as u32;
    let last_dim = net.dims() - 1;
    let picks: Vec<Vec<(u32, usize, Direction)>> = match kind {
        MatrixKind::Smoke => vec![vec![(n / 2, 0, Direction::Plus)]],
        MatrixKind::Full => vec![
            vec![(n / 2, 0, Direction::Plus)],
            vec![
                (n / 3, 0, Direction::Plus),
                (n / 2, last_dim, Direction::Minus),
            ],
        ],
    };
    for links in picks {
        let mut faults = FaultSet::new();
        let mut parts = Vec::new();
        for &(id, dim, dir) in &links {
            faults.fail_link(net, NodeId(id), dim, dir);
            let sign = match dir {
                Direction::Plus => '+',
                Direction::Minus => '-',
            };
            parts.push(format!("{id}:d{dim}{sign}"));
        }
        if faults.num_faulty_links() == 0 || !faults.preserves_connectivity(net) {
            continue;
        }
        let label = format!("links@{}", parts.join("+"));
        if !cases.iter().any(|(l, _)| *l == label) {
            cases.push((label, faults));
        }
    }
}

/// Adds clustered (region) fault cases for topologies with at least two
/// dimensions: an L-shaped 2×2 region always, plus a solid 2×2 block on
/// the full matrix. Each shape is tried at every distinct anchor of a
/// candidate set — the centre of the plane plus all four corners (clamped
/// so the shape stays inside open dimensions) — and every valid,
/// connectivity-preserving placement with a *distinct fault set* becomes
/// its own case, labelled with its anchor. On small shapes several anchors
/// collapse onto the same node set and are deduplicated. The full matrix
/// additionally re-anchors the L-shape in planes beyond the default
/// `(0, 1)` on 3-D and higher shapes (labelled `region@L2x2@p1.2@...`), so
/// the region machinery is proved plane-general, not `(0, 1)`-specific.
fn push_region_cases(net: &Network, kind: MatrixKind, cases: &mut Vec<(String, FaultSet)>) {
    if net.dims() < 2 {
        return;
    }
    let l_shape = RegionShape::LShape {
        vertical: 2,
        horizontal: 2,
    };
    let shapes: Vec<(&str, RegionShape)> = match kind {
        MatrixKind::Smoke => vec![("L2x2", l_shape)],
        MatrixKind::Full => vec![
            ("L2x2", l_shape),
            (
                "rect2x2",
                RegionShape::Rect {
                    width: 2,
                    height: 2,
                },
            ),
        ],
    };
    let mut seen_fault_sets: Vec<Vec<NodeId>> = Vec::new();
    for (tag, shape) in shapes {
        push_region_anchors(net, tag, shape, (0, 1), &mut seen_fault_sets, cases);
    }
    if kind == MatrixKind::Full && net.dims() >= 3 {
        let mut planes = vec![(1, 2)];
        if net.dims() >= 4 {
            planes.push((2, 3));
        }
        for plane in planes {
            push_region_anchors(net, "L2x2", l_shape, plane, &mut seen_fault_sets, cases);
        }
    }
}

/// Tries one region shape in one plane at the candidate anchors (plane
/// centre plus the four plane corners, clamped so the bounding box fits
/// open dimensions; on wrapped dimensions clamping is harmless — the shape
/// may overhang and wrap). Every valid, connectivity-preserving placement
/// with a distinct fault set becomes a case.
fn push_region_anchors(
    net: &Network,
    tag: &str,
    shape: RegionShape,
    plane: (usize, usize),
    seen_fault_sets: &mut Vec<Vec<NodeId>>,
    cases: &mut Vec<(String, FaultSet)>,
) {
    let (bw, bh) = shape.bounding_box();
    let centered: Vec<u16> = (0..net.dims())
        .map(|d| {
            let k = net.radix(d);
            let span = if d == plane.0 {
                bw
            } else if d == plane.1 {
                bh
            } else {
                1
            };
            if net.wraps(d) {
                (k / 2) % k
            } else {
                (k / 2).min(k.saturating_sub(span))
            }
        })
        .collect();
    let mut anchors: Vec<Vec<u16>> = vec![centered];
    for ax in [0, net.radix(plane.0).saturating_sub(bw)] {
        for ay in [0, net.radix(plane.1).saturating_sub(bh)] {
            let mut a = vec![0u16; net.dims()];
            a[plane.0] = ax;
            a[plane.1] = ay;
            anchors.push(a);
        }
    }
    for anchor in anchors {
        let Ok(region) = FaultRegion::in_plane(net, shape, plane, &anchor) else {
            continue;
        };
        let Ok(faults) = region.to_fault_set(net) else {
            continue;
        };
        if faults.num_faulty_nodes() == 0 || !faults.preserves_connectivity(net) {
            continue;
        }
        let signature = faults.faulty_nodes_sorted();
        if seen_fault_sets.contains(&signature) {
            continue;
        }
        seen_fault_sets.push(signature);
        let label = if plane == (0, 1) {
            format!("region@{tag}@{},{}", anchor[plane.0], anchor[plane.1])
        } else {
            format!(
                "region@{tag}@p{}.{}@{},{}",
                plane.0, plane.1, anchor[plane.0], anchor[plane.1]
            )
        };
        if !cases.iter().any(|(l, _)| *l == label) {
            cases.push((label, faults));
        }
    }
}

/// Enumerated fault-schedule cases for a topology. Every matrix slice gets
/// a staged `sched@mix` (a node fault, then a link fault, each starting a
/// new epoch); the full matrix adds `sched@fence0`, which fails the
/// neighbours of node 0 one epoch at a time — on low-degree shapes the last
/// epoch isolates node 0, flipping its pairs to the `disconnected` fate.
pub fn matrix_schedule_cases(net: &AnyTopology, kind: MatrixKind) -> Vec<(String, FaultSchedule)> {
    let n = net.num_nodes() as u32;
    let mut out = Vec::new();

    // sched@mix: node n/2 at cycle 100, then a link at cycle 200. The link
    // pick scans forward from n/3 for an existing d0+ channel that does not
    // touch the already-failed node.
    let mut events = vec![(100u64, FaultEvent::Node { node: n / 2 })];
    'mix: for offset in 0..n {
        let id = (n / 3 + offset) % n;
        if id == n / 2 {
            continue;
        }
        if let Some(nb) = net.neighbor(NodeId(id), 0, Direction::Plus) {
            if nb.0 != n / 2 && nb.0 != id {
                events.push((
                    200,
                    FaultEvent::Link {
                        node: id,
                        dim: 0,
                        dir: Direction::Plus,
                    },
                ));
                break 'mix;
            }
        }
    }
    if let Ok(sched) = FaultSchedule::from_events(events) {
        out.push(("sched@mix".to_string(), sched));
    }

    if kind == MatrixKind::Full {
        // sched@fence0: the distinct neighbours of node 0, one per epoch,
        // capped at four events to bound the epoch count on high-degree
        // shapes.
        let mut fenced: Vec<u32> = Vec::new();
        for (_, nb) in net.neighbors(NodeId(0)) {
            if nb != NodeId(0) && !fenced.contains(&nb.0) {
                fenced.push(nb.0);
            }
        }
        fenced.truncate(4);
        let events: Vec<(u64, FaultEvent)> = fenced
            .into_iter()
            .enumerate()
            .map(|(i, node)| (100 * (i as u64 + 1), FaultEvent::Node { node }))
            .collect();
        if !events.is_empty() {
            if let Ok(sched) = FaultSchedule::from_events(events) {
                out.push(("sched@fence0".to_string(), sched));
            }
        }
    }
    out
}

/// Runs both static checks for one fully specified case, sharing a single
/// relation walk per pair between the CDG accumulation and the reachability
/// verdicts.
pub fn verify_case<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
) -> Result<(ExactCdg, ReachReport), crate::relation::StateBudgetExceeded> {
    let granularity = Granularity::PerVc;
    let mut graph = DependencyGraph::new(resource_count(net, v, granularity));
    let mut reach = ReachReport::default();
    let mut states_explored = 0;
    let mut pairs = 0;
    for src in net.endpoints() {
        if faults.is_node_faulty(src) {
            continue;
        }
        for dest in net.endpoints() {
            if dest == src || faults.is_node_faulty(dest) {
                continue;
            }
            let walk = walk_pair(net, algo, faults, v, src, dest, STATE_BUDGET)?;
            states_explored += walk.len();
            pairs += 1;
            accumulate_cdg(net, &walk, v, granularity, &mut graph);
            record_pair(&mut reach, &walk, src, dest);
        }
    }
    let cdg = ExactCdg {
        graph,
        virtual_channels: v,
        granularity,
        states_explored,
        pairs,
    };
    Ok((cdg, reach))
}

fn case_from_checks(
    net: &AnyTopology,
    topology: &str,
    routing: &str,
    v: usize,
    fault_label: &str,
    cdg: &ExactCdg,
    reach: &ReachReport,
) -> CaseResult {
    let mut verdict = Verdict::Proved;
    let detail;
    let mut witness = Vec::new();
    if let Some(cycle) = cdg.graph.find_cycle() {
        verdict = Verdict::Failed;
        detail = format!(
            "escape-layer channel dependency graph has a cycle of {} resources",
            cycle.len()
        );
        witness = describe_cycle(net, &cycle, v, cdg.granularity);
    } else if let Some(failure) = &reach.first_failure {
        verdict = Verdict::Failed;
        detail = format!(
            "{} of {} pairs failed to deliver ({} dead ends, {} livelocks); first: {} -> {}",
            reach.pairs - reach.delivered,
            reach.pairs,
            reach.dead_ends,
            reach.livelocks,
            net.node_label(failure.src),
            net.node_label(failure.dest),
        );
        witness = describe_pair_verdict(net, &failure.verdict);
    } else {
        detail = format!(
            "acyclic CDG ({} edges) and all {} pairs deliver",
            cdg.graph.num_edges(),
            reach.pairs
        );
    }
    CaseResult {
        topology: topology.to_string(),
        routing: routing.to_string(),
        virtual_channels: v,
        faults: fault_label.to_string(),
        verdict,
        cdg_vertices: cdg.graph.num_vertices(),
        cdg_edges: cdg.graph.num_edges(),
        pairs: reach.pairs,
        delivered: reach.delivered,
        states: cdg.states_explored,
        detail,
        witness,
        epochs: Vec::new(),
    }
}

/// One enumerated unit of matrix work: a case resolved during enumeration
/// (routing rejections are instantaneous), a pending (topology, routing, V,
/// faults) combination, or a pending fault-schedule case.
enum WorkItem {
    Resolved(CaseResult),
    Pending {
        net_idx: usize,
        topology: String,
        routing: String,
        algo: AnyRouting,
        v: usize,
        fault_label: String,
        faults: FaultSet,
    },
    PendingSchedule {
        net_idx: usize,
        topology: String,
        routing: String,
        algo: AnyRouting,
        v: usize,
        label: String,
        schedule: FaultSchedule,
    },
}

/// Enumerates every work item of the matrix in deterministic sweep order,
/// together with the built networks the pending items index into.
fn enumerate_work(kind: MatrixKind) -> (Vec<AnyTopology>, Vec<WorkItem>) {
    let mut nets = Vec::new();
    let mut items = Vec::new();
    for spec in matrix_topologies(kind) {
        let topology = spec.to_spec_string();
        let net = spec.build().expect("matrix topologies build");
        let net_idx = nets.len();
        let fault_cases = matrix_fault_cases(&net, kind);
        let schedule_cases = matrix_schedule_cases(&net, kind);
        for (routing, algo) in matrix_routings() {
            if let Err(e) = algo.supported_on(&net) {
                items.push(WorkItem::Resolved(CaseResult {
                    topology: topology.clone(),
                    routing,
                    virtual_channels: 0,
                    faults: "-".to_string(),
                    verdict: Verdict::Rejected,
                    cdg_vertices: 0,
                    cdg_edges: 0,
                    pairs: 0,
                    delivered: 0,
                    states: 0,
                    detail: e.to_string(),
                    witness: Vec::new(),
                    epochs: Vec::new(),
                }));
                continue;
            }
            let min_v = algo.min_virtual_channels(&net);
            let vc_configs = match kind {
                MatrixKind::Smoke => vec![min_v],
                MatrixKind::Full => vec![min_v, min_v + 1],
            };
            for v in vc_configs {
                for (fault_label, faults) in &fault_cases {
                    items.push(WorkItem::Pending {
                        net_idx,
                        topology: topology.clone(),
                        routing: routing.clone(),
                        algo,
                        v,
                        fault_label: fault_label.clone(),
                        faults: faults.clone(),
                    });
                }
            }
            // Schedule cases sweep the same VC configs as the static cases:
            // the full matrix re-proves every epoch at min_v + 1 as well, so
            // the differential machinery is exercised off the minimal
            // dateline layout too.
            let sched_vcs = match kind {
                MatrixKind::Smoke => vec![min_v],
                MatrixKind::Full => vec![min_v, min_v + 1],
            };
            for v in sched_vcs {
                for (label, schedule) in &schedule_cases {
                    items.push(WorkItem::PendingSchedule {
                        net_idx,
                        topology: topology.clone(),
                        routing: routing.clone(),
                        algo,
                        v,
                        label: label.clone(),
                        schedule: schedule.clone(),
                    });
                }
            }
        }
        nets.push(net);
    }
    (nets, items)
}

/// Resolves one work item to its case result.
fn run_item(nets: &[AnyTopology], item: &WorkItem) -> CaseResult {
    match item {
        WorkItem::Resolved(case) => case.clone(),
        WorkItem::Pending {
            net_idx,
            topology,
            routing,
            algo,
            v,
            fault_label,
            faults,
        } => {
            let net = &nets[*net_idx];
            match verify_case(net, algo, faults, *v) {
                Ok((cdg, reach)) => {
                    case_from_checks(net, topology, routing, *v, fault_label, &cdg, &reach)
                }
                Err(e) => CaseResult {
                    topology: topology.clone(),
                    routing: routing.clone(),
                    virtual_channels: *v,
                    faults: fault_label.clone(),
                    verdict: Verdict::Failed,
                    cdg_vertices: 0,
                    cdg_edges: 0,
                    pairs: 0,
                    delivered: 0,
                    states: 0,
                    detail: e.to_string(),
                    witness: Vec::new(),
                    epochs: Vec::new(),
                },
            }
        }
        WorkItem::PendingSchedule {
            net_idx,
            topology,
            routing,
            algo,
            v,
            label,
            schedule,
        } => {
            let net = &nets[*net_idx];
            // Matrix schedule cases always run the paranoid from-scratch
            // cross-check: a divergence between the differential and the
            // scratch result is itself a verification failure.
            match verify_schedule(net, algo, schedule, *v, STATE_BUDGET, true) {
                Ok(outcome) => {
                    let failed = outcome.failed();
                    let last = outcome
                        .epochs
                        .last()
                        .expect("schedules materialise at least epoch 0");
                    let witness = outcome
                        .epochs
                        .iter()
                        .find(|e| e.failure.is_some())
                        .map(|e| e.witness.clone())
                        .unwrap_or_default();
                    CaseResult {
                        topology: topology.clone(),
                        routing: routing.clone(),
                        virtual_channels: *v,
                        faults: label.clone(),
                        verdict: if failed {
                            Verdict::Failed
                        } else {
                            Verdict::Proved
                        },
                        cdg_vertices: last.cdg_vertices,
                        cdg_edges: last.cdg_edges,
                        pairs: last.pairs,
                        delivered: last.routable + last.rerouted,
                        states: outcome.total_states(),
                        detail: outcome.summary(),
                        witness,
                        epochs: outcome.epochs,
                    }
                }
                Err(e) => CaseResult {
                    topology: topology.clone(),
                    routing: routing.clone(),
                    virtual_channels: *v,
                    faults: label.clone(),
                    verdict: Verdict::Failed,
                    cdg_vertices: 0,
                    cdg_edges: 0,
                    pairs: 0,
                    delivered: 0,
                    states: 0,
                    detail: e.to_string(),
                    witness: Vec::new(),
                    epochs: Vec::new(),
                },
            }
        }
    }
}

/// Runs the whole matrix on `jobs` worker threads, calling `progress` with
/// a short line per case.
///
/// The case list is enumerated up front and, for `jobs > 1`, fanned over
/// the work-stealing experiment pool ([`swbft_core::run_pool`]); results are
/// reassembled into enumeration order, so the case list (and every per-case
/// field of `VERIFY.json`) is identical for any thread count — only the
/// recorded wall clock and job count differ. With multiple jobs, `progress`
/// fires after the sweep completes (still in deterministic order) rather
/// than as cases finish.
pub fn run_matrix_with_options(
    kind: MatrixKind,
    jobs: usize,
    mut progress: impl FnMut(&CaseResult),
) -> MatrixReport {
    let start = Instant::now();
    let jobs = jobs.max(1);
    let (nets, items) = enumerate_work(kind);
    let cases: Vec<CaseResult> = if jobs == 1 {
        items
            .iter()
            .map(|item| {
                let case = run_item(&nets, item);
                progress(&case);
                case
            })
            .collect()
    } else {
        let cases = run_pool(items, Jobs::count(jobs), |item| run_item(&nets, item));
        for case in &cases {
            progress(case);
        }
        cases
    };
    MatrixReport {
        kind,
        cases,
        wall_clock_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
        jobs,
    }
}

/// Runs the whole matrix single-threaded, calling `progress` with a short
/// line per case as it completes (pass a closure that prints, or one that
/// ignores).
pub fn run_matrix_with_progress(
    kind: MatrixKind,
    progress: impl FnMut(&CaseResult),
) -> MatrixReport {
    run_matrix_with_options(kind, 1, progress)
}

/// Runs the whole matrix without progress output.
pub fn run_matrix(kind: MatrixKind) -> MatrixReport {
    run_matrix_with_progress(kind, |_| {})
}

/// The known-cyclic negative control: dimension-order routing on a torus
/// with the virtual channels merged away (the dateline-free projection of
/// the real routing relation). Returns the case with its cycle witness —
/// the `verify` binary prints it and exits nonzero, demonstrating that the
/// extractor actually detects deadlock-capable configurations.
pub fn naive_torus_demo() -> CaseResult {
    let spec = TopologySpec::parse("torus:8x2").expect("valid spec");
    let net = spec.build().expect("torus builds");
    let algo = torus_routing::SwBasedRouting::deterministic();
    let v = algo.min_virtual_channels(&net);
    let faults = FaultSet::new();
    let cdg = crate::exact::extract_exact_cdg(
        &net,
        &algo,
        &faults,
        v,
        Granularity::PerChannel,
        STATE_BUDGET,
    )
    .expect("torus walk fits the state budget");
    let cycle = cdg
        .graph
        .find_cycle()
        .expect("the dateline-free torus projection is cyclic");
    CaseResult {
        topology: spec.to_spec_string(),
        routing: "deterministic (VC classes merged)".to_string(),
        virtual_channels: v,
        faults: "nf=0".to_string(),
        verdict: Verdict::Failed,
        cdg_vertices: cdg.graph.num_vertices(),
        cdg_edges: cdg.graph.num_edges(),
        pairs: cdg.pairs,
        delivered: 0,
        states: cdg.states_explored,
        detail: format!(
            "without dateline VC classes the exact CDG closes a cycle of {} channels",
            cycle.len()
        ),
        witness: describe_cycle(&net, &cycle, v, Granularity::PerChannel),
        epochs: Vec::new(),
    }
}
