//! Human-readable rendering of verification witnesses.
//!
//! Cycle witnesses are sequences of resource ids in the vertex space of an
//! extracted graph ([`crate::exact`]); this module decodes them back into
//! directed channels — source coordinate, dimension, direction, destination
//! coordinate and (at per-VC granularity) the virtual channel — so a CI
//! failure prints the actual channels of the dependency cycle.

use crate::exact::Granularity;
use crate::reach::PairVerdict;
use torus_topology::{ChannelId, Direction, Network, NodeId};

/// Renders one resource id of an extracted graph, e.g.
/// `(3,0) -d0+-> (0,0) vc1`.
pub fn describe_resource(net: &Network, id: usize, v: usize, granularity: Granularity) -> String {
    let (slot, vc) = match granularity {
        Granularity::PerVc => (id / v, Some(id % v)),
        Granularity::PerChannel => (id, None),
    };
    let ch = net.channel_from_id(ChannelId::from_index(slot));
    let from = net.coord(ch.from);
    let sign = match ch.dir {
        Direction::Plus => '+',
        Direction::Minus => '-',
    };
    let to = match net.neighbor(ch.from, ch.dim, ch.dir) {
        Some(n) => format!("{}", net.coord(n)),
        None => "(missing)".to_string(),
    };
    let dim = ch.dim;
    match vc {
        Some(vc) => format!("{from} -d{dim}{sign}-> {to} vc{vc}"),
        None => format!("{from} -d{dim}{sign}-> {to}"),
    }
}

/// Renders a cycle witness (as returned by
/// `DependencyGraph::find_cycle`) one channel per line, closing the loop
/// back to the first resource.
pub fn describe_cycle(
    net: &Network,
    cycle: &[usize],
    v: usize,
    granularity: Granularity,
) -> Vec<String> {
    let mut lines: Vec<String> = cycle
        .iter()
        .enumerate()
        .map(|(i, &r)| format!("c{i}: {}", describe_resource(net, r, v, granularity)))
        .collect();
    if !cycle.is_empty() {
        lines.push(format!("-> back to c0 (cycle of {} channels)", cycle.len()));
    }
    lines
}

/// Renders a node path (dead-end or livelock witness) as coordinates.
pub fn describe_node_path(net: &Network, path: &[NodeId]) -> String {
    path.iter()
        .map(|&n| format!("{}", net.coord(n)))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Renders a pair verdict's witness, if any, as display lines.
pub fn describe_pair_verdict(net: &Network, verdict: &PairVerdict) -> Vec<String> {
    match verdict {
        PairVerdict::Delivers => Vec::new(),
        PairVerdict::DeadEnd { path } => vec![format!(
            "dead end after path: {}",
            describe_node_path(net, path)
        )],
        PairVerdict::Livelock { cycle } => vec![format!(
            "livelock cycle: {} -> (repeats)",
            describe_node_path(net, cycle)
        )],
    }
}
