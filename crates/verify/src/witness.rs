//! Human-readable rendering of verification witnesses.
//!
//! Cycle witnesses are sequences of resource ids in the vertex space of an
//! extracted graph ([`crate::exact`]); this module decodes them back into
//! directed channels — source node, dimension, direction, destination node
//! and (at per-VC granularity) the virtual channel — so a CI failure prints
//! the actual channels of the dependency cycle. Node labels come from the
//! topology backend: grid coordinates like `(3,0)`, fat-tree roles like
//! `e7` / `s1.2`.

use crate::exact::Granularity;
use crate::reach::PairVerdict;
use torus_topology::{AnyTopology, ChannelId, Direction, NodeId};

/// Renders one resource id of an extracted graph, e.g.
/// `(3,0) -d0+-> (0,0) vc1`.
pub fn describe_resource(
    net: &AnyTopology,
    id: usize,
    v: usize,
    granularity: Granularity,
) -> String {
    let (slot, vc) = match granularity {
        Granularity::PerVc => (id / v, Some(id % v)),
        Granularity::PerChannel => (id, None),
    };
    let ch = net.channel_from_id(ChannelId::from_index(slot));
    let from = net.node_label(ch.from);
    let sign = match ch.dir {
        Direction::Plus => '+',
        Direction::Minus => '-',
    };
    let to = match net.neighbor(ch.from, ch.dim, ch.dir) {
        Some(n) => net.node_label(n),
        None => "(missing)".to_string(),
    };
    let dim = ch.dim;
    match vc {
        Some(vc) => format!("{from} -d{dim}{sign}-> {to} vc{vc}"),
        None => format!("{from} -d{dim}{sign}-> {to}"),
    }
}

/// Renders a cycle witness (as returned by
/// `DependencyGraph::find_cycle`) one channel per line, closing the loop
/// back to the first resource.
pub fn describe_cycle(
    net: &AnyTopology,
    cycle: &[usize],
    v: usize,
    granularity: Granularity,
) -> Vec<String> {
    let mut lines: Vec<String> = cycle
        .iter()
        .enumerate()
        .map(|(i, &r)| format!("c{i}: {}", describe_resource(net, r, v, granularity)))
        .collect();
    if !cycle.is_empty() {
        lines.push(format!("-> back to c0 (cycle of {} channels)", cycle.len()));
    }
    lines
}

/// Renders a node path (dead-end or livelock witness) as node labels.
pub fn describe_node_path(net: &AnyTopology, path: &[NodeId]) -> String {
    path.iter()
        .map(|&n| net.node_label(n))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Renders a pair verdict's witness, if any, as display lines.
pub fn describe_pair_verdict(net: &AnyTopology, verdict: &PairVerdict) -> Vec<String> {
    match verdict {
        PairVerdict::Delivers => Vec::new(),
        PairVerdict::DeadEnd { path } => vec![format!(
            "dead end after path: {}",
            describe_node_path(net, path)
        )],
        PairVerdict::Livelock { cycle } => vec![format!(
            "livelock cycle: {} -> (repeats)",
            describe_node_path(net, cycle)
        )],
    }
}
