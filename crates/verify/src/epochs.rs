//! Epoch-differential verification of dynamic fault schedules.
//!
//! A [`torus_faults::FaultSchedule`] materialises into a sequence of epochs
//! — cumulative fault sets in force from each injection cycle. This module
//! re-proves the two static checks (exact-CDG acyclicity and reachability)
//! at *every* epoch and classifies every (source, destination) pair's fate:
//!
//! * **routable** — the pair delivers without ever touching the software
//!   layer (no absorb/re-inject in its state graph);
//! * **rerouted** — the pair delivers, but some schedule absorbs the message
//!   at a via host and re-injects it (software-layer recovery is on the
//!   path);
//! * **disconnected** — the pair dead-ends. When the healthy subnetwork no
//!   longer connects the pair this is a legitimate fate (the oracle the
//!   future runtime drop semantics will consume); when the graph *does*
//!   still connect the pair, it is a routing failure and the epoch fails.
//!
//! Epoch 0 is walked in full. Every later epoch is verified
//! *differentially*: the walk of an unaffected pair cannot change, so its
//! CDG fragment and fate are reused, and only affected pairs are re-walked.
//! A pair is affected when
//!
//! * its walk contains a re-injection — `reroute_on_fault` may install an
//!   explicit path computed by a *global* shortest-path query over the
//!   healthy graph, so any new fault anywhere can change the walk; or
//! * a newly failed node is one of the walk's visited nodes or their
//!   neighbours (routing queries are otherwise local: an algorithm at node
//!   `x` only inspects the fault state of `x`'s own output channels and
//!   neighbours); or
//! * a newly failed link has a visited endpoint.
//!
//! Pairs whose endpoints fail are removed from the universe (fault sets only
//! grow, so the pair universe shrinks monotonically). The `paranoid` mode
//! recomputes every epoch from scratch and diffs fates, CDG edge sets and
//! acyclicity against the differential result; any divergence fails the
//! case. The per-epoch reports record pairs re-walked vs reused, so the
//! differential speedup is itself a reported metric.

use crate::exact::{accumulate_cdg, resource_count, Granularity};
use crate::reach::{check_pair, PairVerdict};
use crate::relation::{walk_pair, StateBudgetExceeded, Step};
use crate::witness::{describe_cycle, describe_pair_verdict};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;
use torus_faults::{FaultSchedule, FaultScheduleError, FaultSet, ScheduleEpoch};
use torus_routing::cdg::DependencyGraph;
use torus_routing::RoutingAlgorithm;
use torus_topology::{AnyTopology, HealthyGraph, NodeId};

/// Per-epoch fate of one (source, destination) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairFate {
    /// Delivers without software-layer involvement.
    Routable,
    /// Delivers, but some schedule absorbs and re-injects at a via host.
    Rerouted,
    /// Dead-ends (legitimate only when the healthy graph no longer connects
    /// the pair).
    Disconnected,
}

impl PairFate {
    /// Lower-case name ("routable" / "rerouted" / "disconnected").
    pub fn name(self) -> &'static str {
        match self {
            PairFate::Routable => "routable",
            PairFate::Rerouted => "rerouted",
            PairFate::Disconnected => "disconnected",
        }
    }
}

/// The fate of one pair at one epoch, exposed for tests and diffing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairFateEntry {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// The pair's fate at the epoch.
    pub fate: PairFate,
}

/// Everything remembered about one pair's walk, enabling reuse at the next
/// epoch.
#[derive(Clone, Debug)]
struct PairRecord {
    /// Reachability verdict of the walk.
    verdict: PairVerdict,
    /// Whether the walk contains a re-injection (software-layer recovery).
    /// Such walks depend on a global shortest-path query and must be
    /// re-walked on any fault change.
    global: bool,
    /// Tracked-layer CDG edges contributed by this pair's walk.
    edges: Vec<(usize, usize)>,
    /// Nodes visited by any state of the walk (sorted, deduplicated).
    visited: Vec<NodeId>,
    /// States enumerated by the walk.
    states: usize,
}

impl PairRecord {
    fn fate(&self) -> PairFate {
        match self.verdict {
            PairVerdict::Delivers => {
                if self.global {
                    PairFate::Rerouted
                } else {
                    PairFate::Routable
                }
            }
            PairVerdict::DeadEnd { .. } | PairVerdict::Livelock { .. } => PairFate::Disconnected,
        }
    }
}

/// Report of one verified epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// First cycle of the epoch.
    pub cycle: u64,
    /// Labels of the events that arrived at this cycle.
    pub new_faults: Vec<String>,
    /// Cumulative faulty nodes in force.
    pub faulty_nodes: usize,
    /// Cumulative faulty links in force.
    pub faulty_links: usize,
    /// Pairs with both endpoints healthy at this epoch.
    pub pairs: usize,
    /// Pairs delivering without software-layer involvement.
    pub routable: usize,
    /// Pairs delivering via absorb/re-inject recovery.
    pub rerouted: usize,
    /// Pairs that dead-end (legitimately, when the graph is cut).
    pub disconnected: usize,
    /// Ordered pairs excluded because an endpoint is faulty.
    pub endpoint_faulty: usize,
    /// Pairs re-walked at this epoch.
    pub rewalked: usize,
    /// Pairs whose previous walk was reused unchanged.
    pub reused: usize,
    /// Vertices of the per-epoch union CDG.
    pub cdg_vertices: usize,
    /// Edges of the per-epoch union CDG.
    pub cdg_edges: usize,
    /// Whether the per-epoch union CDG is acyclic.
    pub acyclic: bool,
    /// Relation states enumerated by this epoch's re-walks.
    pub states: usize,
    /// Wall clock spent on this epoch, in milliseconds.
    pub wall_ms: u64,
    /// Failure description when the epoch fails verification.
    pub failure: Option<String>,
    /// Witness lines: the CDG cycle or spurious dead-end path on failure,
    /// or the first legitimate disconnection's path as evidence.
    pub witness: Vec<String>,
}

/// Outcome of verifying one (topology, routing, VC, schedule) case.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// One report per epoch, in schedule order.
    pub epochs: Vec<EpochReport>,
    /// Pair fates per epoch (sorted by (src, dest)), for tests and diffing.
    pub fates: Vec<Vec<PairFateEntry>>,
    /// Whether the paranoid from-scratch cross-check ran.
    pub paranoid: bool,
    /// Differential-vs-scratch divergences found by the paranoid mode
    /// (non-empty implies failure).
    pub divergences: Vec<String>,
}

impl ScheduleOutcome {
    /// True when any epoch failed verification or the paranoid diff found a
    /// divergence.
    pub fn failed(&self) -> bool {
        !self.divergences.is_empty() || self.epochs.iter().any(|e| e.failure.is_some())
    }

    /// Total relation states enumerated across all epochs.
    pub fn total_states(&self) -> usize {
        self.epochs.iter().map(|e| e.states).sum()
    }

    /// Total pairs re-walked / reused across all epochs.
    pub fn rewalk_totals(&self) -> (usize, usize) {
        self.epochs
            .iter()
            .fold((0, 0), |(rw, ru), e| (rw + e.rewalked, ru + e.reused))
    }

    /// One-line summary used as the matrix case detail.
    pub fn summary(&self) -> String {
        if let Some(d) = self.divergences.first() {
            return format!(
                "paranoid cross-check diverged ({} divergences); first: {d}",
                self.divergences.len()
            );
        }
        if let Some(e) = self.epochs.iter().find(|e| e.failure.is_some()) {
            return format!(
                "epoch at cycle {} failed: {}",
                e.cycle,
                e.failure.as_deref().unwrap_or("")
            );
        }
        let last = self.epochs.last().expect("schedules have at least epoch 0");
        let (rewalked, reused) = self.rewalk_totals();
        format!(
            "{} epochs all acyclic; final fates {} routable / {} rerouted / {} disconnected; \
             {} pairs re-walked, {} reused{}",
            self.epochs.len(),
            last.routable,
            last.rerouted,
            last.disconnected,
            rewalked,
            reused,
            if self.paranoid {
                "; paranoid diff clean"
            } else {
                ""
            }
        )
    }
}

/// Errors of a schedule verification: an invalid schedule or a blown state
/// budget.
#[derive(Clone, Debug)]
pub enum ScheduleVerifyError {
    /// The schedule failed validation against the network.
    Schedule(FaultScheduleError),
    /// A pair walk exceeded the state budget.
    Budget(StateBudgetExceeded),
}

impl fmt::Display for ScheduleVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleVerifyError::Schedule(e) => write!(f, "invalid fault schedule: {e}"),
            ScheduleVerifyError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleVerifyError {}

impl From<FaultScheduleError> for ScheduleVerifyError {
    fn from(e: FaultScheduleError) -> Self {
        ScheduleVerifyError::Schedule(e)
    }
}

impl From<StateBudgetExceeded> for ScheduleVerifyError {
    fn from(e: StateBudgetExceeded) -> Self {
        ScheduleVerifyError::Budget(e)
    }
}

/// Walks one pair under `faults` and distils the record the differential
/// pass needs: verdict, global flag, CDG fragment, visited-node footprint.
#[allow(clippy::too_many_arguments)]
fn walk_record<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
    src: NodeId,
    dest: NodeId,
    state_budget: usize,
    granularity: Granularity,
    resources: usize,
) -> Result<PairRecord, StateBudgetExceeded> {
    let walk = walk_pair(net, algo, faults, v, src, dest, state_budget)?;
    let mut fragment = DependencyGraph::new(resources);
    accumulate_cdg(net, &walk, v, granularity, &mut fragment);
    let mut visited: Vec<NodeId> = walk.iter().map(|(_, s)| s.node).collect();
    visited.sort_unstable();
    visited.dedup();
    let global = walk
        .iter()
        .any(|(_, s)| s.steps.iter().any(|st| matches!(st, Step::Reinject { .. })));
    Ok(PairRecord {
        verdict: check_pair(&walk),
        global,
        edges: fragment.iter_edges().collect(),
        visited,
        states: walk.len(),
    })
}

/// True when a new fault event can influence the recorded walk: routing
/// queries are local to the visited nodes and their incident channels, so
/// only a fault on a visited node, a neighbour of one, or a link with a
/// visited endpoint can change any decision along the walk.
fn event_touches(net: &AnyTopology, record: &PairRecord, event: &torus_faults::FaultEvent) -> bool {
    let visited = |n: NodeId| record.visited.binary_search(&n).is_ok();
    match *event {
        torus_faults::FaultEvent::Node { node } => {
            let node = NodeId(node);
            visited(node) || net.neighbors(node).iter().any(|&(_, nb)| visited(nb))
        }
        torus_faults::FaultEvent::Link { node, dim, dir } => {
            let node = NodeId(node);
            visited(node) || net.neighbor(node, dim, dir).is_some_and(visited)
        }
    }
}

/// Labels each healthy node with its connected component of the epoch's
/// healthy graph (faulty nodes get `usize::MAX`).
fn component_labels(net: &AnyTopology, faults: &FaultSet) -> Vec<usize> {
    let graph = HealthyGraph::new(net, faults);
    let mut labels = vec![usize::MAX; net.num_nodes()];
    let mut next = 0;
    for start in net.nodes() {
        if faults.is_node_faulty(start) || labels[start.index()] != usize::MAX {
            continue;
        }
        for (node, dist) in graph.bfs_distances(start).into_iter().enumerate() {
            if dist.is_some() {
                labels[node] = next;
            }
        }
        next += 1;
    }
    labels
}

/// Walks every healthy pair of `faults` from scratch into a record map.
fn walk_all_pairs<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
    state_budget: usize,
    granularity: Granularity,
    resources: usize,
) -> Result<BTreeMap<(NodeId, NodeId), PairRecord>, StateBudgetExceeded> {
    let mut records = BTreeMap::new();
    for src in net.endpoints() {
        if faults.is_node_faulty(src) {
            continue;
        }
        for dest in net.endpoints() {
            if dest == src || faults.is_node_faulty(dest) {
                continue;
            }
            let rec = walk_record(
                net,
                algo,
                faults,
                v,
                src,
                dest,
                state_budget,
                granularity,
                resources,
            )?;
            records.insert((src, dest), rec);
        }
    }
    Ok(records)
}

/// Builds the epoch report from the record map: union CDG, fate counts,
/// failure analysis (cyclic CDG, spurious dead end, livelock) and witnesses.
#[allow(clippy::too_many_arguments)]
fn epoch_report(
    net: &AnyTopology,
    v: usize,
    granularity: Granularity,
    resources: usize,
    epoch: &ScheduleEpoch,
    records: &BTreeMap<(NodeId, NodeId), PairRecord>,
    rewalked: usize,
    reused: usize,
    states: usize,
    started: Instant,
) -> EpochReport {
    let mut graph = DependencyGraph::new(resources);
    for rec in records.values() {
        for &(from, to) in &rec.edges {
            graph.add_edge(from, to);
        }
    }
    let cdg_cycle = graph.find_cycle();
    let components = component_labels(net, &epoch.faults);
    let (mut routable, mut rerouted, mut disconnected) = (0usize, 0usize, 0usize);
    let mut failure = None;
    let mut witness = Vec::new();
    let mut first_disconnect: Option<(NodeId, NodeId)> = None;
    for (&(src, dest), rec) in records {
        match rec.fate() {
            PairFate::Routable => routable += 1,
            PairFate::Rerouted => rerouted += 1,
            PairFate::Disconnected => {
                disconnected += 1;
                let connected = components[src.index()] == components[dest.index()];
                let spurious = connected || matches!(rec.verdict, PairVerdict::Livelock { .. });
                if spurious && failure.is_none() {
                    failure = Some(format!(
                        "pair {} -> {} {} although the healthy graph {} them",
                        net.node_label(src),
                        net.node_label(dest),
                        match rec.verdict {
                            PairVerdict::Livelock { .. } => "livelocks",
                            _ => "dead-ends",
                        },
                        if connected {
                            "still connects"
                        } else {
                            "no longer connects"
                        },
                    ));
                    witness = describe_pair_verdict(net, &rec.verdict);
                } else if first_disconnect.is_none() {
                    first_disconnect = Some((src, dest));
                }
            }
        }
    }
    if let Some(cycle) = &cdg_cycle {
        failure = Some(format!(
            "per-epoch union CDG has a cycle of {} resources",
            cycle.len()
        ));
        witness = describe_cycle(net, cycle, v, granularity);
    } else if failure.is_none() {
        if let Some((src, dest)) = first_disconnect {
            // Evidence (not a violation): the first legitimately
            // disconnected pair and its dead-end path.
            if let Some(rec) = records.get(&(src, dest)) {
                witness = describe_pair_verdict(net, &rec.verdict);
            }
        }
    }
    let n = net.num_endpoints();
    EpochReport {
        cycle: epoch.cycle,
        new_faults: epoch
            .new_events
            .iter()
            .map(torus_faults::FaultEvent::label)
            .collect(),
        faulty_nodes: epoch.faults.num_faulty_nodes(),
        faulty_links: epoch.faults.num_faulty_links(),
        pairs: records.len(),
        routable,
        rerouted,
        disconnected,
        endpoint_faulty: n * (n - 1) - records.len(),
        rewalked,
        reused,
        cdg_vertices: graph.num_vertices(),
        cdg_edges: graph.num_edges(),
        acyclic: cdg_cycle.is_none(),
        states,
        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        failure,
        witness,
    }
}

fn fates_of(records: &BTreeMap<(NodeId, NodeId), PairRecord>) -> Vec<PairFateEntry> {
    records
        .iter()
        .map(|(&(src, dest), rec)| PairFateEntry {
            src,
            dest,
            fate: rec.fate(),
        })
        .collect()
}

fn sorted_edges(rec: &PairRecord) -> Vec<(usize, usize)> {
    let mut e = rec.edges.clone();
    e.sort_unstable();
    e
}

/// Verifies a fault schedule epoch by epoch: epoch 0 from scratch, later
/// epochs differentially (see the module docs for the soundness argument).
/// With `paranoid` every epoch is additionally recomputed from scratch and
/// diffed against the differential result.
pub fn verify_schedule<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    schedule: &FaultSchedule,
    v: usize,
    state_budget: usize,
    paranoid: bool,
) -> Result<ScheduleOutcome, ScheduleVerifyError> {
    let granularity = Granularity::PerVc;
    let resources = resource_count(net, v, granularity);
    let epochs_spec = schedule.epochs(net)?;
    let mut records: BTreeMap<(NodeId, NodeId), PairRecord> = BTreeMap::new();
    let mut epochs = Vec::with_capacity(epochs_spec.len());
    let mut fates = Vec::with_capacity(epochs_spec.len());
    let mut divergences = Vec::new();

    for (ei, epoch) in epochs_spec.iter().enumerate() {
        let started = Instant::now();
        let mut rewalked = 0usize;
        let mut reused = 0usize;
        let mut states = 0usize;
        if ei == 0 {
            records = walk_all_pairs(
                net,
                algo,
                &epoch.faults,
                v,
                state_budget,
                granularity,
                resources,
            )?;
            rewalked = records.len();
            states = records.values().map(|r| r.states).sum();
        } else {
            // Fault sets only grow: drop pairs whose endpoints just failed.
            records.retain(|&(src, dest), _| {
                !epoch.faults.is_node_faulty(src) && !epoch.faults.is_node_faulty(dest)
            });
            let keys: Vec<(NodeId, NodeId)> = records.keys().copied().collect();
            for key in keys {
                let needs_rewalk = {
                    let rec = &records[&key];
                    rec.global
                        || epoch
                            .new_events
                            .iter()
                            .any(|ev| event_touches(net, rec, ev))
                };
                if needs_rewalk {
                    let rec = walk_record(
                        net,
                        algo,
                        &epoch.faults,
                        v,
                        key.0,
                        key.1,
                        state_budget,
                        granularity,
                        resources,
                    )?;
                    states += rec.states;
                    records.insert(key, rec);
                    rewalked += 1;
                } else {
                    reused += 1;
                }
            }
        }
        let mut report = epoch_report(
            net,
            v,
            granularity,
            resources,
            epoch,
            &records,
            rewalked,
            reused,
            states,
            started,
        );
        if paranoid {
            let scratch = walk_all_pairs(
                net,
                algo,
                &epoch.faults,
                v,
                state_budget,
                granularity,
                resources,
            )?;
            diff_against_scratch(net, epoch, &records, &scratch, &mut divergences);
        }
        if report.failure.is_none() {
            if let Some(d) = divergences.first() {
                report.failure = Some(format!("paranoid cross-check diverged: {d}"));
            }
        }
        fates.push(fates_of(&records));
        epochs.push(report);
    }

    Ok(ScheduleOutcome {
        epochs,
        fates,
        paranoid,
        divergences,
    })
}

/// Diffs the differential record map against a from-scratch recomputation
/// of the same epoch: same pair universe, same fates, same CDG fragments.
fn diff_against_scratch(
    net: &AnyTopology,
    epoch: &ScheduleEpoch,
    differential: &BTreeMap<(NodeId, NodeId), PairRecord>,
    scratch: &BTreeMap<(NodeId, NodeId), PairRecord>,
    divergences: &mut Vec<String>,
) {
    let at =
        |key: &(NodeId, NodeId)| format!("{} -> {}", net.node_label(key.0), net.node_label(key.1));
    for key in differential.keys() {
        if !scratch.contains_key(key) {
            divergences.push(format!(
                "cycle {}: differential kept pair {} that a scratch walk excludes",
                epoch.cycle,
                at(key)
            ));
        }
    }
    for (key, fresh) in scratch {
        let Some(diff) = differential.get(key) else {
            divergences.push(format!(
                "cycle {}: differential lost pair {}",
                epoch.cycle,
                at(key)
            ));
            continue;
        };
        if diff.fate() != fresh.fate() {
            divergences.push(format!(
                "cycle {}: pair {} fate {} differentially but {} from scratch",
                epoch.cycle,
                at(key),
                diff.fate().name(),
                fresh.fate().name()
            ));
        }
        if sorted_edges(diff) != sorted_edges(fresh) {
            divergences.push(format!(
                "cycle {}: pair {} CDG fragment differs ({} edges differentially, {} from scratch)",
                epoch.cycle,
                at(key),
                diff.edges.len(),
                fresh.edges.len()
            ));
        }
    }
}
