//! Exhaustive enumeration of a routing relation as a finite state graph.
//!
//! A routing algorithm, observed from the network's point of view, is a
//! relation between *states* — (current node, message header) pairs — and the
//! channels it requests next. Because every header field is bounded (the via
//! chain, the forced-direction overrides, the dateline flags, the shrinking
//! misroute budget), the set of states reachable from one injection is
//! finite, and the whole relation can be walked exactly: no simulation, no
//! sampling, no hand-derived model. [`walk_pair`] drives the real
//! [`RoutingAlgorithm`] implementation — `route`, `note_hop`,
//! `deterministic_output` and the software-layer `reroute_on_fault`, exactly
//! as the simulator engines do — and materialises every transition the
//! algorithm can take for one (source, destination) pair under a fixed fault
//! set.
//!
//! The resulting [`RelationWalk`] is the common substrate of the two static
//! checks: exact channel-dependency-graph extraction
//! ([`crate::exact`]) and reachability/progress verification
//! ([`crate::reach`]).

use std::collections::HashMap;
use torus_faults::FaultSet;
use torus_routing::{RouteDecision, RouteHeader, RoutingAlgorithm};
use torus_topology::{AnyTopology, Direction, NodeId};

/// Index of a state inside a [`RelationWalk`].
pub type StateId = usize;

/// One outgoing transition of a routing state.
#[derive(Clone, Debug)]
pub enum Step {
    /// The head flit crosses the channel `(dim, dir)` out of the state's
    /// node, riding one of the listed virtual channels.
    Hop {
        /// Dimension of the crossed channel.
        dim: usize,
        /// Direction of the crossed channel.
        dir: Direction,
        /// Virtual channels the algorithm permits on this candidate.
        vcs: Vec<usize>,
        /// Whether the candidate belongs to the analysed (deterministic /
        /// escape) layer: all candidates of a deterministic-flavour
        /// algorithm, only the escape candidates of an adaptive one.
        tracked: bool,
        /// State reached after the hop.
        next: StateId,
    },
    /// The message is absorbed at the node (its requested output is faulty),
    /// its header is rewritten by the software layer, and it is re-injected
    /// at the same node — releasing every channel it held.
    Reinject {
        /// State the rewritten message is re-injected into.
        next: StateId,
    },
}

/// Terminal classification of a state without outgoing transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// The message is consumed at its final destination.
    Delivered,
    /// The message was absorbed and the software layer found no route
    /// (`reroute_on_fault` returned `false`): a dead end.
    Dead,
}

/// One state of the walk: the routing-relevant part of a (node, header)
/// pair. The stored header is the representative first reached; hop and
/// absorption counters are ignored when states are identified.
#[derive(Clone, Debug)]
pub struct StateNode {
    /// Node the message head occupies.
    pub node: NodeId,
    /// Representative header (counters not normalised).
    pub header: RouteHeader,
    /// Every transition the algorithm permits from this state.
    pub steps: Vec<Step>,
    /// Terminal classification, if the state has no outgoing transition.
    pub terminal: Option<Terminal>,
}

/// The complete reachable state graph of one (source, destination) pair.
#[derive(Clone, Debug)]
pub struct RelationWalk {
    states: Vec<StateNode>,
    start: StateId,
}

impl RelationWalk {
    /// The injection state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the walk holds no states (never produced by [`walk_pair`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state with the given id.
    pub fn state(&self, id: StateId) -> &StateNode {
        &self.states[id]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &StateNode)> {
        self.states.iter().enumerate()
    }
}

/// The per-pair walk exceeded its state budget — the configuration is too
/// large for exact analysis (or the routing relation has blown up, which is
/// itself a finding worth reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateBudgetExceeded {
    /// The configured maximum number of states per pair.
    pub limit: usize,
}

impl std::fmt::Display for StateBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routing-relation walk exceeded the state budget of {} states per pair",
            self.limit
        )
    }
}

impl std::error::Error for StateBudgetExceeded {}

/// Normalises a header into a state key: hop and absorption counters do not
/// influence any routing decision, so folding them together keeps the state
/// space finite without losing exactness.
fn state_key(header: &RouteHeader) -> RouteHeader {
    let mut key = header.clone();
    key.hops = 0;
    key.absorptions = 0;
    key
}

fn intern(
    states: &mut Vec<StateNode>,
    ids: &mut HashMap<(NodeId, RouteHeader), StateId>,
    node: NodeId,
    header: RouteHeader,
) -> StateId {
    *ids.entry((node, state_key(&header))).or_insert_with(|| {
        states.push(StateNode {
            node,
            header,
            steps: Vec::new(),
            terminal: None,
        });
        states.len() - 1
    })
}

/// Walks the routing relation of `algo` for one (source, destination) pair
/// under `faults`, enumerating every reachable (node, header) state and every
/// transition out of it. `v` is the number of virtual channels per physical
/// channel.
///
/// Absorption is handled exactly as in the simulator engines: the blocked
/// output reported to `reroute_on_fault` is the algorithm's deterministic
/// output (falling back to `(0, Plus)` when the header is already at its
/// target), and a successful reroute re-injects the rewritten header at the
/// same node with its per-traversal dateline flags reset.
pub fn walk_pair<A: RoutingAlgorithm>(
    net: &AnyTopology,
    algo: &A,
    faults: &FaultSet,
    v: usize,
    src: NodeId,
    dest: NodeId,
    state_budget: usize,
) -> Result<RelationWalk, StateBudgetExceeded> {
    let mut states: Vec<StateNode> = Vec::new();
    let mut ids: HashMap<(NodeId, RouteHeader), StateId> = HashMap::new();
    let start = intern(&mut states, &mut ids, src, algo.make_header(net, src, dest));
    let all_tracked = algo.flavor() == torus_routing::RoutingFlavor::Deterministic;

    let mut cursor = 0;
    while cursor < states.len() {
        if states.len() > state_budget {
            return Err(StateBudgetExceeded {
                limit: state_budget,
            });
        }
        let node = states[cursor].node;
        let mut header = states[cursor].header.clone();
        match algo.route(net, faults, &mut header, node, v) {
            RouteDecision::Deliver => {
                states[cursor].terminal = Some(Terminal::Delivered);
            }
            RouteDecision::Forward(cands) => {
                if cands.is_empty() {
                    // Defensive: the algorithms absorb instead of returning an
                    // empty candidate list, but an empty Forward would be a
                    // dead end all the same.
                    states[cursor].terminal = Some(Terminal::Dead);
                } else {
                    let mut steps = Vec::with_capacity(cands.len());
                    for c in &cands {
                        let mut next_header = header.clone();
                        algo.note_hop(net, &mut next_header, node, c.dim, c.dir);
                        let next_node = net
                            .neighbor(node, c.dim, c.dir)
                            .expect("routing candidates cross existing channels");
                        let next = intern(&mut states, &mut ids, next_node, next_header);
                        steps.push(Step::Hop {
                            dim: c.dim,
                            dir: c.dir,
                            vcs: c.vcs.clone(),
                            tracked: all_tracked || c.is_escape,
                            next,
                        });
                    }
                    states[cursor].steps = steps;
                }
            }
            RouteDecision::Absorb => {
                // Mirror the engines' absorption handling bit for bit.
                let blocked = algo
                    .deterministic_output(net, &header, node)
                    .unwrap_or((0, Direction::Plus));
                let mut rewritten = header.clone();
                if algo.reroute_on_fault(net, faults, &mut rewritten, node, blocked) {
                    rewritten.reset_for_injection();
                    let next = intern(&mut states, &mut ids, node, rewritten);
                    states[cursor].steps = vec![Step::Reinject { next }];
                } else {
                    states[cursor].terminal = Some(Terminal::Dead);
                }
            }
        }
        cursor += 1;
    }
    Ok(RelationWalk { states, start })
}
