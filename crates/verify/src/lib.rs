//! Static routing verification for the Software-Based fault-tolerant
//! routing study: exact channel-dependency graphs, cycle witnesses, and
//! reachability proofs, extracted from the *real* routing implementations
//! rather than hand-derived models.
//!
//! The crate is organised as a small pipeline:
//!
//! * [`relation`] — walks a [`torus_routing::RoutingAlgorithm`] exhaustively
//!   for one (source, destination) pair, materialising the finite state
//!   graph of every `(node, header) → candidate` transition, including the
//!   software-layer absorb/reroute/re-inject loop under a fault set;
//! * [`exact`] — folds walks into an exact per-VC channel dependency graph
//!   (escape-layer resources only for adaptive algorithms, with Duato-style
//!   indirect dependencies), whose acyclicity proves deadlock freedom;
//! * [`reach`] — proves deliver-under-every-schedule per pair, or produces a
//!   dead-end / livelock witness path;
//! * [`epochs`] — verifies dynamic fault schedules epoch by epoch,
//!   differentially re-walking only pairs whose footprint a new fault
//!   touches and classifying every pair's fate (routable / rerouted /
//!   disconnected) per epoch;
//! * [`witness`] — renders cycle and path witnesses as concrete channels and
//!   coordinates;
//! * [`matrix`] — sweeps the supported (topology × routing × VC × fault)
//!   matrix and collects verdicts;
//! * [`report`] — renders a matrix run as `VERIFY.json` and console text.
//!
//! The `verify` binary in `torus-bench` drives [`matrix`] as a CI gate.

pub mod epochs;
pub mod exact;
pub mod matrix;
pub mod reach;
pub mod relation;
pub mod report;
pub mod witness;

pub use epochs::{verify_schedule, EpochReport, PairFate, ScheduleOutcome, ScheduleVerifyError};
pub use exact::{extract_exact_cdg, ExactCdg, Granularity};
pub use matrix::{run_matrix, CaseResult, MatrixKind, MatrixReport, Verdict};
pub use reach::{check_reachability, PairVerdict, ReachReport};
pub use relation::{walk_pair, RelationWalk, StateBudgetExceeded};

/// Convenience re-exports for `use swbft_verify::prelude::*;`.
pub mod prelude {
    pub use crate::epochs::{verify_schedule, EpochReport, PairFate, ScheduleOutcome};
    pub use crate::exact::{extract_exact_cdg, ExactCdg, Granularity};
    pub use crate::matrix::{run_matrix, MatrixKind, MatrixReport, Verdict};
    pub use crate::reach::{check_reachability, PairVerdict, ReachReport};
    pub use crate::relation::{walk_pair, RelationWalk};
    pub use crate::report::{render_text, to_json};
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_faults::FaultSet;
    use torus_routing::{
        RouteDecision, RouteHeader, RoutingAlgorithm, RoutingFlavor, SwBasedRouting,
        TurnModelRouting, UpDownRouting,
    };
    use torus_topology::{AnyTopology, Direction, NodeId, TopologySpec};

    fn net(spec: &str) -> AnyTopology {
        TopologySpec::parse(spec)
            .expect("valid spec")
            .build()
            .expect("topology builds")
    }

    #[test]
    fn escape_layer_cdg_is_acyclic_for_swbased_on_small_tori() {
        for spec in ["torus:4x2", "torus:5x2", "torus:4x3"] {
            let n = net(spec);
            for (label, algo) in [
                ("det", SwBasedRouting::deterministic()),
                ("adaptive", SwBasedRouting::adaptive()),
            ] {
                let v = algo.min_virtual_channels(&n);
                let cdg = extract_exact_cdg(
                    &n,
                    &algo,
                    &FaultSet::new(),
                    v,
                    Granularity::PerVc,
                    matrix::STATE_BUDGET,
                )
                .expect("walk fits budget");
                assert!(
                    cdg.graph.find_cycle().is_none(),
                    "{spec}/{label}: escape-layer CDG must be acyclic"
                );
                assert!(
                    cdg.graph.num_edges() > 0,
                    "{spec}/{label}: CDG is non-trivial"
                );
            }
        }
    }

    #[test]
    fn merged_channel_projection_is_cyclic_on_a_torus_and_witness_is_genuine() {
        let n = net("torus:8x2");
        let algo = SwBasedRouting::deterministic();
        let v = algo.min_virtual_channels(&n);
        let cdg = extract_exact_cdg(
            &n,
            &algo,
            &FaultSet::new(),
            v,
            Granularity::PerChannel,
            matrix::STATE_BUDGET,
        )
        .expect("walk fits budget");
        let cycle = cdg
            .graph
            .find_cycle()
            .expect("dateline-free projection must be cyclic on a torus");
        assert!(cycle.len() >= 2);
        for i in 0..cycle.len() {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            assert!(
                cdg.graph.has_edge(from, to),
                "witness edge {from}->{to} missing from the extracted graph"
            );
        }
        // The same relation at per-VC granularity is acyclic: the dateline
        // VC classes are exactly what breaks the cycle.
        let per_vc = extract_exact_cdg(
            &n,
            &algo,
            &FaultSet::new(),
            v,
            Granularity::PerVc,
            matrix::STATE_BUDGET,
        )
        .expect("walk fits budget");
        assert!(per_vc.graph.find_cycle().is_none());
    }

    #[test]
    fn every_algorithm_delivers_fault_free_on_its_supported_shapes() {
        for (spec, n) in [
            ("torus:4x2", net("torus:4x2")),
            ("mesh:4x2", net("mesh:4x2")),
        ] {
            for (label, algo) in matrix::matrix_routings() {
                if algo.supported_on(&n).is_err() {
                    continue;
                }
                let v = algo.min_virtual_channels(&n);
                let report =
                    check_reachability(&n, &algo, &FaultSet::new(), v, matrix::STATE_BUDGET)
                        .expect("walk fits budget");
                assert_eq!(
                    report.delivered, report.pairs,
                    "{spec}/{label}: every pair must deliver fault-free"
                );
                assert!(report.first_failure.is_none());
            }
        }
    }

    #[test]
    fn swbased_survives_a_fault_and_the_escape_cdg_stays_acyclic() {
        let n = net("torus:4x2");
        let mut faults = FaultSet::new();
        faults.fail_node(NodeId(5));
        assert!(faults.preserves_connectivity(&n));
        for algo in [SwBasedRouting::deterministic(), SwBasedRouting::adaptive()] {
            let v = algo.min_virtual_channels(&n);
            let (cdg, reach) =
                matrix::verify_case(&n, &algo, &faults, v).expect("walk fits budget");
            assert!(cdg.graph.find_cycle().is_none());
            assert_eq!(reach.delivered, reach.pairs);
        }
    }

    #[test]
    fn dead_end_is_detected_with_a_witness_path() {
        // A 3-node open line with the middle node failed: (0) and (2) are
        // disconnected, so the software layer must report a dead end.
        let n = net("mesh:3x1");
        let mut faults = FaultSet::new();
        faults.fail_node(NodeId(1));
        let algo = SwBasedRouting::deterministic();
        let v = algo.min_virtual_channels(&n);
        let walk = walk_pair(&n, &algo, &faults, v, NodeId(0), NodeId(2), 1 << 12)
            .expect("tiny walk fits budget");
        match reach::check_pair(&walk) {
            PairVerdict::DeadEnd { path } => {
                assert_eq!(
                    path.first(),
                    Some(&NodeId(0)),
                    "witness starts at injection"
                );
                assert!(!path.is_empty());
            }
            other => panic!("expected a dead end, got {other:?}"),
        }
    }

    /// A deliberately broken algorithm that always forwards along dimension
    /// 0 Plus: on a ring it spins forever, exercising livelock detection.
    #[derive(Clone, Debug)]
    struct SpinForever;

    impl RoutingAlgorithm for SpinForever {
        fn name(&self) -> String {
            "spin-forever".to_string()
        }

        fn flavor(&self) -> RoutingFlavor {
            RoutingFlavor::Deterministic
        }

        fn make_header(&self, net: &AnyTopology, src: NodeId, dest: NodeId) -> RouteHeader {
            SwBasedRouting::deterministic().make_header(net, src, dest)
        }

        fn min_virtual_channels(&self, _net: &AnyTopology) -> usize {
            1
        }

        fn deterministic_output(
            &self,
            _net: &AnyTopology,
            _header: &RouteHeader,
            _current: NodeId,
        ) -> Option<(usize, Direction)> {
            Some((0, Direction::Plus))
        }

        fn route(
            &self,
            _net: &AnyTopology,
            _faults: &FaultSet,
            _header: &mut RouteHeader,
            _current: NodeId,
            _v: usize,
        ) -> RouteDecision {
            RouteDecision::Forward(vec![torus_routing::OutputCandidate {
                dim: 0,
                dir: Direction::Plus,
                vcs: vec![0],
                is_escape: true,
            }])
        }

        fn note_hop(
            &self,
            _net: &AnyTopology,
            _header: &mut RouteHeader,
            _current: NodeId,
            _dim: usize,
            _dir: Direction,
        ) {
        }

        fn reroute_on_fault(
            &self,
            _net: &AnyTopology,
            _faults: &FaultSet,
            _header: &mut RouteHeader,
            _current: NodeId,
            _blocked: (usize, Direction),
        ) -> bool {
            false
        }
    }

    #[test]
    fn livelock_is_detected_with_a_node_cycle_witness() {
        let n = net("torus:4x1");
        let algo = SpinForever;
        let walk = walk_pair(
            &n,
            &algo,
            &FaultSet::new(),
            1,
            NodeId(0),
            NodeId(2),
            1 << 12,
        )
        .expect("tiny walk fits budget");
        match reach::check_pair(&walk) {
            PairVerdict::Livelock { cycle } => {
                assert!(!cycle.is_empty());
                assert!(cycle.len() <= n.num_nodes());
            }
            other => panic!("expected a livelock, got {other:?}"),
        }
    }

    #[test]
    fn turn_model_exact_cdgs_are_acyclic_on_open_shapes() {
        for spec in ["mesh:4x2", "mesh:3x3", "hypercube:3", "mixed:4o,3o"] {
            let n = net(spec);
            for algo in [
                TurnModelRouting::deterministic(),
                TurnModelRouting::adaptive(),
                TurnModelRouting::west_first_deterministic(),
                TurnModelRouting::west_first_adaptive(),
                TurnModelRouting::north_last_deterministic(),
                TurnModelRouting::north_last_adaptive(),
            ] {
                let v = algo.min_virtual_channels(&n);
                let cdg = extract_exact_cdg(
                    &n,
                    &algo,
                    &FaultSet::new(),
                    v,
                    Granularity::PerVc,
                    matrix::STATE_BUDGET,
                )
                .expect("walk fits budget");
                assert!(
                    cdg.graph.find_cycle().is_none(),
                    "{spec}/{}: turn-model exact CDG must be acyclic",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn updown_exact_cdgs_are_acyclic_and_every_endpoint_pair_delivers() {
        for spec in ["ft:4,2", "ft:2,3"] {
            let n = net(spec);
            for (label, algo) in [
                ("det", UpDownRouting::deterministic()),
                ("adaptive", UpDownRouting::adaptive()),
            ] {
                let v = algo.min_virtual_channels(&n);
                let cdg = extract_exact_cdg(
                    &n,
                    &algo,
                    &FaultSet::new(),
                    v,
                    Granularity::PerVc,
                    matrix::STATE_BUDGET,
                )
                .expect("walk fits budget");
                assert!(
                    cdg.graph.find_cycle().is_none(),
                    "{spec}/{label}: up/down escape-layer CDG must be acyclic"
                );
                assert!(cdg.graph.num_edges() > 0);
                let e = n.num_endpoints();
                assert_eq!(
                    cdg.pairs,
                    e * (e - 1),
                    "{spec}/{label}: only endpoint pairs are walked"
                );
                let report =
                    check_reachability(&n, &algo, &FaultSet::new(), v, matrix::STATE_BUDGET)
                        .expect("walk fits budget");
                assert_eq!(report.delivered, report.pairs);
                assert!(report.first_failure.is_none());
            }
        }
    }

    #[test]
    fn updown_survives_switch_and_uplink_faults_with_acyclic_cdgs() {
        let n = net("ft:4,2");
        let ft = n.fat_tree().expect("fat-tree backend").clone();
        // A dead top switch and a dead leaf up-link, together: every route
        // over them must re-ascend via an alternate parent.
        let mut faults = FaultSet::new();
        faults.fail_node(ft.switch_id(1, 0));
        let (port, _) = ft.parents(ft.switch_id(0, 1))[1];
        faults.fail_link(&n, ft.switch_id(0, 1), port, Direction::Plus);
        assert!(faults.preserves_connectivity(&n));
        for algo in [UpDownRouting::deterministic(), UpDownRouting::adaptive()] {
            let v = algo.min_virtual_channels(&n);
            let (cdg, reach) =
                matrix::verify_case(&n, &algo, &faults, v).expect("walk fits budget");
            assert!(cdg.graph.find_cycle().is_none(), "{}", algo.name());
            assert_eq!(reach.delivered, reach.pairs, "{}", algo.name());
        }
    }

    #[test]
    fn fat_tree_witnesses_render_role_labels() {
        let n = net("ft:4,2");
        let algo = UpDownRouting::deterministic();
        let cdg = extract_exact_cdg(
            &n,
            &algo,
            &FaultSet::new(),
            1,
            Granularity::PerVc,
            matrix::STATE_BUDGET,
        )
        .expect("walk fits budget");
        let (from, to) = cdg.graph.iter_edges().next().expect("non-trivial CDG");
        let lines = witness::describe_cycle(&n, &[from, to], 1, Granularity::PerVc);
        assert!(
            lines.iter().any(|l| l.contains('e') || l.contains('s')),
            "fat-tree witnesses use role labels: {lines:?}"
        );
    }

    #[test]
    fn smoke_matrix_proves_every_supported_case() {
        let report = run_matrix(MatrixKind::Smoke);
        assert_eq!(
            report.violations(),
            0,
            "smoke matrix must be violation-free"
        );
        let (proved, rejected, _) = report.tallies();
        assert!(proved > 0, "smoke matrix proves at least one case");
        assert!(
            rejected > 0,
            "turn models on the wrapped smoke shapes must be rejected"
        );
        for c in &report.cases {
            if c.verdict == Verdict::Rejected {
                assert!(
                    c.detail.contains(&c.topology)
                        || c.detail.contains("wraps around")
                        || c.detail.contains("cannot operate on topology"),
                    "rejection message names the topology: {}",
                    c.detail
                );
            }
        }
        assert!(
            report
                .cases
                .iter()
                .any(|c| c.faults.starts_with("links@") && c.verdict == Verdict::Proved),
            "smoke matrix covers at least one link-fault case"
        );
        assert!(
            report
                .cases
                .iter()
                .any(|c| c.faults.starts_with("region@") && c.verdict == Verdict::Proved),
            "smoke matrix covers at least one clustered-region case"
        );
        // Fat-tree coverage: the up/down flavours prove their cases on
        // ft:4,2 (including switch- and up-link-fault sets), the grid
        // schemes reject the fat-tree, and up/down rejects the grids.
        assert!(
            report.cases.iter().any(|c| c.topology == "ft:4,2"
                && c.routing.starts_with("updown")
                && c.faults.starts_with("node@s")
                && c.verdict == Verdict::Proved),
            "smoke matrix proves an up/down switch-fault case"
        );
        assert!(
            report.cases.iter().any(|c| c.topology == "ft:4,2"
                && c.routing.starts_with("updown")
                && c.faults.starts_with("links@")
                && c.verdict == Verdict::Proved),
            "smoke matrix proves an up/down up-link-fault case"
        );
        assert!(
            report.cases.iter().any(|c| c.topology == "ft:4,2"
                && c.routing == "deterministic"
                && c.verdict == Verdict::Rejected),
            "grid schemes are rejected on the fat-tree"
        );
        assert!(
            report.cases.iter().any(|c| c.topology == "torus:4x2"
                && c.routing.starts_with("updown")
                && c.verdict == Verdict::Rejected),
            "up/down is rejected on the torus"
        );
        let sched = report
            .cases
            .iter()
            .filter(|c| c.faults.starts_with("sched@"))
            .collect::<Vec<_>>();
        assert!(
            sched
                .iter()
                .any(|c| c.verdict == Verdict::Proved && c.epochs.len() > 1),
            "smoke matrix proves at least one multi-epoch schedule case"
        );
        assert!(
            sched.iter().flat_map(|c| &c.epochs).any(|e| e.reused > 0),
            "differential re-verification reuses at least one pair verdict"
        );
        let json = report::to_json(&report);
        assert!(json.contains("\"schema\": \"swbft-verify-v3\""));
        assert!(json.contains("\"failed\": 0"));
        assert!(json.contains("\"wall_clock_ms\": "));
        assert!(json.contains("\"rewalked\": "));
        let text = report::render_text(&report);
        assert!(text.contains("0 failed"));
    }

    #[test]
    fn parallel_matrix_matches_sequential_case_for_case() {
        let sequential = run_matrix(MatrixKind::Smoke);
        let parallel = matrix::run_matrix_with_options(MatrixKind::Smoke, 4, |_| {});
        assert_eq!(parallel.jobs, 4);
        assert_eq!(sequential.cases.len(), parallel.cases.len());
        for (a, b) in sequential.cases.iter().zip(&parallel.cases) {
            assert_eq!(a.topology, b.topology);
            assert_eq!(a.routing, b.routing);
            assert_eq!(a.virtual_channels, b.virtual_channels);
            assert_eq!(a.faults, b.faults);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.cdg_edges, b.cdg_edges);
            assert_eq!(a.states, b.states);
            assert_eq!(a.detail, b.detail);
        }
    }

    #[test]
    fn naive_demo_fails_with_a_channel_cycle_witness() {
        let case = matrix::naive_torus_demo();
        assert_eq!(case.verdict, Verdict::Failed);
        assert!(!case.witness.is_empty());
        assert!(case
            .witness
            .last()
            .expect("non-empty")
            .contains("back to c0"));
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_characters() {
        assert_eq!(report::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(report::json_escape("\u{1}"), "\\u0001");
    }
}
