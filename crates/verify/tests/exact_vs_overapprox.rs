//! Property-based bridge between the two CDG constructions: the exact graph
//! extracted from the deterministic turn-model routing relation must be a
//! subgraph of `build_turn_cdg`'s over-approximation (which admits every
//! rule-legal turn, minimal or not) on every open shape — and both must be
//! acyclic there.

use proptest::prelude::*;
use swbft_verify::{extract_exact_cdg, Granularity};
use torus_faults::FaultSet;
use torus_routing::cdg::{build_turn_cdg, TurnRule};
use torus_routing::TurnModelRouting;
use torus_topology::{AnyTopology, Direction, Network, NodeId};

/// Random open shapes: 1..=3 dimensions with mixed radices, no wraps.
fn arb_mesh() -> impl Strategy<Value = Network> {
    (1usize..=3, (2u16..5, 2u16..5, 2u16..4)).prop_map(|(n, (k0, k1, k2))| {
        let radices = [k0, k1, k2][..n].to_vec();
        Network::new(radices, vec![false; n]).unwrap()
    })
}

fn rules() -> Vec<(TurnRule, TurnModelRouting)> {
    vec![
        (TurnRule::NegativeFirst, TurnModelRouting::deterministic()),
        (
            TurnRule::WestFirst,
            TurnModelRouting::west_first_deterministic(),
        ),
        (
            TurnRule::NorthLast,
            TurnModelRouting::north_last_deterministic(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every dependency the real deterministic turn-model routing can create
    /// is predicted by the hand-derived turn CDG, and the exact graph is
    /// acyclic wherever the over-approximation is.
    #[test]
    fn exact_turn_cdg_is_a_subgraph_of_the_over_approximation(net in arb_mesh()) {
        let topo = AnyTopology::from(net.clone());
        for (rule, algo) in rules() {
            let exact = extract_exact_cdg(
                &topo,
                &algo,
                &FaultSet::new(),
                1,
                Granularity::PerChannel,
                1 << 20,
            )
            .expect("open-shape walks are tiny");
            let over = build_turn_cdg(&net, rule);
            prop_assert_eq!(exact.graph.num_vertices(), over.num_vertices());
            for (from, to) in exact.graph.iter_edges() {
                prop_assert!(
                    over.has_edge(from, to),
                    "exact edge {}->{} missing from the {:?} over-approximation on {}",
                    from, to, rule, net
                );
            }
            prop_assert!(over.is_acyclic(), "{:?} over-approximation on {}", rule, net);
            prop_assert!(exact.graph.find_cycle().is_none());
            // On shapes with more than one node the relation is non-trivial.
            if net.num_nodes() > 2 {
                prop_assert!(exact.graph.num_edges() <= over.num_edges());
            }
        }
    }

    /// Faults only remove behaviour: under any connectivity-preserving
    /// single link fault, the exact CDG of the rerouted relation is still a
    /// subgraph of the fault-free over-approximation (the turn rules keep
    /// holding), and still acyclic.
    #[test]
    fn link_fault_exact_cdg_stays_a_subgraph(net in arb_mesh(), pick in 0usize..1024) {
        let n = net.num_nodes();
        let node = NodeId(u32::try_from(pick % n).unwrap());
        let dim = (pick / n) % net.dims();
        let dir = if (pick / (n * net.dims())).is_multiple_of(2) {
            Direction::Plus
        } else {
            Direction::Minus
        };
        let mut faults = FaultSet::new();
        faults.fail_link(&net, node, dim, dir);
        prop_assume!(faults.num_faulty_links() > 0);
        prop_assume!(faults.preserves_connectivity(&net));
        let topo = AnyTopology::from(net.clone());
        for (rule, algo) in rules() {
            let exact = extract_exact_cdg(
                &topo,
                &algo,
                &faults,
                1,
                Granularity::PerChannel,
                1 << 20,
            )
            .expect("open-shape walks are tiny");
            let over = build_turn_cdg(&net, rule);
            for (from, to) in exact.graph.iter_edges() {
                prop_assert!(
                    over.has_edge(from, to),
                    "link-faulted exact edge {}->{} missing from the {:?} \
                     over-approximation on {}",
                    from, to, rule, net
                );
            }
            prop_assert!(
                exact.graph.find_cycle().is_none(),
                "{:?} exact CDG under a link fault on {}", rule, net
            );
        }
    }
}
