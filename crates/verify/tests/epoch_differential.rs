//! Property-based and unit checks for the epoch-differential schedule
//! verifier: the differential pass must agree bit-for-bit with a
//! from-scratch recomputation at every epoch (the paranoid diff is empty on
//! random schedules), and a schedule that cuts the healthy graph must flip
//! exactly the cut pairs to `disconnected` at exactly the epoch of the cut,
//! with a concrete witness.

use proptest::prelude::*;
use swbft_verify::matrix::{matrix_routings, STATE_BUDGET};
use swbft_verify::{verify_schedule, PairFate};
use torus_faults::{FaultEvent, FaultSchedule, FaultSet};
use torus_routing::RoutingAlgorithm;
use torus_topology::{AnyTopology, Direction, FatTree, Network, NodeId};

/// Small mixed shapes — 1..=2-dimensional grids, wrapped or open per
/// dimension — plus small fat-trees, so the differential soundness property
/// is checked on both topology classes.
fn arb_net() -> impl Strategy<Value = AnyTopology> {
    let grids = (
        1usize..=2,
        (3u16..=4, 2u16..=3),
        (any::<bool>(), any::<bool>()),
    )
        .prop_map(|(n, (k0, k1), (w0, w1))| {
            let radices = [k0, k1][..n].to_vec();
            // Rings shorter than 3 are rejected as wrapped; open them.
            let wraps: Vec<bool> = radices
                .iter()
                .zip([w0, w1])
                .map(|(&k, w)| w && k >= 3)
                .collect();
            AnyTopology::from(Network::new(radices, wraps).unwrap())
        });
    let fat_trees = (2u16..=3).prop_map(|k| AnyTopology::from(FatTree::new(k, 2).unwrap()));
    prop_oneof![grids, fat_trees]
}

/// Builds a valid schedule from raw picks: events are injected at strictly
/// increasing cycles, and picks that would duplicate a fault or name a
/// missing link are skipped rather than rejected.
fn schedule_from_picks(net: &AnyTopology, picks: &[u32]) -> FaultSchedule {
    let mut mirror = FaultSet::new();
    let mut events = Vec::new();
    for (i, &pick) in picks.iter().enumerate() {
        let cycle = 100 * (i as u64 + 1);
        let node = NodeId(pick % net.num_nodes() as u32);
        if pick.is_multiple_of(2) {
            if mirror.is_node_faulty(node) {
                continue;
            }
            mirror.fail_node(node);
            events.push((cycle, FaultEvent::Node { node: node.0 }));
        } else {
            let dim = (pick as usize / net.num_nodes()) % net.dims();
            let dir = if pick.is_multiple_of(3) {
                Direction::Plus
            } else {
                Direction::Minus
            };
            if net.neighbor(node, dim, dir).is_none() {
                continue;
            }
            let before = mirror.num_faulty_links();
            mirror.fail_link(net, node, dim, dir);
            if mirror.num_faulty_links() == before {
                continue;
            }
            events.push((
                cycle,
                FaultEvent::Link {
                    node: node.0,
                    dim,
                    dir,
                },
            ));
        }
    }
    FaultSchedule::from_events(events).expect("cycles are strictly increasing")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random small topologies and random valid schedules, the
    /// differential pass and the from-scratch recomputation agree on the
    /// pair universe, every pair fate and every CDG fragment at every
    /// epoch — the paranoid diff is empty.
    #[test]
    fn differential_matches_from_scratch(
        net in arb_net(),
        picks in (0u32..1024, 0u32..1024, 0u32..1024, 0u32..1024),
    ) {
        let schedule = schedule_from_picks(&net, &[picks.0, picks.1, picks.2, picks.3]);
        prop_assume!(!schedule.is_empty());
        prop_assert!(schedule.validate(&net).is_ok());
        for (label, algo) in matrix_routings() {
            if algo.supported_on(&net).is_err() {
                continue;
            }
            let v = algo.min_virtual_channels(&net);
            let outcome = verify_schedule(&net, &algo, &schedule, v, STATE_BUDGET, true)
                .expect("small walks fit the state budget");
            prop_assert!(
                outcome.divergences.is_empty(),
                "{label} on {net}: differential diverged from scratch: {:?}",
                outcome.divergences
            );
            prop_assert_eq!(outcome.epochs.len(), outcome.fates.len());
            for (ei, e) in outcome.epochs.iter().enumerate() {
                prop_assert_eq!(e.routable + e.rerouted + e.disconnected, e.pairs);
                prop_assert_eq!(e.rewalked + e.reused, e.pairs);
                prop_assert_eq!(outcome.fates[ei].len(), e.pairs);
                if ei == 0 {
                    prop_assert_eq!(e.reused, 0, "epoch 0 is walked in full");
                }
            }
        }
    }
}

/// A schedule that walls off a mesh corner must flip exactly the corner's
/// pairs to `disconnected` at exactly the epoch completing the wall, with a
/// witness path, and must still *prove* the epoch (the cut is legitimate).
#[test]
fn disconnecting_schedule_flips_pairs_at_the_cut_epoch() {
    let net = AnyTopology::from(Network::new(vec![3, 3], vec![false, false]).unwrap());
    let corner = NodeId(0);
    let wall_a = net.neighbor(corner, 0, Direction::Plus).unwrap();
    let wall_b = net.neighbor(corner, 1, Direction::Plus).unwrap();
    let schedule = FaultSchedule::from_events(vec![
        (100, FaultEvent::Node { node: wall_a.0 }),
        (200, FaultEvent::Node { node: wall_b.0 }),
    ])
    .unwrap();

    let (label, algo) = matrix_routings().into_iter().next().unwrap();
    assert_eq!(label, "deterministic");
    assert!(algo.supported_on(&net).is_ok());
    let v = algo.min_virtual_channels(&net);
    let outcome = verify_schedule(&net, &algo, &schedule, v, STATE_BUDGET, true)
        .expect("3x3 mesh walks fit the state budget");

    assert!(
        !outcome.failed(),
        "a genuine cut is a legitimate fate, not a violation: {}",
        outcome.summary()
    );
    assert_eq!(outcome.epochs.len(), 3, "epoch 0 plus two injections");
    let half_wall = &outcome.epochs[1];
    assert_eq!(
        half_wall.disconnected, 0,
        "one wall node down still leaves the corner reachable"
    );
    let cut = &outcome.epochs[2];
    // 9 nodes - 2 faulty = 7 healthy; the corner is cut from the other 6.
    assert_eq!(cut.pairs, 7 * 6);
    assert_eq!(cut.disconnected, 2 * 6);
    assert!(cut.failure.is_none());
    assert!(
        !cut.witness.is_empty(),
        "the cut epoch carries a dead-end path as evidence"
    );
    for entry in &outcome.fates[2] {
        let involves_corner = entry.src == corner || entry.dest == corner;
        assert_eq!(
            entry.fate == PairFate::Disconnected,
            involves_corner,
            "exactly the corner's pairs are disconnected: {entry:?}"
        );
    }
    for entry in &outcome.fates[1] {
        assert_ne!(
            entry.fate,
            PairFate::Disconnected,
            "no pair is disconnected before the wall completes: {entry:?}"
        );
    }
}
