//! Work-stealing experiment pool.
//!
//! Every figure grid cell, ablation variant and saturation probe is an
//! independent fixed-seed simulation, so a whole figure suite is
//! embarrassingly parallel — the only requirements are that (a) the caller
//! controls the worker count (`--jobs N` on the binaries), and (b) results
//! come back **in input order** so parallel output is bit-identical to
//! sequential output at any thread count.
//!
//! The pool shards the index space into one contiguous range per worker.
//! Each worker claims items off the *front* of its own shard; when its shard
//! drains it steals the *back half* of the fullest remaining shard and
//! installs the stolen range as its new shard (itself stealable, so a single
//! long-tailed shard keeps every worker fed). A shard is a single packed
//! `(cursor, end)` word, so claims and steals race through CAS — no locks, no
//! `unsafe`. Simulation points vary by orders of magnitude in cost (a
//! saturated 16-ary 2-cube point runs ~100× longer than an unloaded 4-ary
//! point), which is exactly the imbalance stealing absorbs and a fixed
//! upfront partition does not.
//!
//! Finished results stream back over a channel as `(index, result)` pairs and
//! are reassembled into input order by the collector, so the failure-tolerant
//! collection paths downstream observe the same sequence regardless of
//! scheduling.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// Worker-thread count for a parallel sweep: a fixed count or the machine's
/// available parallelism. The default (`Auto`) uses every core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Jobs {
    /// Use the machine's available parallelism.
    #[default]
    Auto,
    /// Use exactly this many worker threads.
    Count(NonZeroUsize),
}

impl Jobs {
    /// A fixed worker count of at least one (`count(0)` is clamped to 1, so
    /// CLI plumbing can stay total; use [`Jobs::parse`] to reject `0` with a
    /// message instead).
    pub fn count(n: usize) -> Jobs {
        Jobs::Count(NonZeroUsize::new(n.max(1)).expect("clamped to >= 1"))
    }

    /// Serial execution (`--jobs 1`).
    pub fn serial() -> Jobs {
        Jobs::count(1)
    }

    /// The concrete worker count this setting resolves to on this machine.
    pub fn effective(self) -> usize {
        match self {
            Jobs::Auto => thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Jobs::Count(n) => n.get(),
        }
    }

    /// Parses a `--jobs` value: a positive integer or `auto`.
    pub fn parse(s: &str) -> Result<Jobs, String> {
        if s == "auto" {
            return Ok(Jobs::Auto);
        }
        s.parse::<usize>()
            .ok()
            .and_then(NonZeroUsize::new)
            .map(Jobs::Count)
            .ok_or_else(|| format!("jobs must be a positive integer or 'auto', got '{s}'"))
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Jobs::Auto => write!(f, "auto"),
            Jobs::Count(n) => write!(f, "{n}"),
        }
    }
}

/// One worker's claimable range of the index space, packed as
/// `(cursor << 32) | end` in a single atomic word. The owner claims `cursor`
/// off the front, thieves CAS `end` down to take the back half; both
/// revalidate the whole word, and a word always means "indices
/// `cursor..end` are unclaimed and live here" (indices are globally unique
/// and never re-enter any shard once claimed), so stale reads can never
/// double-claim an item.
struct Shard(AtomicU64);

impl Shard {
    fn new(cursor: u32, end: u32) -> Shard {
        Shard(AtomicU64::new(Self::pack(cursor, end)))
    }

    fn pack(cursor: u32, end: u32) -> u64 {
        (u64::from(cursor) << 32) | u64::from(end)
    }

    fn unpack(word: u64) -> (u32, u32) {
        ((word >> 32) as u32, word as u32)
    }

    /// Claims the front index, or `None` when the shard is empty.
    fn claim_front(&self) -> Option<usize> {
        let mut word = self.0.load(Ordering::Acquire);
        loop {
            let (cursor, end) = Self::unpack(word);
            if cursor >= end {
                return None;
            }
            match self.0.compare_exchange_weak(
                word,
                Self::pack(cursor + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(cursor as usize),
                Err(now) => word = now,
            }
        }
    }

    /// Steals the back half (rounded up, so even a single remaining item is
    /// stealable from a busy owner) and returns the stolen range.
    fn steal_back_half(&self) -> Option<(u32, u32)> {
        let mut word = self.0.load(Ordering::Acquire);
        loop {
            let (cursor, end) = Self::unpack(word);
            let remaining = end.saturating_sub(cursor);
            if remaining == 0 {
                return None;
            }
            let split = end - remaining.div_ceil(2);
            match self.0.compare_exchange_weak(
                word,
                Self::pack(cursor, split),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((split, end)),
                Err(now) => word = now,
            }
        }
    }

    /// Unclaimed items currently in the shard (a racy snapshot, used only to
    /// pick steal victims and to detect completion).
    fn remaining(&self) -> u32 {
        let (cursor, end) = Self::unpack(self.0.load(Ordering::Acquire));
        end.saturating_sub(cursor)
    }

    /// Installs a stolen range as the new shard contents. Only the owning
    /// worker installs, and only while its shard is empty.
    fn install(&self, cursor: u32, end: u32) {
        self.0.store(Self::pack(cursor, end), Ordering::Release);
    }
}

/// Runs `work` over every item of `inputs` on a work-stealing pool of
/// `jobs` threads and returns the results in input order.
///
/// The closure must be deterministic per item; the output is then
/// bit-identical for every `jobs` value (including `Jobs::Auto` on any
/// machine), because results are reassembled by input index. The thread
/// count never exceeds the number of items, and one item (or one thread)
/// degenerates to a plain sequential map on the calling thread.
pub fn run_pool<T, R, F>(inputs: Vec<T>, jobs: Jobs, work: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    assert!(
        n <= u32::MAX as usize,
        "experiment pool supports at most 2^32-1 work items"
    );
    if n == 0 {
        return Vec::new();
    }
    let threads = jobs.effective().min(n);
    if threads <= 1 {
        return inputs.iter().map(&work).collect();
    }

    let shards: Vec<Shard> = (0..threads)
        .map(|w| Shard::new((n * w / threads) as u32, (n * (w + 1) / threads) as u32))
        .collect();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();

    thread::scope(|scope| {
        for w in 0..threads {
            let shards = &shards;
            let inputs = &inputs;
            let work = &work;
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                loop {
                    // Drain the own shard front-to-back.
                    while let Some(idx) = shards[w].claim_front() {
                        let r = work(&inputs[idx]);
                        if result_tx.send((idx, r)).is_err() {
                            return;
                        }
                    }
                    // Steal the back half of the fullest other shard and make
                    // it the new own shard (stealable in turn). When every
                    // shard is empty the sweep is complete. (A range can be
                    // in a thief's hands between the steal and the install —
                    // a worker scanning in exactly that window exits early
                    // and merely leaves a little parallelism on the table;
                    // the thief itself still processes the range.)
                    let victim = (0..shards.len())
                        .filter(|&v| v != w)
                        .max_by_key(|&v| shards[v].remaining());
                    match victim.and_then(|v| shards[v].steal_back_half()) {
                        Some((start, end)) => shards[w].install(start, end),
                        None => {
                            if shards.iter().all(|s| s.remaining() == 0) {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
        drop(result_tx);
        // Streamed results arrive in completion order; reassembling by index
        // restores input order no matter how the shards were carved up.
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((idx, r)) = result_rx.recv() {
            debug_assert!(results[idx].is_none(), "index {idx} claimed twice");
            results[idx] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index is claimed and produces exactly one result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn jobs_parsing_and_display() {
        assert_eq!(Jobs::parse("auto"), Ok(Jobs::Auto));
        assert_eq!(Jobs::parse("4"), Ok(Jobs::count(4)));
        assert_eq!(Jobs::parse("1"), Ok(Jobs::serial()));
        assert!(Jobs::parse("0").is_err());
        assert!(Jobs::parse("-2").is_err());
        assert!(Jobs::parse("many").is_err());
        assert_eq!(Jobs::count(4).to_string(), "4");
        assert_eq!(Jobs::Auto.to_string(), "auto");
        assert_eq!(Jobs::default(), Jobs::Auto);
    }

    #[test]
    fn jobs_effective_counts() {
        assert_eq!(Jobs::serial().effective(), 1);
        assert_eq!(Jobs::count(7).effective(), 7);
        assert_eq!(Jobs::count(0).effective(), 1, "count(0) clamps to serial");
        assert!(Jobs::Auto.effective() >= 1);
    }

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..500).collect();
        for jobs in [Jobs::serial(), Jobs::count(2), Jobs::count(7), Jobs::Auto] {
            let out = run_pool(inputs.clone(), jobs, |&x| x * x);
            assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u32> = run_pool(Vec::<u32>::new(), Jobs::count(8), |&x| x);
        assert!(out.is_empty());
        let out = run_pool(vec![41u32], Jobs::count(8), |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once_under_stealing() {
        // Skewed costs force the later shards to finish first and steal from
        // the slow front shard; every index must still be claimed exactly
        // once.
        let claimed = Mutex::new(HashSet::new());
        let inputs: Vec<usize> = (0..257).collect();
        let out = run_pool(inputs, Jobs::count(4), |&x| {
            if x < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert!(claimed.lock().unwrap().insert(x), "index {x} ran twice");
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(claimed.lock().unwrap().len(), 257);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let counter = AtomicUsize::new(0);
        let out = run_pool(vec![1u32, 2, 3], Jobs::count(64), |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x * 10
        });
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn parallel_matches_sequential_for_seeded_work() {
        // Each item owns its seed, so any jobs value must be bit-identical to
        // the sequential map — the invariant the figure digests pin.
        let inputs: Vec<u64> = (0..48).collect();
        let f = |&seed: &u64| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200).map(|_| rng.gen_range(0..1000u32)).sum::<u32>()
        };
        let sequential: Vec<u32> = inputs.iter().map(f).collect();
        for jobs in [Jobs::serial(), Jobs::count(3), Jobs::count(16)] {
            assert_eq!(run_pool(inputs.clone(), jobs, f), sequential);
        }
    }

    #[test]
    fn shard_claim_and_steal_protocol() {
        let s = Shard::new(0, 10);
        assert_eq!(s.remaining(), 10);
        assert_eq!(s.claim_front(), Some(0));
        // Stealing takes the back half, rounded up.
        assert_eq!(s.steal_back_half(), Some((5, 10)));
        assert_eq!(s.remaining(), 4);
        // Draining the rest off the front.
        for want in 1..5 {
            assert_eq!(s.claim_front(), Some(want));
        }
        assert_eq!(s.claim_front(), None);
        assert_eq!(s.steal_back_half(), None);
        // A single remaining item is stealable (a busy owner cannot strand
        // its last unclaimed item).
        let s = Shard::new(7, 8);
        assert_eq!(s.steal_back_half(), Some((7, 8)));
        assert_eq!(s.remaining(), 0);
        // Installing a stolen range re-arms the shard.
        s.install(7, 8);
        assert_eq!(s.claim_front(), Some(7));
        assert_eq!(s.claim_front(), None);
    }
}
