//! Saturation-rate estimation.
//!
//! The paper's latency figures are all organised around the *saturation
//! point* — the offered load beyond which the mean latency diverges — and its
//! qualitative claims are about how that point moves with the number of
//! virtual channels, the message length, the routing flavour and the number of
//! faults. This module estimates the saturation rate of a configuration
//! directly, by doubling the offered load until the network saturates and then
//! bisecting, so those claims can be checked (and tabulated by the
//! `saturation` binary in `torus-bench`) without reading the crossover off a
//! latency curve by eye.
//!
//! # Trustworthy brackets
//!
//! Every rate stored in a [`SaturationEstimate`] was **actually probed**:
//! `stable_rate` was probed and found stable, `saturated_rate` probed and
//! found saturated. When the probe budget runs out before both ends of the
//! bracket exist, the missing end is `None` instead of a fabricated value —
//! two degenerate shapes the previous implementation mis-reported:
//!
//! * **budget exhausted during doubling** — the search never observed a
//!   saturated point; `saturated_rate` is `None` and `stable_rate` is a
//!   probed *lower bound* on the saturation rate (the old code reported the
//!   never-probed next doubling rate as `saturated_rate`, so
//!   [`SaturationEstimate::rate`] was the midpoint of a fictitious bracket);
//! * **even the base rate saturates** — no stable point exists at or above
//!   `base_rate`; `stable_rate` and `latency_at_stable` are `None` (the old
//!   code reported `stable_rate: 0.0` with `latency_at_stable` measured at
//!   the *saturated* base point, handing callers a latency from an unstable
//!   operating point).
//!
//! [`SaturationEstimate::rate`] returns the bracket midpoint only when the
//! bracket is real ([`SaturationEstimate::bracketed`]); callers that need a
//! headline number for an unbracketed search must decide explicitly how to
//! present a bound.

use crate::experiment::{ExperimentConfig, ExperimentError};
use serde::{Deserialize, Serialize};

/// Result of a saturation search. Every rate was actually probed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaturationEstimate {
    /// Highest probed offered load (messages/node/cycle) at which the network
    /// was still stable, or `None` when even the base rate saturated.
    pub stable_rate: Option<f64>,
    /// Lowest probed offered load at which the network was saturated, or
    /// `None` when the probe budget was exhausted before any probe saturated
    /// (unbracketed search: `stable_rate` is then a lower bound).
    pub saturated_rate: Option<f64>,
    /// Mean latency measured at `stable_rate` (`None` iff `stable_rate` is).
    pub latency_at_stable: Option<f64>,
    /// Mean latency measured at the low-load reference point. When the base
    /// probe itself saturated this latency belongs to an *unstable* operating
    /// point — check `stable_rate` before treating it as an unloaded latency.
    pub base_latency: f64,
    /// Number of simulations executed by the search.
    pub simulations: usize,
}

impl SaturationEstimate {
    /// True when both ends of the bracket were probed: `stable_rate` is
    /// stable, `saturated_rate` saturated, and the midpoint is meaningful.
    pub fn bracketed(&self) -> bool {
        self.stable_rate.is_some() && self.saturated_rate.is_some()
    }

    /// Midpoint of the bracket — the reported saturation rate. `None` unless
    /// the search actually bracketed the saturation point
    /// ([`SaturationEstimate::bracketed`]).
    pub fn rate(&self) -> Option<f64> {
        match (self.stable_rate, self.saturated_rate) {
            (Some(stable), Some(saturated)) => Some((stable + saturated) / 2.0),
            _ => None,
        }
    }

    /// Compact human-readable form for result tables: the bracket midpoint
    /// when bracketed, an explicit bound otherwise. Total over every field
    /// combination — [`estimate_saturation_rate`] never produces the
    /// both-`None` shape, but a hand-built or deserialized value may.
    pub fn display_rate(&self) -> String {
        match (self.stable_rate, self.saturated_rate) {
            (Some(stable), Some(saturated)) => format!("{:.5}", (stable + saturated) / 2.0),
            (Some(stable), None) => format!(">={stable:.5} (unbracketed)"),
            (None, Some(saturated)) => format!("<{saturated:.5} (saturated at base)"),
            (None, None) => "(no probes)".to_string(),
        }
    }
}

/// Options controlling the saturation search.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaturationSearch {
    /// Low-load reference rate used to measure the unloaded latency.
    pub base_rate: f64,
    /// A point counts as saturated when its mean latency exceeds
    /// `latency_factor ×` the unloaded latency, or when the simulation hits
    /// its cycle cap before delivering the message budget.
    pub latency_factor: f64,
    /// Bisection stops when the bracket is narrower than this (relative to the
    /// saturated end).
    pub relative_tolerance: f64,
    /// Hard cap on the number of simulations.
    pub max_simulations: usize,
}

impl Default for SaturationSearch {
    fn default() -> Self {
        SaturationSearch {
            base_rate: 0.001,
            latency_factor: 8.0,
            relative_tolerance: 0.1,
            max_simulations: 16,
        }
    }
}

/// Estimates the saturation rate of `base` (its `rate` field is ignored).
///
/// The search runs the configuration at the low-load reference rate, doubles
/// the offered load until it finds a saturated point, and then bisects the
/// bracket. Every probe uses the same seed, fault placement and measurement
/// budget as `base`. Rates are only ever recorded in the estimate when the
/// corresponding probe actually ran (see the module docs for the two
/// degenerate shapes).
pub fn estimate_saturation_rate(
    base: &ExperimentConfig,
    search: SaturationSearch,
) -> Result<SaturationEstimate, ExperimentError> {
    let simulations = std::cell::Cell::new(0usize);
    let probe = |rate: f64| -> Result<(f64, bool), ExperimentError> {
        simulations.set(simulations.get() + 1);
        let outcome = base.clone().with_rate(rate).run()?;
        Ok((outcome.report.mean_latency, outcome.hit_max_cycles))
    };

    let (base_latency, base_saturated) = probe(search.base_rate)?;
    let threshold = base_latency * search.latency_factor;
    if base_saturated {
        // Even the reference load saturates: there is no stable point to
        // report, and no latency measured at a stable point.
        return Ok(SaturationEstimate {
            stable_rate: None,
            saturated_rate: Some(search.base_rate),
            latency_at_stable: None,
            base_latency,
            simulations: simulations.get(),
        });
    }

    // Exponential growth until a probe saturates (or the budget runs out
    // without one — the unbracketed case).
    let mut stable_rate = search.base_rate;
    let mut latency_at_stable = base_latency;
    let mut rate = search.base_rate * 2.0;
    let mut saturated_rate: Option<f64> = None;
    while simulations.get() < search.max_simulations {
        let (latency, capped) = probe(rate)?;
        if capped || latency > threshold {
            saturated_rate = Some(rate);
            break;
        }
        stable_rate = rate;
        latency_at_stable = latency;
        rate *= 2.0;
    }

    // Bisection of the bracket [stable_rate, saturated_rate], when one exists.
    if let Some(saturated) = &mut saturated_rate {
        while simulations.get() < search.max_simulations
            && (*saturated - stable_rate) / *saturated > search.relative_tolerance
        {
            let mid = (stable_rate + *saturated) / 2.0;
            let (latency, capped) = probe(mid)?;
            if capped || latency > threshold {
                *saturated = mid;
            } else {
                stable_rate = mid;
                latency_at_stable = latency;
            }
        }
    }

    Ok(SaturationEstimate {
        stable_rate: Some(stable_rate),
        saturated_rate,
        latency_at_stable: Some(latency_at_stable),
        base_latency,
        simulations: simulations.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RoutingChoice;
    use torus_faults::FaultScenario;
    use torus_topology::TopologySpec;

    /// A deliberately tiny configuration so the search stays fast in debug
    /// builds.
    fn tiny(routing: RoutingChoice, v: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_point(4, 2, v, 8, 0.001)
            .with_routing(routing)
            .quick(400, 100);
        // Large enough that the low-load reference probe can generate its whole
        // message budget; saturated probes still terminate at the cap.
        cfg.max_cycles = 150_000;
        cfg
    }

    #[test]
    fn finds_a_finite_bracket() {
        let est = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4),
            SaturationSearch {
                max_simulations: 10,
                ..SaturationSearch::default()
            },
        )
        .unwrap();
        assert!(est.bracketed());
        let stable = est.stable_rate.unwrap();
        let saturated = est.saturated_rate.unwrap();
        let rate = est.rate().unwrap();
        assert!(stable > 0.0);
        assert!(saturated > stable);
        assert!(rate > stable && rate < saturated);
        assert!(est.base_latency >= 8.0);
        assert!(est.latency_at_stable.unwrap() >= est.base_latency);
        assert!(est.simulations <= 10);
        // A 4-ary 2-cube with 8-flit messages saturates somewhere between a
        // fraction of a percent and ~20 % injection rate.
        assert!(rate > 0.002 && rate < 0.25, "rate {rate}");
        assert_eq!(est.display_rate(), format!("{rate:.5}"));
    }

    #[test]
    fn budget_exhausted_during_doubling_reports_no_saturated_rate() {
        // Regression for the fictitious-bracket bug: with a budget small
        // enough to exhaust during doubling, the old implementation stored
        // the *next, never-probed* doubling rate as `saturated_rate` and
        // `rate()` reported the midpoint of that fictitious bracket. Now the
        // saturated end is explicitly absent.
        let est = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4),
            SaturationSearch {
                max_simulations: 2,
                ..SaturationSearch::default()
            },
        )
        .unwrap();
        assert_eq!(est.simulations, 2);
        assert!(!est.bracketed());
        assert_eq!(est.saturated_rate, None, "no saturated probe ever ran");
        assert_eq!(est.rate(), None, "no bracket, no midpoint");
        // The stable end is real: base 0.001 plus one stable doubling probe.
        assert_eq!(est.stable_rate, Some(0.002));
        assert!(est.latency_at_stable.unwrap() > 0.0);
        assert!(est.display_rate().contains("unbracketed"));
    }

    #[test]
    fn budget_of_one_keeps_the_probed_base_as_the_stable_bound() {
        // Even harsher: only the base probe fits in the budget. The doubling
        // loop never runs, and the estimate must fall back to the probed base
        // rate — not to any rate the search merely intended to probe.
        let est = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4),
            SaturationSearch {
                max_simulations: 1,
                ..SaturationSearch::default()
            },
        )
        .unwrap();
        assert_eq!(est.simulations, 1);
        assert_eq!(est.stable_rate, Some(0.001));
        assert_eq!(est.saturated_rate, None);
        assert_eq!(est.rate(), None);
    }

    #[test]
    fn degenerate_saturation_at_base_rate_is_explicit() {
        // Regression for the degenerate-bracket bug: when even `base_rate`
        // saturates, the old estimate reported `stable_rate: 0.0` with
        // `latency_at_stable` measured at the *saturated* base point. Now
        // both are explicitly absent.
        let mut cfg = tiny(RoutingChoice::Deterministic, 4);
        // A cycle cap far below what the message budget needs at the base
        // rate forces the base probe itself to saturate.
        cfg.max_cycles = 300;
        let est = estimate_saturation_rate(
            &cfg,
            SaturationSearch {
                base_rate: 0.9,
                max_simulations: 8,
                ..SaturationSearch::default()
            },
        )
        .unwrap();
        assert_eq!(est.simulations, 1, "the search stops at the base probe");
        assert_eq!(est.stable_rate, None, "no stable point exists");
        assert_eq!(
            est.latency_at_stable, None,
            "must not report a latency measured at an unstable point"
        );
        assert_eq!(est.saturated_rate, Some(0.9), "the base probe did run");
        assert!(!est.bracketed());
        assert_eq!(est.rate(), None);
        assert!(est.display_rate().contains("saturated at base"));
    }

    #[test]
    fn adaptive_saturates_no_earlier_than_deterministic() {
        // 12 probes genuinely bracket on this config (the old 9-probe budget
        // only "worked" because the fictitious-bracket bug padded it).
        let search = SaturationSearch {
            max_simulations: 12,
            relative_tolerance: 0.2,
            ..SaturationSearch::default()
        };
        let det = estimate_saturation_rate(&tiny(RoutingChoice::Deterministic, 4), search).unwrap();
        let ada = estimate_saturation_rate(&tiny(RoutingChoice::Adaptive, 4), search).unwrap();
        // Adaptive routing exploits all minimal paths, so its saturation point
        // is at least as high (allow a small tolerance for bracketing noise).
        let (det_rate, ada_rate) = (det.rate().unwrap(), ada.rate().unwrap());
        assert!(
            ada_rate >= det_rate * 0.8,
            "adaptive {ada_rate} vs deterministic {det_rate}"
        );
    }

    #[test]
    fn faults_do_not_raise_the_saturation_point() {
        let search = SaturationSearch {
            max_simulations: 12,
            relative_tolerance: 0.25,
            ..SaturationSearch::default()
        };
        let clean =
            estimate_saturation_rate(&tiny(RoutingChoice::Deterministic, 4), search).unwrap();
        let faulty = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4)
                .with_faults(FaultScenario::RandomNodes { count: 2 }),
            search,
        )
        .unwrap();
        let (clean_rate, faulty_rate) = (clean.rate().unwrap(), faulty.rate().unwrap());
        assert!(
            faulty_rate <= clean_rate * 1.2,
            "faulty {faulty_rate} vs clean {clean_rate}"
        );
    }

    #[test]
    fn turn_model_saturation_is_comparable_to_duato_on_meshes() {
        // The comparison the tentpole exists for: on the same mesh, the
        // negative-first turn model brackets a saturation point in the same
        // regime as Duato-over-e-cube (both fully adaptive, different escape
        // substrates).
        let search = SaturationSearch {
            max_simulations: 12,
            relative_tolerance: 0.25,
            ..SaturationSearch::default()
        };
        let base =
            ExperimentConfig::topology_point(TopologySpec::mesh(4, 2), 2, 8, 0.001).quick(400, 100);
        let duato =
            estimate_saturation_rate(&base.clone().with_routing(RoutingChoice::Adaptive), search)
                .unwrap();
        let turn =
            estimate_saturation_rate(&base.with_routing(RoutingChoice::TurnModel), search).unwrap();
        assert!(duato.bracketed() && turn.bracketed());
        let (d, t) = (duato.rate().unwrap(), turn.rate().unwrap());
        assert!(
            t > d * 0.3 && t < d * 3.0,
            "turn-model {t} vs Duato {d} should be the same order of magnitude"
        );
    }
}
