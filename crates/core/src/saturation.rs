//! Saturation-rate estimation.
//!
//! The paper's latency figures are all organised around the *saturation
//! point* — the offered load beyond which the mean latency diverges — and its
//! qualitative claims are about how that point moves with the number of
//! virtual channels, the message length, the routing flavour and the number of
//! faults. This module estimates the saturation rate of a configuration
//! directly, by doubling the offered load until the network saturates and then
//! bisecting, so those claims can be checked (and tabulated by the
//! `saturation` binary in `torus-bench`) without reading the crossover off a
//! latency curve by eye.

use crate::experiment::{ExperimentConfig, ExperimentError};
use serde::{Deserialize, Serialize};

/// Result of a saturation search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaturationEstimate {
    /// Highest probed offered load (messages/node/cycle) at which the network
    /// was still stable.
    pub stable_rate: f64,
    /// Lowest probed offered load at which the network was saturated.
    pub saturated_rate: f64,
    /// Mean latency measured at `stable_rate`.
    pub latency_at_stable: f64,
    /// Mean latency measured at the low-load reference point.
    pub base_latency: f64,
    /// Number of simulations executed by the search.
    pub simulations: usize,
}

impl SaturationEstimate {
    /// Midpoint of the bracket — the reported saturation rate.
    pub fn rate(&self) -> f64 {
        (self.stable_rate + self.saturated_rate) / 2.0
    }
}

/// Options controlling the saturation search.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SaturationSearch {
    /// Low-load reference rate used to measure the unloaded latency.
    pub base_rate: f64,
    /// A point counts as saturated when its mean latency exceeds
    /// `latency_factor ×` the unloaded latency, or when the simulation hits
    /// its cycle cap before delivering the message budget.
    pub latency_factor: f64,
    /// Bisection stops when the bracket is narrower than this (relative to the
    /// saturated end).
    pub relative_tolerance: f64,
    /// Hard cap on the number of simulations.
    pub max_simulations: usize,
}

impl Default for SaturationSearch {
    fn default() -> Self {
        SaturationSearch {
            base_rate: 0.001,
            latency_factor: 8.0,
            relative_tolerance: 0.1,
            max_simulations: 16,
        }
    }
}

/// Estimates the saturation rate of `base` (its `rate` field is ignored).
///
/// The search runs the configuration at the low-load reference rate, doubles
/// the offered load until it finds a saturated point, and then bisects the
/// bracket. Every probe uses the same seed, fault placement and measurement
/// budget as `base`.
pub fn estimate_saturation_rate(
    base: &ExperimentConfig,
    search: SaturationSearch,
) -> Result<SaturationEstimate, ExperimentError> {
    let simulations = std::cell::Cell::new(0usize);
    let probe = |rate: f64| -> Result<(f64, bool), ExperimentError> {
        simulations.set(simulations.get() + 1);
        let outcome = base.clone().with_rate(rate).run()?;
        Ok((outcome.report.mean_latency, outcome.hit_max_cycles))
    };

    let (base_latency, base_saturated) = probe(search.base_rate)?;
    let threshold = base_latency * search.latency_factor;
    if base_saturated {
        // Even the reference load saturates; report a degenerate bracket.
        return Ok(SaturationEstimate {
            stable_rate: 0.0,
            saturated_rate: search.base_rate,
            latency_at_stable: base_latency,
            base_latency,
            simulations: simulations.get(),
        });
    }

    // Exponential growth until saturation.
    let mut stable_rate = search.base_rate;
    let mut latency_at_stable = base_latency;
    let mut rate = search.base_rate * 2.0;
    let saturated_rate = loop {
        if simulations.get() >= search.max_simulations {
            break rate;
        }
        let (latency, capped) = probe(rate)?;
        if capped || latency > threshold {
            break rate;
        }
        stable_rate = rate;
        latency_at_stable = latency;
        rate *= 2.0;
    };
    let mut saturated_rate = saturated_rate;

    // Bisection of the bracket [stable_rate, saturated_rate].
    while simulations.get() < search.max_simulations
        && (saturated_rate - stable_rate) / saturated_rate > search.relative_tolerance
    {
        let mid = (stable_rate + saturated_rate) / 2.0;
        let (latency, capped) = probe(mid)?;
        if capped || latency > threshold {
            saturated_rate = mid;
        } else {
            stable_rate = mid;
            latency_at_stable = latency;
        }
    }

    Ok(SaturationEstimate {
        stable_rate,
        saturated_rate,
        latency_at_stable,
        base_latency,
        simulations: simulations.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RoutingChoice;
    use torus_faults::FaultScenario;

    /// A deliberately tiny configuration so the search stays fast in debug
    /// builds.
    fn tiny(routing: RoutingChoice, v: usize) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_point(4, 2, v, 8, 0.001)
            .with_routing(routing)
            .quick(400, 100);
        // Large enough that the low-load reference probe can generate its whole
        // message budget; saturated probes still terminate at the cap.
        cfg.max_cycles = 150_000;
        cfg
    }

    #[test]
    fn finds_a_finite_bracket() {
        let est = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4),
            SaturationSearch {
                max_simulations: 10,
                ..SaturationSearch::default()
            },
        )
        .unwrap();
        assert!(est.stable_rate > 0.0);
        assert!(est.saturated_rate > est.stable_rate);
        assert!(est.rate() > est.stable_rate && est.rate() < est.saturated_rate);
        assert!(est.base_latency >= 8.0);
        assert!(est.latency_at_stable >= est.base_latency);
        assert!(est.simulations <= 10);
        // A 4-ary 2-cube with 8-flit messages saturates somewhere between a
        // fraction of a percent and ~20 % injection rate.
        assert!(
            est.rate() > 0.002 && est.rate() < 0.25,
            "rate {}",
            est.rate()
        );
    }

    #[test]
    fn adaptive_saturates_no_earlier_than_deterministic() {
        let search = SaturationSearch {
            max_simulations: 9,
            relative_tolerance: 0.2,
            ..SaturationSearch::default()
        };
        let det = estimate_saturation_rate(&tiny(RoutingChoice::Deterministic, 4), search).unwrap();
        let ada = estimate_saturation_rate(&tiny(RoutingChoice::Adaptive, 4), search).unwrap();
        // Adaptive routing exploits all minimal paths, so its saturation point
        // is at least as high (allow a small tolerance for bracketing noise).
        assert!(
            ada.rate() >= det.rate() * 0.8,
            "adaptive {} vs deterministic {}",
            ada.rate(),
            det.rate()
        );
    }

    #[test]
    fn faults_do_not_raise_the_saturation_point() {
        let search = SaturationSearch {
            max_simulations: 8,
            relative_tolerance: 0.25,
            ..SaturationSearch::default()
        };
        let clean =
            estimate_saturation_rate(&tiny(RoutingChoice::Deterministic, 4), search).unwrap();
        let faulty = estimate_saturation_rate(
            &tiny(RoutingChoice::Deterministic, 4)
                .with_faults(FaultScenario::RandomNodes { count: 2 }),
            search,
        )
        .unwrap();
        assert!(
            faulty.rate() <= clean.rate() * 1.2,
            "faulty {} vs clean {}",
            faulty.rate(),
            clean.rate()
        );
    }
}
