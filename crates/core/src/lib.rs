//! # swbft-core
//!
//! High-level experiment harness for the Software-Based fault-tolerant routing
//! study. It glues together the topology, fault, workload, routing, simulator
//! and metrics crates and exposes:
//!
//! * [`ExperimentConfig`] — one fully described simulation point (topology,
//!   virtual channels, message length, traffic rate, routing flavour, fault
//!   scenario, seed, measurement budget) and [`ExperimentConfig::run`] to
//!   execute it;
//! * [`pool`] — the work-stealing experiment pool: deterministic parallel
//!   execution of many experiment points across a caller-controlled number of
//!   worker threads ([`Jobs`], the binaries' `--jobs N`), with results
//!   reassembled into input order so any thread count is bit-identical;
//! * [`sweep`] — the `Jobs::Auto` convenience wrapper over the pool;
//! * [`figures`] — the exact parameter grids of Figs. 3–7 of Safaei et al.
//!   (IPDPS 2006), at `Scale::Quick` (reduced message budget, default) or
//!   `Scale::Paper` (the full 100,000-message methodology);
//! * [`results`] — structured figure results with text-table, CSV and ASCII
//!   plot rendering, used by the `fig3`..`fig7` binaries in `torus-bench`;
//! * [`saturation`] — direct estimation of a configuration's saturation rate
//!   (doubling + bisection), used by the `saturation` binary to tabulate how
//!   the saturation point moves with V, the routing flavour and the fault
//!   count.
//!
//! ```
//! use swbft_core::prelude::*;
//!
//! let cfg = ExperimentConfig::paper_point(8, 2, 4, 32, 0.004)
//!     .with_routing(RoutingChoice::Adaptive)
//!     .with_faults(FaultScenario::RandomNodes { count: 3 })
//!     .quick(500, 100);
//! let outcome = cfg.run().unwrap();
//! assert!(outcome.report.mean_latency > 0.0);
//! ```

pub mod experiment;
pub mod figures;
pub mod pool;
pub mod results;
pub mod saturation;
pub mod sweep;

pub use experiment::{ExperimentConfig, ExperimentError, ExperimentOutcome, RoutingChoice};
pub use figures::{Figure, FigureError, FigureOptions, Scale};
pub use pool::{run_pool, Jobs};
pub use results::{CurveResult, FigureResult, PanelResult, PointFailure, PointResult};
pub use saturation::{estimate_saturation_rate, SaturationEstimate, SaturationSearch};
pub use sweep::run_parallel;

/// Convenience prelude re-exporting the most frequently used items.
pub mod prelude {
    pub use crate::experiment::{ExperimentConfig, ExperimentOutcome, RoutingChoice};
    pub use crate::figures::{Figure, FigureOptions, Scale};
    pub use crate::pool::{run_pool, Jobs};
    pub use crate::results::{CurveResult, FigureResult, PanelResult, PointResult};
    pub use crate::sweep::run_parallel;
    pub use torus_faults::{FaultScenario, RegionShape};
    pub use torus_metrics::SimulationReport;
}
