//! Deterministic parallel execution of experiment sweeps.
//!
//! A figure of the paper is a grid of independent simulation points, each a
//! deterministic function of its own configuration and seed.
//! [`run_parallel`] fans the points out over the work-stealing experiment
//! pool ([`crate::pool`]) at the machine's available parallelism and returns
//! the results in input order, so a parallel sweep produces bit-identical
//! output to a sequential one. Callers that need an explicit worker count
//! (the binaries' `--jobs N`) use [`crate::pool::run_pool`] directly.

use crate::pool::{run_pool, Jobs};

/// Runs `work` over every item of `inputs` in parallel and returns the results
/// in input order.
///
/// The closure must be deterministic per item; the thread count defaults to
/// the machine's available parallelism and never exceeds the number of items.
/// Equivalent to `run_pool(inputs, Jobs::Auto, work)`.
pub fn run_parallel<T, R, F>(inputs: Vec<T>, work: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_pool(inputs, Jobs::Auto, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_parallel(inputs.clone(), |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = run_parallel(vec![41u32], |&x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..257).collect();
        let out = run_parallel(inputs, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn matches_sequential_for_stateful_work() {
        // Each work item carries its own seed, so parallel execution must be
        // bit-identical to sequential execution.
        let inputs: Vec<u64> = (0..32).collect();
        let f = |&seed: &u64| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| rng.gen_range(0..1000u32)).sum::<u32>()
        };
        let parallel = run_parallel(inputs.clone(), f);
        let sequential: Vec<u32> = inputs.iter().map(f).collect();
        assert_eq!(parallel, sequential);
    }
}
